#pragma once
// HTTP/1.1 wire layer for mcmm serve: an incremental request parser
// hardened against malformed, oversized, and slow input, plus response
// serialization. The parser is socket-free — it consumes bytes and yields
// requests — so the adversarial tests in tests/serve exercise it without a
// network (split reads, pipelining, header bombs, bad escapes).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mcmm::serve {

/// Hard input caps. Exceeding one turns into the named HTTP status instead
/// of unbounded buffering (414/431/413).
struct Limits {
  std::size_t max_request_line = 8 * 1024;   ///< 414 URI Too Long
  std::size_t max_header_bytes = 32 * 1024;  ///< 431 across all header lines
  std::size_t max_header_count = 100;        ///< 431
  std::size_t max_body = 1 << 20;            ///< 413 Payload Too Large
};

/// One parsed request. Header names are lowercased; `path` is the
/// percent-decoded target with the query string stripped; `query` holds the
/// decoded key/value pairs.
struct Request {
  std::string method;
  std::string target;  ///< raw request target as received
  std::string path;
  std::vector<std::pair<std::string, std::string>> query;
  int version_minor{1};  ///< HTTP/1.<minor>
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with that (case-insensitive) name; nullptr when absent.
  [[nodiscard]] const std::string* header(
      std::string_view name) const noexcept;
  /// First query parameter with that key, or `fallback`.
  [[nodiscard]] std::string_view query_param(
      std::string_view key, std::string_view fallback = {}) const noexcept;
  /// Connection persistence per the HTTP/1.0 and /1.1 defaults.
  [[nodiscard]] bool keep_alive() const noexcept;
};

/// Incremental parser. Feed raw bytes as they arrive; when `feed` returns
/// Complete, `take_request()` hands out the request and `reset()` re-arms
/// the parser over any already-buffered pipelined bytes.
class RequestParser {
 public:
  enum class Status : std::uint8_t { NeedMore, Complete, Error };

  explicit RequestParser(Limits limits = {}) : limits_(limits) {}

  /// Appends `data` (may be empty to re-parse buffered bytes) and advances.
  Status feed(std::string_view data);

  [[nodiscard]] Status status() const noexcept { return status_; }
  /// HTTP status to answer with when status() == Error.
  [[nodiscard]] int error_status() const noexcept { return error_status_; }
  [[nodiscard]] const std::string& error_reason() const noexcept {
    return error_reason_;
  }

  /// True once any byte of a not-yet-complete request has been seen —
  /// distinguishes a 408 (mid-request stall) from an idle keep-alive close.
  [[nodiscard]] bool mid_request() const noexcept;

  /// Moves the completed request out. Only valid when status() == Complete.
  [[nodiscard]] Request take_request();

  /// Re-arms for the next request, keeping buffered pipelined bytes.
  void reset();

 private:
  enum class State : std::uint8_t { RequestLine, Headers, Body, Done };

  Status fail(int http_status, std::string reason);
  Status parse();
  Status parse_request_line(std::string_view line);
  Status parse_header_line(std::string_view line);
  Status finish_headers();

  Limits limits_;
  State state_{State::RequestLine};
  Status status_{Status::NeedMore};
  int error_status_{0};
  std::string error_reason_;
  std::string buffer_;
  std::size_t consumed_{0};
  std::size_t header_bytes_{0};
  std::size_t content_length_{0};
  Request request_;
};

/// Percent-decodes one URI component; nullopt on a malformed escape.
[[nodiscard]] std::optional<std::string> percent_decode(std::string_view in);

/// One response about to be serialized.
struct Response {
  int status{200};
  std::string content_type{"application/json"};
  std::string body;
  std::string etag;  ///< sent as a strong ETag header when non-empty
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// Canonical reason phrase ("OK", "Not Modified", ...).
[[nodiscard]] std::string_view status_reason(int code) noexcept;

/// Full wire form: status line, headers, CRLF, body. `head` keeps the
/// headers (including Content-Length) but drops the body, per RFC 9110.
[[nodiscard]] std::string serialize_response(const Response& r, bool head,
                                             bool keep_alive);

/// Tiny JSON error document: {"error":status,"reason":...,"detail":...}.
[[nodiscard]] Response error_response(int status, std::string_view detail);

/// A fresh correlation id: 16 lowercase hex chars, unique per process and
/// cheap enough for the per-request path (thread-local xorshift, no lock).
[[nodiscard]] std::string generate_request_id();

/// True when a client-supplied X-Request-Id is safe to echo verbatim:
/// 1..128 visible ASCII characters (no separators a header could smuggle).
[[nodiscard]] bool valid_request_id(std::string_view id) noexcept;

}  // namespace mcmm::serve
