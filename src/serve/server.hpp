#pragma once
// The network front end of mcmm serve: a blocking accept loop feeding a
// fixed pool of worker threads through a lock-free single-producer /
// multi-consumer ring of accepted sockets (same futex-backed
// atomic-wait/notify pattern as the gpusim fork-join pool, DESIGN.md §3.1 —
// no mutex, no condition_variable, no allocation on the hand-off path).
//
// Robustness posture (see DESIGN.md §3.2): every read runs under a poll(2)
// deadline — a stalled mid-request peer gets 408, an idle keep-alive peer
// is closed silently; the parser's size caps turn header/body bombs into
// 413/414/431; SIGTERM (via shutdown()) stops the acceptor, lets in-flight
// requests finish, closes keep-alive connections at the next request
// boundary, and joins every thread before run() returns.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/matrix.hpp"
#include "serve/api.hpp"
#include "serve/http.hpp"
#include "serve/metrics.hpp"

namespace mcmm::serve {

struct ServerConfig {
  std::string host{"127.0.0.1"};
  std::uint16_t port{8080};  ///< 0 picks an ephemeral port (see Server::port)
  unsigned threads{0};       ///< worker threads; 0 = min(hw concurrency, 8)
  int backlog{128};
  int request_timeout_ms{5000};  ///< mid-request read stall -> 408
  int idle_timeout_ms{5000};     ///< keep-alive with no next request -> close
  Limits limits{};
};

/// Lock-free SPMC queue of accepted file descriptors. The acceptor is the
/// single producer; workers pop. Bounded: a full ring blocks the acceptor
/// (backpressure on the TCP accept queue) rather than buffering without
/// limit. Shutdown is by poison pill — close(n) enqueues n sentinel fds so
/// each of the n waiting consumers wakes through the normal push path (no
/// separate closed-flag wait that could miss a notify).
class ConnectionQueue {
 public:
  /// Pushes an fd; blocks while full. False once the queue is closed.
  bool push(int fd) noexcept;
  /// Pops the next fd; blocks while empty. -1 once a sentinel arrives.
  int pop() noexcept;
  /// Marks closed and enqueues `consumers` sentinels (producer-side only).
  void close(std::size_t consumers) noexcept;
  /// Drains remaining fds without waiting (post-join cleanup). -1 if empty.
  int try_pop() noexcept;

 private:
  static constexpr std::size_t kCapacity = 1024;  // power of two
  std::array<std::atomic<int>, kCapacity> ring_{};
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::atomic<bool> closed_{false};
};

class Server {
 public:
  explicit Server(const CompatibilityMatrix& matrix, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens and spawns the acceptor and workers. Throws
  /// mcmm::Error when the socket cannot be bound.
  void start();

  /// The bound port (resolves port 0 to the kernel-assigned one).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  /// Initiates graceful drain. Async-signal-safe: an atomic store plus
  /// shutdown(2) on the listening socket; all orderly teardown happens on
  /// the acceptor thread it wakes.
  void shutdown() noexcept;

  /// Waits until the acceptor and every worker exited.
  void join();

  /// start() + join() — the CLI entry point.
  void run();

  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] bool draining() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);
  /// False when the peer vanished or the deadline expired (timed_out set).
  bool read_more(int fd, RequestParser& parser, bool& timed_out);
  static bool send_all(int fd, std::string_view data) noexcept;

  ServerConfig config_;
  Metrics metrics_;
  Api api_;
  ConnectionQueue queue_;
  std::atomic<bool> stop_{false};
  int listen_fd_{-1};
  std::uint16_t bound_port_{0};
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  bool started_{false};
};

}  // namespace mcmm::serve
