#pragma once
// The network front end of mcmm serve: a blocking accept loop feeding a
// fixed pool of worker threads through a lock-free single-producer /
// multi-consumer ring of accepted sockets (same futex-backed
// atomic-wait/notify pattern as the gpusim fork-join pool, DESIGN.md §3.1 —
// no mutex, no condition_variable, no allocation on the hand-off path).
//
// The loop is split from the application: HttpListener owns sockets,
// threads, parsing, deadlines, and response framing, and hands each parsed
// request to a virtual handle_request(). serve::Server plugs the knowledge
// base in; gateway::Gateway (DESIGN.md §3.3) plugs a reverse proxy into
// the very same loop.
//
// Robustness posture (see DESIGN.md §3.2): every read runs under a poll(2)
// deadline — a stalled mid-request peer gets 408, an idle keep-alive peer
// is closed silently; the parser's size caps turn header/body bombs into
// 413/414/431; SIGTERM (via shutdown()) stops the acceptor, lets in-flight
// requests finish, closes keep-alive connections at the next request
// boundary, and joins every thread before run() returns.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/matrix.hpp"
#include "serve/api.hpp"
#include "serve/http.hpp"
#include "serve/metrics.hpp"

namespace mcmm::serve {

/// Lock-free SPMC queue of accepted file descriptors. The acceptor is the
/// single producer; workers pop. Bounded: a full ring blocks the acceptor
/// (backpressure on the TCP accept queue) rather than buffering without
/// limit. Shutdown is by poison pill — close(n) enqueues n sentinel fds so
/// each of the n waiting consumers wakes through the normal push path (no
/// separate closed-flag wait that could miss a notify).
class ConnectionQueue {
 public:
  /// Pushes an fd; blocks while full. False once the queue is closed.
  bool push(int fd) noexcept;
  /// Pops the next fd; blocks while empty. -1 once a sentinel arrives.
  int pop() noexcept;
  /// Marks closed and enqueues `consumers` sentinels (producer-side only).
  void close(std::size_t consumers) noexcept;
  /// Drains remaining fds without waiting (post-join cleanup). -1 if empty.
  int try_pop() noexcept;
  /// Approximate count of accepted, not-yet-claimed connections. Workers
  /// holding idle keep-alive sockets poll it to yield to starving peers.
  [[nodiscard]] std::size_t pending() const noexcept;

 private:
  static constexpr std::size_t kCapacity = 1024;  // power of two
  std::array<std::atomic<int>, kCapacity> ring_{};
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::atomic<bool> closed_{false};
};

/// Socket/thread-pool configuration shared by every HttpListener.
struct ListenerConfig {
  std::string host{"127.0.0.1"};
  std::uint16_t port{8080};  ///< 0 picks an ephemeral port (see port())
  unsigned threads{0};       ///< worker threads; 0 = min(hw concurrency, 8)
  int backlog{128};
  int request_timeout_ms{5000};  ///< mid-request read stall -> 408
  int idle_timeout_ms{5000};     ///< keep-alive with no next request -> close
  /// Adopt an already-bound, already-listening socket instead of binding
  /// host:port (the cluster supervisor binds in the parent and hands each
  /// forked replica its fd). -1 binds normally. The listener owns the fd.
  int adopt_fd{-1};
  Limits limits{};
};

/// The reusable HTTP/1.1 server loop. Derived classes implement
/// handle_request() (called concurrently from worker threads) and may
/// observe traffic through the on_*() hooks. Every response is stamped
/// with an X-Request-Id header — the client's own when it sent a
/// well-formed one, a freshly minted id otherwise — so log lines and
/// metrics correlate across a gateway/replica hop.
///
/// Derived destructors MUST call shutdown() + join() (worker threads
/// dispatch virtually into the derived class until join() returns).
class HttpListener {
 public:
  explicit HttpListener(ListenerConfig config);
  virtual ~HttpListener();

  HttpListener(const HttpListener&) = delete;
  HttpListener& operator=(const HttpListener&) = delete;

  /// Binds + listens and spawns the acceptor and workers. Throws
  /// mcmm::Error when the socket cannot be bound.
  void start();

  /// The bound port (resolves port 0 to the kernel-assigned one).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  /// Initiates graceful drain. Async-signal-safe: an atomic store plus
  /// shutdown(2) on the listening socket; all orderly teardown happens on
  /// the acceptor thread it wakes.
  void shutdown() noexcept;

  /// Waits until the acceptor and every worker exited.
  void join();

  /// start() + join() — the CLI entry point.
  void run();

  [[nodiscard]] bool draining() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

 protected:
  /// One parsed request -> one response. `request_id` is the correlation
  /// id the listener will stamp on the wire (echo it upstream if the
  /// response is assembled from another hop).
  virtual Response handle_request(const Request& req,
                                  const std::string& request_id) = 0;

  /// Traffic hooks, called from the acceptor/worker threads.
  virtual void on_connection() noexcept {}
  /// Brackets handle_request (begin before, end after the response hits
  /// the wire) — derived classes keep their in-flight gauges here.
  virtual void on_request_begin() noexcept {}
  virtual void on_request_end() noexcept {}
  /// One finished request: response status + handle_request latency.
  /// Also fires for parser rejections and timeouts (no begin/end pair).
  virtual void on_request_done(int /*status*/,
                               std::uint64_t /*micros*/) noexcept {}

  /// The drain flag, for handlers that report it (e.g. /healthz).
  [[nodiscard]] const std::atomic<bool>* drain_flag() const noexcept {
    return &stop_;
  }

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);
  /// False when the peer vanished or the deadline expired (timed_out set).
  bool read_more(int fd, RequestParser& parser, bool& timed_out);
  static bool send_all(int fd, std::string_view data) noexcept;

  ListenerConfig config_;
  ConnectionQueue queue_;
  std::atomic<bool> stop_{false};
  int listen_fd_{-1};
  std::uint16_t bound_port_{0};
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  bool started_{false};
};

struct ServerConfig {
  std::string host{"127.0.0.1"};
  std::uint16_t port{8080};  ///< 0 picks an ephemeral port
  unsigned threads{0};       ///< worker threads; 0 = min(hw concurrency, 8)
  int backlog{128};
  int request_timeout_ms{5000};  ///< mid-request read stall -> 408
  int idle_timeout_ms{5000};     ///< keep-alive with no next request -> close
  /// Overload shedding: reject with 503 + Retry-After once more than this
  /// many requests are being handled concurrently. 0 disables the cap.
  unsigned max_in_flight{0};
  /// Adopt an already-listening socket (see ListenerConfig::adopt_fd).
  int adopt_fd{-1};
  Limits limits{};
};

/// The knowledge-base server: the HttpListener loop dispatching into Api,
/// with Prometheus metrics and optional in-flight overload shedding.
class Server : public HttpListener {
 public:
  explicit Server(const CompatibilityMatrix& matrix, ServerConfig config = {});
  ~Server() override;

  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  /// Mutable access, e.g. for tests pinning the in-flight gauge to drive
  /// the overload-shedding path deterministically.
  [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }

 protected:
  Response handle_request(const Request& req,
                          const std::string& request_id) override;
  void on_connection() noexcept override { metrics_.record_connection(); }
  void on_request_begin() noexcept override { metrics_.begin_request(); }
  void on_request_end() noexcept override { metrics_.end_request(); }
  void on_request_done(int status, std::uint64_t micros) noexcept override {
    metrics_.record_request(status, micros);
  }

 private:
  static ListenerConfig to_listener_config(const ServerConfig& config);

  unsigned max_in_flight_;
  Metrics metrics_;
  Api api_;
};

}  // namespace mcmm::serve
