#pragma once
// The network front end of mcmm serve: an edge-triggered epoll readiness
// loop (serve/event_loop.hpp) with a per-connection state machine, feeding
// a parse/compute worker pool through a lock-free single-producer /
// multi-consumer ring of *ready* connections (same futex-backed
// atomic-wait/notify pattern as the gpusim fork-join pool, DESIGN.md §3.1).
// Connections are no longer owned by threads: one loop thread multiplexes
// every socket, so a handful of threads holds tens of thousands of idle
// keep-alive connections.
//
// The loop is split from the application: HttpListener owns sockets,
// threads, parsing, deadlines, and response framing, and hands each parsed
// request to a virtual handle_request(). serve::Server plugs the knowledge
// base in; gateway::Gateway (DESIGN.md §3.3) plugs a reverse proxy into
// the very same loop — its upstream legs ride the listener's event loop
// through dispatch_async()/complete_async(), so a proxied request in
// flight costs a state machine, not a blocked thread.
//
// Robustness posture (see DESIGN.md §3.2): deadlines live in a timer
// wheel, not in per-read poll(2) calls — a stalled mid-request peer gets
// 408, an idle keep-alive peer is closed silently, a peer that stops
// draining its response is evicted; the parser's size caps turn
// header/body bombs into 413/414/431; RLIMIT_NOFILE is raised to the hard
// limit at startup and accepts pause at the ceiling instead of dying on
// EMFILE; SIGTERM (via shutdown()) stops the acceptor, lets in-flight
// requests finish, closes keep-alive connections at the next request
// boundary, and joins every thread before run() returns.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/matrix.hpp"
#include "serve/api.hpp"
#include "serve/event_loop.hpp"
#include "serve/http.hpp"
#include "serve/metrics.hpp"

namespace mcmm::serve {

/// Lock-free SPMC queue of ready connections. The loop thread is the
/// single producer; parse/compute workers pop. Bounded: a full ring blocks
/// the producer (backpressure on event dispatch) rather than buffering
/// without limit. Shutdown is by poison pill — close(n) enqueues n
/// sentinels so each of the n waiting consumers wakes through the normal
/// push path (no separate closed-flag wait that could miss a notify).
class DispatchQueue {
 public:
  /// Pushes a ready connection; blocks while full. False once closed.
  /// `notify=false` skips the consumer wake — only safe when the producer
  /// guarantees it will drain the item itself (the loop's inline batch).
  bool push(void* conn, bool notify = true) noexcept;
  /// Pops the next ready connection; blocks while empty. nullptr once a
  /// sentinel arrives.
  void* pop() noexcept;
  /// Non-blocking pop; nullptr when empty or a sentinel is at the head.
  void* try_pop() noexcept;
  /// Marks closed and enqueues `consumers` sentinels (producer-side only).
  void close(std::size_t consumers) noexcept;

 private:
  static constexpr std::size_t kCapacity = 16384;  // power of two
  static constexpr std::uintptr_t kEmpty = 0;
  static constexpr std::uintptr_t kPoison = 1;
  std::array<std::atomic<std::uintptr_t>, kCapacity> ring_{};
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::atomic<bool> closed_{false};
};

/// Socket/thread-pool configuration shared by every HttpListener.
struct ListenerConfig {
  std::string host{"127.0.0.1"};
  std::uint16_t port{8080};  ///< 0 picks an ephemeral port (see port())
  unsigned threads{0};       ///< parse/compute workers; 0 = min(hw, 8)
  /// listen(2) queue depth. A c10k ramp dials connections far faster than
  /// one epoll iteration can accept them; 128 overflows the SYN queue and
  /// strands clients in 1s kernel retransmit cycles.
  int backlog{1024};
  int request_timeout_ms{5000};  ///< mid-request read stall -> 408
  int idle_timeout_ms{5000};     ///< keep-alive with no next request -> close
  /// Adopt an already-bound, already-listening socket instead of binding
  /// host:port (the cluster supervisor binds in the parent and hands each
  /// forked replica its fd). -1 binds normally. The listener owns the fd.
  int adopt_fd{-1};
  /// Print the probed fd limit / connection ceiling at startup (the CLI
  /// sets this; tests keep it quiet).
  bool log_fd_limit{false};
  Limits limits{};
};

/// Opaque handle to one parsed-but-unanswered request, held by an
/// asynchronous handler between dispatch_async() and complete_async().
struct ResponseToken {
  void* conn{nullptr};
  std::uint64_t epoch{0};
};

/// The reusable HTTP/1.1 server loop. Derived classes implement
/// handle_request() (called concurrently from worker threads and the loop
/// thread) and may observe traffic through the on_*() hooks. Every
/// response is stamped with an X-Request-Id header — the client's own when
/// it sent a well-formed one, a freshly minted id otherwise — so log lines
/// and metrics correlate across a gateway/replica hop.
///
/// Derived destructors MUST call shutdown() + join() (worker threads
/// dispatch virtually into the derived class until join() returns).
class HttpListener {
 public:
  explicit HttpListener(ListenerConfig config);
  virtual ~HttpListener();

  HttpListener(const HttpListener&) = delete;
  HttpListener& operator=(const HttpListener&) = delete;

  /// Binds + listens, probes/raises RLIMIT_NOFILE, and spawns the loop
  /// thread and workers. Throws mcmm::Error when the socket cannot be
  /// bound.
  void start();

  /// The bound port (resolves port 0 to the kernel-assigned one).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  /// Initiates graceful drain. Async-signal-safe: an atomic store plus an
  /// eventfd write; all orderly teardown happens on the loop thread it
  /// wakes.
  void shutdown() noexcept;

  /// Waits until the loop thread and every worker exited.
  void join();

  /// start() + join() — the CLI entry point.
  void run();

  [[nodiscard]] bool draining() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Event-loop observability counters (exported through /metrics).
  [[nodiscard]] const LoopCounters& loop_counters() const noexcept {
    return counters_;
  }

  /// Live connections this listener will hold before pausing accepts
  /// (derived from RLIMIT_NOFILE at start()).
  [[nodiscard]] std::size_t connection_ceiling() const noexcept {
    return max_connections_;
  }

 protected:
  /// One parsed request -> one response. `request_id` is the correlation
  /// id the listener will stamp on the wire (echo it upstream if the
  /// response is assembled from another hop). Handlers should return
  /// promptly: a handler that blocks parks one parse/compute worker (or
  /// the loop thread itself, which also dispatches) — slow work belongs
  /// behind dispatch_async().
  virtual Response handle_request(const Request& req,
                                  const std::string& request_id) = 0;

  /// Asynchronous handler seam. Return true to take ownership of the
  /// request: the listener parks the connection and the handler MUST
  /// eventually call complete_async(token, response) — from any thread —
  /// to answer it. Return false (the default) to fall back to the
  /// synchronous handle_request() path.
  virtual bool dispatch_async(const Request& /*req*/,
                              const std::string& /*request_id*/,
                              ResponseToken /*token*/) {
    return false;
  }

  /// Completes a request accepted by dispatch_async(). Thread-safe; the
  /// write happens on the loop thread. Tokens are single-use.
  void complete_async(ResponseToken token, Response resp);

  /// The readiness loop, for derived classes that multiplex their own
  /// sockets (the gateway's upstream legs). Only valid between start()
  /// and join().
  [[nodiscard]] EventLoop& loop() noexcept { return loop_; }

  /// Traffic hooks, called from the loop/worker threads.
  virtual void on_connection() noexcept {}
  /// Brackets handle_request (begin before, end after the response hits
  /// the wire) — derived classes keep their in-flight gauges here.
  virtual void on_request_begin() noexcept {}
  virtual void on_request_end() noexcept {}
  /// One finished request: response status + handle_request latency.
  /// Also fires for parser rejections and timeouts (no begin/end pair).
  virtual void on_request_done(int /*status*/,
                               std::uint64_t /*micros*/) noexcept {}

  /// The drain flag, for handlers that report it (e.g. /healthz).
  [[nodiscard]] const std::atomic<bool>* drain_flag() const noexcept {
    return &stop_;
  }

 private:
  struct Connection;
  struct AcceptHandler;
  friend struct AcceptHandler;

  enum class WriteResult : std::uint8_t { Done, Pending, Closed };

  void loop_main();
  void worker_main();
  /// Drains the ready ring on the loop thread between epoll waits: on a
  /// single-core host the loop does most parse/compute work itself and the
  /// hand-off never pays a context switch.
  void help_workers();
  void accept_ready();
  void pause_accept() noexcept;
  void resume_accept() noexcept;
  void dispatch(Connection* c, bool write_phase) noexcept;
  /// Parse/compute entry, runs on a worker or the loop thread.
  void process(Connection* c);
  void process_input(Connection* c);
  /// True to continue parsing buffered pipelined input; false when the
  /// connection was parked (re-armed, write-pending, async) or closed.
  bool finish_request(Connection* c, const Request& req,
                      const std::string& request_id);
  /// Serialises + writes a response; same return contract as
  /// after_write_done().
  bool start_response(Connection* c, Response resp);
  void start_error_response(Connection* c, const Response& resp);
  /// True when the connection survives (keep-alive) and parsing may
  /// continue; false when parked or closed.
  bool after_write_done(Connection* c);
  WriteResult flush_out(Connection* c) noexcept;
  void rearm_read(Connection* c) noexcept;
  void rearm_write(Connection* c) noexcept;
  void post_close(Connection* c);
  // Loop-thread-only paths.
  void close_connection(Connection* c) noexcept;
  void conn_timer_fired(Connection* c);
  void finish_async(ResponseToken token, Response resp);
  void drain_sweep();
  [[nodiscard]] bool token_live(const ResponseToken& token,
                                Connection** out) noexcept;

  ListenerConfig config_;
  LoopCounters counters_;
  EventLoop loop_;
  DispatchQueue queue_;
  std::atomic<bool> stop_{false};
  int listen_fd_{-1};
  std::uint16_t bound_port_{0};
  std::size_t max_connections_{0};
  std::vector<Connection*> conn_table_;  // indexed by fd; loop thread only
  std::size_t conn_count_{0};            // loop thread only
  int silent_dispatches_{0};             // loop thread only, per iteration
  std::uint64_t next_epoch_{1};          // loop thread only
  bool accept_paused_{false};            // loop thread only
  bool drain_swept_{false};              // loop thread only
  Timer accept_resume_timer_;
  std::unique_ptr<AcceptHandler> accept_handler_;
  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  bool started_{false};
};

struct ServerConfig {
  std::string host{"127.0.0.1"};
  std::uint16_t port{8080};  ///< 0 picks an ephemeral port
  unsigned threads{0};       ///< parse/compute workers; 0 = min(hw, 8)
  int backlog{1024};
  int request_timeout_ms{5000};  ///< mid-request read stall -> 408
  int idle_timeout_ms{5000};     ///< keep-alive with no next request -> close
  /// Overload shedding: reject with 503 + Retry-After once more than this
  /// many requests are being handled concurrently. 0 disables the cap.
  unsigned max_in_flight{0};
  /// Adopt an already-listening socket (see ListenerConfig::adopt_fd).
  int adopt_fd{-1};
  /// Print the probed fd limit / connection ceiling at startup.
  bool log_fd_limit{false};
  /// Run the perf-portability campaign (src/perfport) at construction and
  /// serve its Figure 2 at GET /v1/perf. Off by default: the campaign
  /// simulates every allowed route and adds seconds of startup time, which
  /// replica-heavy tests must not pay. Without it /v1/perf answers 404.
  bool enable_perf{false};
  /// Campaign knobs when enable_perf is set (defaults match the CI gate).
  perfport::CampaignConfig perf_config{};
  Limits limits{};
};

/// The knowledge-base server: the HttpListener loop dispatching into Api,
/// with Prometheus metrics and optional in-flight overload shedding.
class Server : public HttpListener {
 public:
  explicit Server(const CompatibilityMatrix& matrix, ServerConfig config = {});
  ~Server() override;

  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  /// Mutable access, e.g. for tests pinning the in-flight gauge to drive
  /// the overload-shedding path deterministically.
  [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }

 protected:
  Response handle_request(const Request& req,
                          const std::string& request_id) override;
  void on_connection() noexcept override { metrics_.record_connection(); }
  void on_request_begin() noexcept override { metrics_.begin_request(); }
  void on_request_end() noexcept override { metrics_.end_request(); }
  void on_request_done(int status, std::uint64_t micros) noexcept override {
    metrics_.record_request(status, micros);
  }

 private:
  static ListenerConfig to_listener_config(const ServerConfig& config);

  unsigned max_in_flight_;
  Metrics metrics_;
  /// Built before api_ (declaration order matters: Api caches renders of
  /// the report during construction). Null when enable_perf is off.
  std::unique_ptr<perfport::PerfReport> perf_report_;
  Api api_;
};

}  // namespace mcmm::serve
