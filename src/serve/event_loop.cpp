#include "serve/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace mcmm::serve {

LoopStats snapshot(const LoopCounters& c) noexcept {
  LoopStats s;
  s.open_connections = c.open_connections.load(std::memory_order_relaxed);
  s.wakeups_total = c.wakeups_total.load(std::memory_order_relaxed);
  s.accepts_total = c.accepts_total.load(std::memory_order_relaxed);
  s.dispatches_total = c.dispatches_total.load(std::memory_order_relaxed);
  s.epollout_rearms_total =
      c.epollout_rearms_total.load(std::memory_order_relaxed);
  s.timer_evictions_total =
      c.timer_evictions_total.load(std::memory_order_relaxed);
  return s;
}

// --- TimerWheel ----------------------------------------------------------

TimerWheel::TimerWheel() : slots_(kSlots) {
  for (Slot& s : slots_) {
    s.sentinel.next_ = &s.sentinel;
    s.sentinel.prev_ = &s.sentinel;
  }
}

TimerWheel::~TimerWheel() = default;

void TimerWheel::link(std::size_t slot, Timer& t) noexcept {
  Timer& head = slots_[slot].sentinel;
  t.next_ = head.next_;
  t.prev_ = &head;
  head.next_->prev_ = &t;
  head.next_ = &t;
  ++armed_;
}

void TimerWheel::unlink(Timer& t) noexcept {
  t.prev_->next_ = t.next_;
  t.next_->prev_ = t.prev_;
  t.prev_ = nullptr;
  t.next_ = nullptr;
  --armed_;
}

void TimerWheel::arm(Timer& t, std::int64_t now_ms,
                     std::int64_t delay_ms) noexcept {
  if (t.armed()) unlink(t);
  if (delay_ms < kTickMs) delay_ms = kTickMs;
  t.deadline_ms_ = now_ms + delay_ms;
  const std::size_t slot =
      static_cast<std::size_t>(t.deadline_ms_ / kTickMs) & (kSlots - 1);
  link(slot, t);
}

void TimerWheel::cancel(Timer& t) noexcept {
  if (t.armed()) unlink(t);
}

void TimerWheel::advance(std::int64_t now_ms) {
  if (armed_ == 0) {
    last_tick_ = now_ms / kTickMs;
    return;
  }
  const std::int64_t tick = now_ms / kTickMs;
  // Never sweep more than a full revolution: beyond that every slot has
  // been visited once and re-visiting finds only re-armed future timers.
  std::int64_t from = last_tick_ + 1;
  if (tick - from >= static_cast<std::int64_t>(kSlots)) {
    from = tick - static_cast<std::int64_t>(kSlots) + 1;
  }
  for (std::int64_t t = from; t <= tick; ++t) {
    Timer& head = slots_[static_cast<std::size_t>(t) & (kSlots - 1)].sentinel;
    // Collect expired entries first: on_fire may arm/cancel neighbours.
    Timer* expired = nullptr;
    for (Timer* it = head.next_; it != &head;) {
      Timer* next = it->next_;
      // Tick granularity: a deadline inside the tick being visited fires
      // now (≤ one tick early) rather than waiting a full revolution.
      // Owners whose deadlines are lazy re-check and re-arm on fire.
      if (it->deadline_ms_ / kTickMs <= t) {
        unlink(*it);
        it->next_ = expired;  // reuse next_ as a singly-linked ready list
        expired = it;
      }
      it = next;
    }
    while (expired != nullptr) {
      Timer* it = expired;
      expired = it->next_;
      it->next_ = nullptr;
      if (it->on_fire) it->on_fire();
    }
  }
  last_tick_ = tick;
}

// --- EventLoop -----------------------------------------------------------

EventLoop::EventLoop(LoopCounters* counters) : counters_(counters) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr marks the wake channel
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::int64_t EventLoop::steady_ms() noexcept {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void EventLoop::add(int fd, EpollHandler* handler,
                    std::uint32_t events) noexcept {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = handler;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
}

void EventLoop::mod(int fd, EpollHandler* handler,
                    std::uint32_t events) noexcept {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = handler;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void EventLoop::del(int fd) noexcept {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(ops_mu_);
    ops_.push_back(std::move(fn));
  }
  wake();
}

void EventLoop::wake() noexcept {
  const std::uint64_t one = 1;
  // write(2) on an eventfd is async-signal-safe; EAGAIN (counter already
  // saturated) still leaves the loop woken.
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::drain_ops() {
  std::vector<std::function<void()>> batch;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(ops_mu_);
      if (ops_.empty()) return;
      batch.swap(ops_);
    }
    for (std::function<void()>& fn : batch) fn();
    batch.clear();
  }
}

void EventLoop::run(const std::function<bool()>& should_exit) {
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  now_ms_ = steady_ms();
  for (;;) {
    const int timeout = wheel_.armed_count() > 0 ? TimerWheel::kTickMs : -1;
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout);
    counters_->wakeups_total.fetch_add(1, std::memory_order_relaxed);
    now_ms_ = steady_ms();
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < std::max(n, 0); ++i) {
      auto* handler = static_cast<EpollHandler*>(events[i].data.ptr);
      if (handler == nullptr) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof drained) > 0) {
        }
        continue;
      }
      handler->on_io(events[i].events);
    }
    drain_ops();
    wheel_.advance(now_ms_);
    drain_ops();  // timer callbacks may have posted follow-ups
    if (should_exit()) break;
  }
}

}  // namespace mcmm::serve
