#pragma once
// Request counters and latency histograms for mcmm serve, exposed in
// Prometheus text exposition format on GET /metrics. All recording paths
// are lock-free (relaxed atomics — the counters are independent and the
// scrape only needs eventual consistency).

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "serve/event_loop.hpp"

namespace mcmm::serve {

class Metrics {
 public:
  void record_connection() noexcept {
    connections_.fetch_add(1, std::memory_order_relaxed);
  }

  /// One finished request: its response status and handling latency.
  void record_request(int status, std::uint64_t micros) noexcept;

  /// Attributes one request to its endpoint family (exact paths plus the
  /// /v1/cell/... subtree; anything else lands in "other").
  void record_endpoint(std::string_view path) noexcept;

  /// Brackets request handling (parse complete -> response sent) so the
  /// in-flight gauge is live. The gateway's power-of-two balancer reads it
  /// through GET /healthz; overload shedding compares it to max_in_flight.
  void begin_request() noexcept {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
  }
  void end_request() noexcept {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t requests_total() const noexcept;
  [[nodiscard]] std::uint64_t connections_total() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }

  /// Folds the owning listener's event-loop counters into the scrape
  /// (open-connections gauge, wakeups, accepts, dispatches, EPOLLOUT
  /// re-arms, timer-wheel evictions). Not owned; may be null (standalone
  /// Metrics in tests emit no event-loop families).
  void attach_loop(const LoopCounters* counters) noexcept {
    loop_ = counters;
  }

  /// The Prometheus /metrics document.
  [[nodiscard]] std::string prometheus_text() const;

 private:
  /// Tracked status codes; anything else lands in the trailing "other".
  static constexpr std::array<int, 13> kStatusCodes{
      200, 304, 400, 404, 405, 408, 413, 414, 431, 500, 501, 503, 505};
  /// Tracked endpoint families; anything else lands in the trailing
  /// "other". "/v1/cell" stands for the whole /v1/cell/... subtree.
  static constexpr std::array<std::string_view, 8> kEndpoints{
      "/",         "/healthz",  "/metrics", "/v1/matrix",
      "/v1/cell",  "/v1/plan",  "/v1/claims", "/v1/perf"};
  /// Histogram bucket upper bounds, microseconds (+Inf is implicit).
  static constexpr std::array<std::uint64_t, 7> kBucketMicros{
      100, 500, 1000, 5000, 25000, 100000, 1000000};

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> in_flight_{0};
  std::array<std::atomic<std::uint64_t>, kStatusCodes.size() + 1> by_status_{};
  std::array<std::atomic<std::uint64_t>, kEndpoints.size() + 1> by_endpoint_{};
  std::array<std::atomic<std::uint64_t>, kBucketMicros.size() + 1> buckets_{};
  std::atomic<std::uint64_t> latency_sum_micros_{0};
  std::atomic<std::uint64_t> latency_count_{0};
  const LoopCounters* loop_{nullptr};
};

}  // namespace mcmm::serve
