#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "core/error.hpp"

namespace mcmm::serve {

// --- ConnectionQueue -----------------------------------------------------

bool ConnectionQueue::push(int fd) noexcept {
  for (;;) {
    if (closed_.load(std::memory_order_relaxed) && fd >= 0) return false;
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    if (t - h >= kCapacity) {
      head_.wait(h, std::memory_order_relaxed);
      continue;
    }
    ring_[t % kCapacity].store(fd, std::memory_order_relaxed);
    tail_.store(t + 1, std::memory_order_release);
    tail_.notify_all();
    return true;
  }
}

int ConnectionQueue::pop() noexcept {
  for (;;) {
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    if (h == t) {
      tail_.wait(t, std::memory_order_relaxed);
      continue;
    }
    // Read before claiming: on CAS failure another consumer owns the slot
    // and this value is discarded; the slot itself is an atomic, so a
    // concurrent producer wrap-around is not a data race.
    const int fd = ring_[h % kCapacity].load(std::memory_order_relaxed);
    if (head_.compare_exchange_weak(h, h + 1, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      head_.notify_all();  // a full-ring producer may be waiting on head
      return fd;
    }
  }
}

int ConnectionQueue::try_pop() noexcept {
  for (;;) {
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    if (h == t) return -1;
    const int fd = ring_[h % kCapacity].load(std::memory_order_relaxed);
    if (head_.compare_exchange_weak(h, h + 1, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      head_.notify_all();
      return fd;
    }
  }
}

std::size_t ConnectionQueue::pending() const noexcept {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  const std::uint64_t t = tail_.load(std::memory_order_relaxed);
  return t > h ? static_cast<std::size_t>(t - h) : 0;
}

void ConnectionQueue::close(std::size_t consumers) noexcept {
  closed_.store(true, std::memory_order_relaxed);
  for (std::size_t i = 0; i < consumers; ++i) push(-1);
}

// --- HttpListener --------------------------------------------------------

HttpListener::HttpListener(ListenerConfig config)
    : config_(std::move(config)) {}

HttpListener::~HttpListener() {
  // Derived destructors already ran shutdown()+join(); this is the
  // backstop for direct/aborted construction paths.
  shutdown();
  join();
}

void HttpListener::start() {
  if (config_.adopt_fd >= 0) {
    listen_fd_ = config_.adopt_fd;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw Error(std::string("socket: ") + std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
      throw Error("not an IPv4 listen address: " + config_.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      throw Error("bind " + config_.host + ":" + std::to_string(config_.port) +
                  ": " + std::strerror(errno));
    }
    if (::listen(listen_fd_, config_.backlog) != 0) {
      throw Error(std::string("listen: ") + std::strerror(errno));
    }
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);

  unsigned threads = config_.threads;
  if (threads == 0) {
    threads = std::min(std::max(std::thread::hardware_concurrency(), 2u), 8u);
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  started_ = true;
}

void HttpListener::shutdown() noexcept {
  stop_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void HttpListener::join() {
  if (!started_) return;
  acceptor_.join();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  for (int fd = queue_.try_pop(); fd != -1; fd = queue_.try_pop()) {
    if (fd >= 0) ::close(fd);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  started_ = false;
}

void HttpListener::run() {
  start();
  join();
}

void HttpListener::accept_loop() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t len = sizeof peer;
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stop_.load(std::memory_order_relaxed)) break;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: shed load briefly instead of spinning.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // listening socket is gone; drain and exit
    }
    if (stop_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (!queue_.push(fd)) {
      ::close(fd);
      break;
    }
  }
  queue_.close(workers_.size());
}

void HttpListener::worker_loop() {
  for (int fd = queue_.pop(); fd != -1; fd = queue_.pop()) {
    serve_connection(fd);
    ::close(fd);
  }
}

bool HttpListener::send_all(int fd, std::string_view data) noexcept {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

bool HttpListener::read_more(int fd, RequestParser& parser, bool& timed_out) {
  const bool mid = parser.mid_request();
  int remaining =
      std::max(mid ? config_.request_timeout_ms : config_.idle_timeout_ms, 1);
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    // Short poll slices so an idle keep-alive connection notices a drain
    // within ~100 ms instead of holding a worker for the full idle timeout.
    const int slice = std::min(remaining, 100);
    const int r = ::poll(&pfd, 1, slice);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r > 0) break;
    remaining -= slice;
    if (remaining <= 0) {
      timed_out = true;
      return false;
    }
    if (!mid && draining()) return false;  // close idle connections on drain
    // Thread-per-connection fairness: an idle keep-alive socket (e.g. one
    // parked in a gateway's upstream pool) must not pin this worker while
    // freshly accepted connections starve unclaimed in the queue.
    if (!mid && queue_.pending() > 0) return false;
  }
  char buf[16384];
  const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
  if (n <= 0) return false;
  parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  return true;
}

void HttpListener::serve_connection(int fd) {
  on_connection();
  RequestParser parser(config_.limits);
  for (;;) {
    while (parser.status() == RequestParser::Status::NeedMore) {
      bool timed_out = false;
      if (!read_more(fd, parser, timed_out)) {
        if (timed_out && parser.mid_request()) {
          // The peer stalled mid-request: answer 408, then close.
          on_request_done(408, 0);
          send_all(fd, serialize_response(
                           error_response(408, "request timed out"), false,
                           false));
        }
        return;
      }
    }
    if (parser.status() == RequestParser::Status::Error) {
      const Response r =
          error_response(parser.error_status(), parser.error_reason());
      on_request_done(r.status, 0);
      send_all(fd, serialize_response(r, false, false));
      return;
    }
    const Request req = parser.take_request();
    // Correlation id: echo a well-formed client-supplied one, mint one
    // otherwise, so gateway and replica logs/metrics line up per request.
    const std::string* supplied = req.header("x-request-id");
    const std::string request_id =
        supplied != nullptr && valid_request_id(*supplied)
            ? *supplied
            : generate_request_id();
    const auto t0 = std::chrono::steady_clock::now();
    on_request_begin();
    Response resp;
    try {
      resp = handle_request(req, request_id);
    } catch (const std::exception& e) {
      resp = error_response(500, e.what());
    }
    resp.extra_headers.emplace_back("X-Request-Id", request_id);
    const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    on_request_done(resp.status, static_cast<std::uint64_t>(micros));
    const bool keep = req.keep_alive() && !draining();
    const bool sent =
        send_all(fd, serialize_response(resp, req.method == "HEAD", keep));
    on_request_end();
    if (!sent || !keep) return;
    parser.reset();
  }
}

// --- Server --------------------------------------------------------------

ListenerConfig Server::to_listener_config(const ServerConfig& config) {
  ListenerConfig out;
  out.host = config.host;
  out.port = config.port;
  out.threads = config.threads;
  out.backlog = config.backlog;
  out.request_timeout_ms = config.request_timeout_ms;
  out.idle_timeout_ms = config.idle_timeout_ms;
  out.adopt_fd = config.adopt_fd;
  out.limits = config.limits;
  return out;
}

Server::Server(const CompatibilityMatrix& matrix, ServerConfig config)
    : HttpListener(to_listener_config(config)),
      max_in_flight_(config.max_in_flight),
      api_(matrix, &metrics_, drain_flag()) {}

Server::~Server() {
  shutdown();
  join();
}

Response Server::handle_request(const Request& req,
                                const std::string& /*request_id*/) {
  if (max_in_flight_ > 0 && metrics_.in_flight() > max_in_flight_) {
    // Overload-shaped rejection: tell the caller when to come back so a
    // gateway can retry elsewhere instead of piling on.
    Response resp = error_response(503, "in-flight request cap reached");
    resp.extra_headers.emplace_back("Retry-After", "1");
    return resp;
  }
  return api_.handle(req);
}

}  // namespace mcmm::serve
