#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/error.hpp"

namespace mcmm::serve {
namespace {

/// Per-dispatch read budget: a firehose client yields the worker after this
/// many bytes (EPOLLONESHOT re-arm re-checks readiness, so nothing is lost).
constexpr std::size_t kReadBudget = 256 * 1024;
/// Accepts per listener wakeup; level-triggered, so the event re-fires
/// while the backlog is non-empty.
constexpr int kAcceptBatch = 128;
/// How many ready connections the loop thread itself processes between
/// epoll waits (bounds timer latency under a worker stall).
constexpr int kHelpBudget = 64;

enum ConnState : std::uint8_t {
  kStReading,     // armed for EPOLLIN; owned by the loop/epoll
  kStWriteArmed,  // armed for EPOLLOUT (partial response); owned by epoll
  kStBusy,        // dispatched; owned by a worker or the loop inline
  kStAsync,       // parked behind dispatch_async(); owned by the handler
  kStClosing,     // close posted; the loop will reap it
};

}  // namespace

// --- DispatchQueue -------------------------------------------------------

bool DispatchQueue::push(void* conn, bool notify) noexcept {
  const std::uintptr_t value = reinterpret_cast<std::uintptr_t>(conn);
  for (;;) {
    if (closed_.load(std::memory_order_relaxed) && value != kPoison) {
      return false;
    }
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    if (t - h >= kCapacity) {
      head_.wait(h, std::memory_order_relaxed);
      continue;
    }
    ring_[t % kCapacity].store(value, std::memory_order_relaxed);
    tail_.store(t + 1, std::memory_order_release);
    // Waking on the was-empty transition alone would lose wakeups here:
    // silent pushes leave the ring non-empty with every consumer asleep,
    // so a later notifying push must wake unconditionally. Elision is the
    // caller's explicit choice via notify=false, never an inference.
    if (notify) tail_.notify_all();
    return true;
  }
}

void* DispatchQueue::pop() noexcept {
  for (;;) {
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    if (h == t) {
      tail_.wait(t, std::memory_order_relaxed);
      continue;
    }
    // Read before claiming: on CAS failure another consumer owns the slot
    // and this value is discarded; the slot itself is an atomic, so a
    // concurrent producer wrap-around is not a data race.
    const std::uintptr_t value =
        ring_[h % kCapacity].load(std::memory_order_relaxed);
    if (head_.compare_exchange_weak(h, h + 1, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      // A producer only blocks on a full ring, waiting on the current head
      // value; wake it just when this pop made the first space.
      if (t - h == kCapacity) head_.notify_all();
      return value == kPoison ? nullptr : reinterpret_cast<void*>(value);
    }
  }
}

void* DispatchQueue::try_pop() noexcept {
  for (;;) {
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    if (h == t) return nullptr;
    const std::uintptr_t value =
        ring_[h % kCapacity].load(std::memory_order_relaxed);
    if (value == kPoison) return nullptr;  // leave sentinels for waiters
    if (head_.compare_exchange_weak(h, h + 1, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      if (t - h == kCapacity) head_.notify_all();
      return reinterpret_cast<void*>(value);
    }
  }
}

void DispatchQueue::close(std::size_t consumers) noexcept {
  closed_.store(true, std::memory_order_relaxed);
  for (std::size_t i = 0; i < consumers; ++i) {
    push(reinterpret_cast<void*>(kPoison));
  }
}

// --- Connection ----------------------------------------------------------

/// One accepted socket. Ownership moves between the loop (armed in epoll,
/// timer checks) and a parse/compute worker (dispatched) through the
/// `state` atomic; the fd is only ever closed on the loop thread, so a
/// worker holding a Connection* can never observe its fd reused.
struct HttpListener::Connection final : EpollHandler {
  Connection(HttpListener* listener_, int fd_, const Limits& limits)
      : listener(listener_), fd(fd_), parser(limits) {}

  HttpListener* listener;
  int fd;
  std::atomic<std::uint8_t> state{kStBusy};
  std::atomic<std::int64_t> last_activity{0};
  bool write_phase{false};  // dispatch payload, synchronised by the ring
  RequestParser parser;
  std::string outbuf;
  std::size_t outoff{0};
  bool keep_after_write{true};
  bool request_open{false};  // on_request_end() owed at write completion
  bool pending_head{false};
  bool pending_keep{true};
  std::string pending_request_id;
  std::uint64_t epoch{0};
  std::chrono::steady_clock::time_point t0{};
  Timer timer;

  void on_io(std::uint32_t /*events*/) override {
    const std::uint8_t st = state.load(std::memory_order_relaxed);
    if (st != kStReading && st != kStWriteArmed) return;  // late/spurious
    listener->dispatch(this, st == kStWriteArmed);
  }
};

struct HttpListener::AcceptHandler final : EpollHandler {
  explicit AcceptHandler(HttpListener* listener_) : listener(listener_) {}
  HttpListener* listener;
  void on_io(std::uint32_t /*events*/) override { listener->accept_ready(); }
};

// --- HttpListener --------------------------------------------------------

HttpListener::HttpListener(ListenerConfig config)
    : config_(std::move(config)), loop_(&counters_) {}

HttpListener::~HttpListener() {
  // Derived destructors already ran shutdown()+join(); this is the
  // backstop for direct/aborted construction paths.
  shutdown();
  join();
}

void HttpListener::start() {
  // Probe RLIMIT_NOFILE and raise soft -> hard so a c10k load does not die
  // on EMFILE mid-run; accepts pause at the derived ceiling instead.
  rlimit nofile{};
  std::size_t soft_limit = 1024;
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0) {
    if (nofile.rlim_cur < nofile.rlim_max) {
      rlimit raised = nofile;
      raised.rlim_cur = raised.rlim_max;
      if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) nofile = raised;
    }
    soft_limit = nofile.rlim_cur == RLIM_INFINITY
                     ? (1u << 20)
                     : static_cast<std::size_t>(nofile.rlim_cur);
  }
  const std::size_t table = std::min<std::size_t>(soft_limit, 1u << 20);
  // Headroom for the listener, epoll, eventfd, upstream legs, and stdio.
  max_connections_ = table > 192 ? table - 64 : std::max<std::size_t>(
                                                    table / 2, 16);
  conn_table_.assign(table, nullptr);
  if (config_.log_fd_limit) {
    std::fprintf(stderr,
                 "[serve] RLIMIT_NOFILE soft=%zu; accepting up to %zu "
                 "concurrent connections (accepts pause at the ceiling)\n",
                 soft_limit, max_connections_);
  }

  if (config_.adopt_fd >= 0) {
    listen_fd_ = config_.adopt_fd;
    const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
    ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
  } else {
    listen_fd_ =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      throw Error(std::string("socket: ") + std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
      throw Error("not an IPv4 listen address: " + config_.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      throw Error("bind " + config_.host + ":" + std::to_string(config_.port) +
                  ": " + std::strerror(errno));
    }
    if (::listen(listen_fd_, config_.backlog) != 0) {
      throw Error(std::string("listen: ") + std::strerror(errno));
    }
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);

  accept_handler_ = std::make_unique<AcceptHandler>(this);
  accept_resume_timer_.on_fire = [this] {
    if (!accept_paused_) return;
    if (conn_count_ < max_connections_) {
      resume_accept();
    } else {
      loop_.wheel().arm(accept_resume_timer_, loop_.now_ms(), 100);
    }
  };
  loop_.add(listen_fd_, accept_handler_.get(), EPOLLIN);

  unsigned threads = config_.threads;
  if (threads == 0) {
    threads = std::min(std::max(std::thread::hardware_concurrency(), 2u), 8u);
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
  loop_thread_ = std::thread([this] { loop_main(); });
  started_ = true;
}

void HttpListener::shutdown() noexcept {
  stop_.store(true, std::memory_order_relaxed);
  loop_.wake();  // async-signal-safe: one write(2) on the eventfd
}

void HttpListener::join() {
  if (!started_) return;
  loop_thread_.join();
  queue_.close(workers_.size());
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
}

void HttpListener::run() {
  start();
  join();
}

void HttpListener::loop_main() {
  loop_.run([this] {
    if (stop_.load(std::memory_order_relaxed) && !drain_swept_) {
      drain_sweep();
    }
    help_workers();
    silent_dispatches_ = 0;
    return stop_.load(std::memory_order_relaxed) && conn_count_ == 0;
  });
}

void HttpListener::worker_main() {
  for (;;) {
    void* p = queue_.pop();
    if (p == nullptr) break;
    process(static_cast<Connection*>(p));
  }
}

void HttpListener::help_workers() {
  // On a single-core host the workers rarely get scheduled between epoll
  // waits; the loop draining its own ring keeps the hot path free of
  // cross-thread hand-off latency. Bounded so timers and accepts cannot
  // starve behind a long ready burst.
  for (int i = 0; i < kHelpBudget; ++i) {
    void* p = queue_.try_pop();
    if (p == nullptr) return;
    process(static_cast<Connection*>(p));
  }
}

void HttpListener::pause_accept() noexcept {
  if (accept_paused_ || listen_fd_ < 0) return;
  accept_paused_ = true;
  loop_.del(listen_fd_);
  loop_.wheel().arm(accept_resume_timer_, loop_.now_ms(), 100);
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "[serve] connection ceiling reached (%zu live); pausing "
                 "accepts until connections close\n",
                 conn_count_);
  }
}

void HttpListener::resume_accept() noexcept {
  if (!accept_paused_ || listen_fd_ < 0) return;
  accept_paused_ = false;
  loop_.wheel().cancel(accept_resume_timer_);
  loop_.add(listen_fd_, accept_handler_.get(), EPOLLIN);
}

void HttpListener::accept_ready() {
  static const bool nodelay = std::getenv("MCMM_NO_NODELAY") == nullptr;
  for (int i = 0; i < kAcceptBatch; ++i) {
    if (conn_count_ >= max_connections_) {
      pause_accept();
      return;
    }
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE) {
        pause_accept();  // fds exhausted elsewhere in the process
      }
      return;  // EAGAIN (drained) or the listener is gone
    }
    if (static_cast<std::size_t>(fd) >= conn_table_.size() ||
        stop_.load(std::memory_order_relaxed)) {
      ::close(fd);
      continue;
    }
    if (nodelay) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    counters_.accepts_total.fetch_add(1, std::memory_order_relaxed);
    counters_.open_connections.fetch_add(1, std::memory_order_relaxed);
    auto* c = new Connection(this, fd, config_.limits);
    c->epoch = next_epoch_++;
    conn_table_[fd] = c;
    ++conn_count_;
    on_connection();
    const std::int64_t now = loop_.now_ms();
    c->last_activity.store(now, std::memory_order_relaxed);
    c->timer.on_fire = [this, c] { conn_timer_fired(c); };
    loop_.wheel().arm(c->timer, now, config_.idle_timeout_ms);
    c->state.store(kStReading, std::memory_order_release);
    loop_.add(fd, c, EPOLLIN | EPOLLRDHUP | EPOLLET | EPOLLONESHOT);
  }
}

void HttpListener::dispatch(Connection* c, bool write_phase) noexcept {
  c->write_phase = write_phase;
  c->state.store(kStBusy, std::memory_order_relaxed);
  counters_.dispatches_total.fetch_add(1, std::memory_order_relaxed);
  // dispatch() only runs on the loop thread, and help_workers() drains up
  // to kHelpBudget entries later in the same loop iteration — so the first
  // kHelpBudget dispatches per iteration skip the worker wake entirely.
  // Beyond that the burst exceeds what the loop will drain itself and the
  // workers must be woken. (The ring's release/acquire publishes the
  // connection fields set above either way.)
  if (silent_dispatches_ < kHelpBudget) {
    ++silent_dispatches_;
    queue_.push(c, /*notify=*/false);
  } else {
    queue_.push(c);
  }
}

HttpListener::WriteResult HttpListener::flush_out(Connection* c) noexcept {
  while (c->outoff < c->outbuf.size()) {
    const ssize_t n = ::send(c->fd, c->outbuf.data() + c->outoff,
                             c->outbuf.size() - c->outoff, MSG_NOSIGNAL);
    if (n > 0) {
      c->outoff += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return WriteResult::Pending;
    return WriteResult::Closed;
  }
  return WriteResult::Done;
}

void HttpListener::rearm_read(Connection* c) noexcept {
  // last_activity is refreshed before the state store: a wheel tick is at
  // least 10 ms, so the eviction check can never fire inside the window
  // between the store and the epoll_ctl re-arm.
  c->last_activity.store(EventLoop::steady_ms(), std::memory_order_relaxed);
  c->state.store(kStReading, std::memory_order_release);
  loop_.mod(c->fd, c, EPOLLIN | EPOLLRDHUP | EPOLLET | EPOLLONESHOT);
}

void HttpListener::rearm_write(Connection* c) noexcept {
  c->last_activity.store(EventLoop::steady_ms(), std::memory_order_relaxed);
  c->state.store(kStWriteArmed, std::memory_order_release);
  counters_.epollout_rearms_total.fetch_add(1, std::memory_order_relaxed);
  loop_.mod(c->fd, c, EPOLLOUT | EPOLLET | EPOLLONESHOT);
}

void HttpListener::post_close(Connection* c) {
  c->state.store(kStClosing, std::memory_order_release);
  loop_.post([this, c] { close_connection(c); });
}

void HttpListener::close_connection(Connection* c) noexcept {
  if (c->fd < 0 || conn_table_[static_cast<std::size_t>(c->fd)] != c) return;
  loop_.wheel().cancel(c->timer);
  loop_.del(c->fd);
  ::close(c->fd);
  conn_table_[static_cast<std::size_t>(c->fd)] = nullptr;
  --conn_count_;
  counters_.open_connections.fetch_sub(1, std::memory_order_relaxed);
  if (c->request_open) {
    c->request_open = false;
    on_request_end();
  }
  delete c;
  if (accept_paused_ && !stop_.load(std::memory_order_relaxed) &&
      conn_count_ < max_connections_) {
    resume_accept();
  }
}

void HttpListener::conn_timer_fired(Connection* c) {
  const std::uint8_t st = c->state.load(std::memory_order_acquire);
  const std::int64_t now = loop_.now_ms();
  if (st == kStReading) {
    const bool mid = c->parser.mid_request();
    const std::int64_t timeout =
        std::max(mid ? config_.request_timeout_ms : config_.idle_timeout_ms, 1);
    const std::int64_t due =
        c->last_activity.load(std::memory_order_relaxed) + timeout;
    if (now >= due) {
      counters_.timer_evictions_total.fetch_add(1, std::memory_order_relaxed);
      if (mid) {
        // The peer stalled mid-request: answer 408 best-effort, then close.
        on_request_done(408, 0);
        const std::string wire = serialize_response(
            error_response(408, "request timed out"), false, false);
        [[maybe_unused]] const ssize_t n =
            ::send(c->fd, wire.data(), wire.size(), MSG_NOSIGNAL);
      }
      close_connection(c);
      return;
    }
    loop_.wheel().arm(c->timer, now, due - now);
  } else if (st == kStWriteArmed) {
    // A peer that stops draining its response is evicted after the same
    // stall budget as a mid-request read (progress refreshes the clock).
    const std::int64_t due =
        c->last_activity.load(std::memory_order_relaxed) +
        std::max(config_.request_timeout_ms, 1);
    if (now >= due) {
      counters_.timer_evictions_total.fetch_add(1, std::memory_order_relaxed);
      close_connection(c);
      return;
    }
    loop_.wheel().arm(c->timer, now, due - now);
  } else if (st != kStClosing) {
    // Busy/async: owned elsewhere; look again after an idle period.
    loop_.wheel().arm(c->timer, now, config_.idle_timeout_ms);
  }
}

void HttpListener::drain_sweep() {
  drain_swept_ = true;
  if (listen_fd_ >= 0) {
    if (!accept_paused_) loop_.del(listen_fd_);
    loop_.wheel().cancel(accept_resume_timer_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Idle keep-alive connections are closed at the request boundary they
  // are already at; mid-request/mid-response peers finish under their
  // normal deadlines.
  for (std::size_t fd = 0; fd < conn_table_.size(); ++fd) {
    Connection* c = conn_table_[fd];
    if (c == nullptr) continue;
    if (c->state.load(std::memory_order_acquire) == kStReading &&
        !c->parser.mid_request()) {
      close_connection(c);
    }
  }
}

void HttpListener::process(Connection* c) {
  if (c->write_phase) {
    c->write_phase = false;
    switch (flush_out(c)) {
      case WriteResult::Pending:
        rearm_write(c);
        return;
      case WriteResult::Closed:
        post_close(c);
        return;
      case WriteResult::Done:
        if (!after_write_done(c)) return;
        break;
    }
  }
  process_input(c);
}

bool HttpListener::after_write_done(Connection* c) {
  c->outbuf.clear();
  c->outoff = 0;
  if (c->request_open) {
    c->request_open = false;
    on_request_end();
  }
  if (!c->keep_after_write || draining()) {
    post_close(c);
    return false;
  }
  c->parser.reset();  // re-parses buffered pipelined bytes
  return true;
}

void HttpListener::process_input(Connection* c) {
  std::size_t budget = kReadBudget;
  char buf[16384];
  for (;;) {
    while (c->parser.status() == RequestParser::Status::NeedMore) {
      if (budget == 0) {
        rearm_read(c);  // firehose fairness; readiness re-checked at re-arm
        return;
      }
      const ssize_t n =
          ::recv(c->fd, buf, std::min(sizeof buf, budget), 0);
      if (n > 0) {
        c->parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        budget -= static_cast<std::size_t>(n);
        continue;
      }
      if (n == 0) {  // peer closed
        post_close(c);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!c->parser.mid_request() && draining()) {
          post_close(c);  // idle keep-alive at a request boundary: drain now
        } else {
          rearm_read(c);
        }
        return;
      }
      post_close(c);
      return;
    }
    if (c->parser.status() == RequestParser::Status::Error) {
      const Response r =
          error_response(c->parser.error_status(), c->parser.error_reason());
      on_request_done(r.status, 0);
      start_error_response(c, r);
      return;
    }
    const Request req = c->parser.take_request();
    // Correlation id: echo a well-formed client-supplied one, mint one
    // otherwise, so gateway and replica logs/metrics line up per request.
    const std::string* supplied = req.header("x-request-id");
    const std::string request_id =
        supplied != nullptr && valid_request_id(*supplied)
            ? *supplied
            : generate_request_id();
    if (!finish_request(c, req, request_id)) return;
  }
}

void HttpListener::start_error_response(Connection* c, const Response& resp) {
  c->keep_after_write = false;
  c->outbuf = serialize_response(resp, false, false);
  c->outoff = 0;
  switch (flush_out(c)) {
    case WriteResult::Pending:
      rearm_write(c);
      return;
    default:
      post_close(c);  // close after the error response either way
      return;
  }
}

bool HttpListener::finish_request(Connection* c, const Request& req,
                                  const std::string& request_id) {
  c->t0 = std::chrono::steady_clock::now();
  on_request_begin();
  c->request_open = true;
  c->pending_head = req.method == "HEAD";
  c->pending_keep = req.keep_alive();
  c->pending_request_id = request_id;
  // Park *before* offering the request to the async seam: a fast async
  // completion may race back through the loop before this thread resumes.
  c->state.store(kStAsync, std::memory_order_release);
  if (dispatch_async(req, request_id, ResponseToken{c, c->epoch})) {
    return false;
  }
  c->state.store(kStBusy, std::memory_order_relaxed);
  Response resp;
  try {
    resp = handle_request(req, request_id);
  } catch (const std::exception& e) {
    resp = error_response(500, e.what());
  }
  return start_response(c, resp);
}

bool HttpListener::start_response(Connection* c, Response resp) {
  resp.extra_headers.emplace_back("X-Request-Id", c->pending_request_id);
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - c->t0)
                          .count();
  on_request_done(resp.status, static_cast<std::uint64_t>(micros));
  c->keep_after_write = c->pending_keep && !draining();
  c->outbuf = serialize_response(resp, c->pending_head, c->keep_after_write);
  c->outoff = 0;
  switch (flush_out(c)) {
    case WriteResult::Pending:
      rearm_write(c);
      return false;
    case WriteResult::Closed:
      if (c->request_open) {
        c->request_open = false;
        on_request_end();
      }
      post_close(c);
      return false;
    case WriteResult::Done:
      return after_write_done(c);
  }
  return false;  // unreachable
}

bool HttpListener::token_live(const ResponseToken& token,
                              Connection** out) noexcept {
  auto* c = static_cast<Connection*>(token.conn);
  if (c == nullptr || c->epoch != token.epoch ||
      c->state.load(std::memory_order_acquire) != kStAsync) {
    return false;
  }
  *out = c;
  return true;
}

void HttpListener::complete_async(ResponseToken token, Response resp) {
  loop_.post([this, token, resp = std::move(resp)]() mutable {
    finish_async(token, std::move(resp));
  });
}

void HttpListener::finish_async(ResponseToken token, Response resp) {
  Connection* c = nullptr;
  if (!token_live(token, &c)) return;  // token already consumed or stale
  c->state.store(kStBusy, std::memory_order_relaxed);
  if (start_response(c, std::move(resp))) {
    // Keep-alive survived: continue with any buffered pipelined input on
    // the loop thread (recv hits EAGAIN and re-arms in the common case).
    process_input(c);
  }
}

// --- Server --------------------------------------------------------------

ListenerConfig Server::to_listener_config(const ServerConfig& config) {
  ListenerConfig out;
  out.host = config.host;
  out.port = config.port;
  out.threads = config.threads;
  out.backlog = config.backlog;
  out.request_timeout_ms = config.request_timeout_ms;
  out.idle_timeout_ms = config.idle_timeout_ms;
  out.adopt_fd = config.adopt_fd;
  out.log_fd_limit = config.log_fd_limit;
  out.limits = config.limits;
  return out;
}

Server::Server(const CompatibilityMatrix& matrix, ServerConfig config)
    : HttpListener(to_listener_config(config)),
      max_in_flight_(config.max_in_flight),
      perf_report_(config.enable_perf
                       ? std::make_unique<perfport::PerfReport>(
                             perfport::run_campaign(config.perf_config))
                       : nullptr),
      api_(matrix, &metrics_, drain_flag(), perf_report_.get()) {
  metrics_.attach_loop(&loop_counters());
}

Server::~Server() {
  shutdown();
  join();
}

Response Server::handle_request(const Request& req,
                                const std::string& /*request_id*/) {
  metrics_.record_endpoint(req.path);
  if (max_in_flight_ > 0 && metrics_.in_flight() > max_in_flight_) {
    // Overload-shaped rejection: tell the caller when to come back so a
    // gateway can retry elsewhere instead of piling on.
    Response resp = error_response(503, "in-flight request cap reached");
    resp.extra_headers.emplace_back("Retry-After", "1");
    return resp;
  }
  return api_.handle(req);
}

}  // namespace mcmm::serve
