#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "core/error.hpp"

namespace mcmm::serve {

// --- ConnectionQueue -----------------------------------------------------

bool ConnectionQueue::push(int fd) noexcept {
  for (;;) {
    if (closed_.load(std::memory_order_relaxed) && fd >= 0) return false;
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    if (t - h >= kCapacity) {
      head_.wait(h, std::memory_order_relaxed);
      continue;
    }
    ring_[t % kCapacity].store(fd, std::memory_order_relaxed);
    tail_.store(t + 1, std::memory_order_release);
    tail_.notify_all();
    return true;
  }
}

int ConnectionQueue::pop() noexcept {
  for (;;) {
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    if (h == t) {
      tail_.wait(t, std::memory_order_relaxed);
      continue;
    }
    // Read before claiming: on CAS failure another consumer owns the slot
    // and this value is discarded; the slot itself is an atomic, so a
    // concurrent producer wrap-around is not a data race.
    const int fd = ring_[h % kCapacity].load(std::memory_order_relaxed);
    if (head_.compare_exchange_weak(h, h + 1, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      head_.notify_all();  // a full-ring producer may be waiting on head
      return fd;
    }
  }
}

int ConnectionQueue::try_pop() noexcept {
  for (;;) {
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    if (h == t) return -1;
    const int fd = ring_[h % kCapacity].load(std::memory_order_relaxed);
    if (head_.compare_exchange_weak(h, h + 1, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      head_.notify_all();
      return fd;
    }
  }
}

void ConnectionQueue::close(std::size_t consumers) noexcept {
  closed_.store(true, std::memory_order_relaxed);
  for (std::size_t i = 0; i < consumers; ++i) push(-1);
}

// --- Server --------------------------------------------------------------

Server::Server(const CompatibilityMatrix& matrix, ServerConfig config)
    : config_(std::move(config)), api_(matrix, &metrics_) {}

Server::~Server() {
  shutdown();
  join();
}

void Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    throw Error("not an IPv4 listen address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw Error("bind " + config_.host + ":" + std::to_string(config_.port) +
                ": " + std::strerror(errno));
  }
  if (::listen(listen_fd_, config_.backlog) != 0) {
    throw Error(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);

  unsigned threads = config_.threads;
  if (threads == 0) {
    threads = std::min(std::max(std::thread::hardware_concurrency(), 2u), 8u);
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  started_ = true;
}

void Server::shutdown() noexcept {
  stop_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void Server::join() {
  if (!started_) return;
  acceptor_.join();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  for (int fd = queue_.try_pop(); fd != -1; fd = queue_.try_pop()) {
    if (fd >= 0) ::close(fd);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  started_ = false;
}

void Server::run() {
  start();
  join();
}

void Server::accept_loop() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t len = sizeof peer;
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stop_.load(std::memory_order_relaxed)) break;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: shed load briefly instead of spinning.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // listening socket is gone; drain and exit
    }
    if (stop_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (!queue_.push(fd)) {
      ::close(fd);
      break;
    }
  }
  queue_.close(workers_.size());
}

void Server::worker_loop() {
  for (int fd = queue_.pop(); fd != -1; fd = queue_.pop()) {
    serve_connection(fd);
    ::close(fd);
  }
}

bool Server::send_all(int fd, std::string_view data) noexcept {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

bool Server::read_more(int fd, RequestParser& parser, bool& timed_out) {
  const bool mid = parser.mid_request();
  int remaining =
      std::max(mid ? config_.request_timeout_ms : config_.idle_timeout_ms, 1);
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    // Short poll slices so an idle keep-alive connection notices a drain
    // within ~100 ms instead of holding a worker for the full idle timeout.
    const int slice = std::min(remaining, 100);
    const int r = ::poll(&pfd, 1, slice);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r > 0) break;
    remaining -= slice;
    if (remaining <= 0) {
      timed_out = true;
      return false;
    }
    if (!mid && draining()) return false;  // close idle connections on drain
  }
  char buf[16384];
  const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
  if (n <= 0) return false;
  parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  return true;
}

void Server::serve_connection(int fd) {
  metrics_.record_connection();
  RequestParser parser(config_.limits);
  for (;;) {
    while (parser.status() == RequestParser::Status::NeedMore) {
      bool timed_out = false;
      if (!read_more(fd, parser, timed_out)) {
        if (timed_out && parser.mid_request()) {
          // The peer stalled mid-request: answer 408, then close.
          metrics_.record_request(408, 0);
          send_all(fd, serialize_response(
                           error_response(408, "request timed out"), false,
                           false));
        }
        return;
      }
    }
    if (parser.status() == RequestParser::Status::Error) {
      const Response r =
          error_response(parser.error_status(), parser.error_reason());
      metrics_.record_request(r.status, 0);
      send_all(fd, serialize_response(r, false, false));
      return;
    }
    const Request req = parser.take_request();
    const auto t0 = std::chrono::steady_clock::now();
    Response resp;
    try {
      resp = api_.handle(req);
    } catch (const std::exception& e) {
      resp = error_response(500, e.what());
    }
    const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    metrics_.record_request(resp.status, static_cast<std::uint64_t>(micros));
    const bool keep = req.keep_alive() && !draining();
    if (!send_all(fd,
                  serialize_response(resp, req.method == "HEAD", keep))) {
      return;
    }
    if (!keep) return;
    parser.reset();
  }
}

}  // namespace mcmm::serve
