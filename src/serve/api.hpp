#pragma once
// The application layer of mcmm serve: routes HTTP requests onto the
// knowledge base. The dataset is immutable for the life of the process, so
// every GET response body is rendered once at construction, given a strong
// ETag, and served from the cache afterwards — request handling on the hot
// path is a lookup plus an If-None-Match comparison, safe to call from any
// number of worker threads concurrently.
//
//   GET  /            endpoint index
//   GET  /v1/matrix   ?format=json|txt|md|csv|html|latex|yaml (json default)
//   GET  /v1/cell/{vendor}/{model}/{language}
//   POST /v1/plan     PlannerQuery JSON -> ranked PlannedRoutes
//   GET  /v1/claims   machine-checked paper claims
//   GET  /v1/perf     Figure 2 (same format query; 404 unless the server
//                     ran the perf campaign — see ServerConfig::enable_perf)
//   GET  /healthz     liveness
//   GET  /metrics     Prometheus text exposition

#include <atomic>
#include <map>
#include <string>
#include <string_view>

#include "core/matrix.hpp"
#include "perfport/perfport.hpp"
#include "serve/http.hpp"
#include "serve/metrics.hpp"

namespace mcmm::serve {

/// Strong ETag (quoted 64-bit FNV-1a hex) over a response body.
[[nodiscard]] std::string etag_for(std::string_view body);

class Api {
 public:
  /// Precomputes every cacheable response. `metrics` may be null (then
  /// GET /metrics reports an empty registry and /healthz a zero gauge);
  /// `draining` may be null (then /healthz always reports false); `perf`
  /// may be null (then GET /v1/perf answers 404). None are owned; `perf`
  /// is only read during construction.
  explicit Api(const CompatibilityMatrix& matrix,
               const Metrics* metrics = nullptr,
               const std::atomic<bool>* draining = nullptr,
               const perfport::PerfReport* perf = nullptr);

  /// Full dispatch, including conditional-GET: a request whose
  /// If-None-Match matches the resource's ETag gets a bodyless 304.
  /// HEAD routes like GET (the server layer drops the body on the wire).
  [[nodiscard]] Response handle(const Request& req) const;

 private:
  struct Cached {
    std::string body;
    std::string content_type;
    std::string etag;
  };

  [[nodiscard]] static Cached make_cached(std::string body,
                                          std::string content_type);
  [[nodiscard]] static Response deliver(const Cached& c, const Request& req);

  [[nodiscard]] Response handle_matrix(const Request& req) const;
  [[nodiscard]] Response handle_perf(const Request& req) const;
  [[nodiscard]] Response handle_cell(const Request& req) const;
  [[nodiscard]] Response handle_plan(const Request& req) const;
  /// Rendered per request (not cached, no ETag): the in-flight gauge and
  /// the draining flag are live signals the gateway's balancer consumes.
  [[nodiscard]] Response handle_health() const;

  const CompatibilityMatrix* matrix_;
  const Metrics* metrics_;
  const std::atomic<bool>* draining_;
  std::map<std::string, Cached, std::less<>> matrix_formats_;
  /// Empty when the perf campaign was not run (then /v1/perf is a 404).
  std::map<std::string, Cached, std::less<>> perf_formats_;
  std::map<Combination, Cached> cells_;
  Cached claims_;
  Cached index_;
};

}  // namespace mcmm::serve
