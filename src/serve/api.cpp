#include "serve/api.hpp"

#include <unistd.h>

#include <utility>

#include "core/claims.hpp"
#include "core/planner.hpp"
#include "render/perf.hpp"
#include "render/render.hpp"
#include "serve/json.hpp"
#include "yamlx/matrix_yaml.hpp"

namespace mcmm::serve {
namespace {

// --- JSON views of the knowledge base -----------------------------------

void append_route(std::string& out, const Route& r) {
  out += "{\"name\":";
  out += json_quote(r.name);
  out += ",\"kind\":";
  out += json_quote(to_string(r.kind));
  out += ",\"provider\":";
  out += json_quote(to_string(r.provider));
  out += ",\"maturity\":";
  out += json_quote(to_string(r.maturity));
  out += ",\"toolchain\":";
  out += json_quote(r.toolchain);
  out += ",\"flags\":[";
  for (std::size_t i = 0; i < r.flags.size(); ++i) {
    if (i != 0) out += ',';
    out += json_quote(r.flags[i]);
  }
  out += "],\"environment\":[";
  for (std::size_t i = 0; i < r.environment.size(); ++i) {
    if (i != 0) out += ',';
    out += json_quote(r.environment[i]);
  }
  out += "],\"notes\":";
  out += json_quote(r.notes);
  out += '}';
}

void append_rating(std::string& out, const Rating& r) {
  out += "{\"category\":";
  out += json_quote(category_name(r.category));
  out += ",\"provider\":";
  out += json_quote(to_string(r.provider));
  out += ",\"rationale\":";
  out += json_quote(r.rationale);
  out += '}';
}

void append_entry(std::string& out, const SupportEntry& e) {
  out += "{\"vendor\":";
  out += json_quote(to_string(e.combo.vendor));
  out += ",\"model\":";
  out += json_quote(to_string(e.combo.model));
  out += ",\"language\":";
  out += json_quote(to_string(e.combo.language));
  out += ",\"ratings\":[";
  for (std::size_t i = 0; i < e.ratings.size(); ++i) {
    if (i != 0) out += ',';
    append_rating(out, e.ratings[i]);
  }
  out += "],\"description\":";
  out += std::to_string(e.description_id);
  out += ",\"inferred\":";
  out += e.inferred ? "true" : "false";
  out += ",\"usable\":";
  out += e.usable() ? "true" : "false";
  out += ",\"routes\":[";
  for (std::size_t i = 0; i < e.routes.size(); ++i) {
    if (i != 0) out += ',';
    append_route(out, e.routes[i]);
  }
  out += "]}";
}

void append_description(std::string& out, const Description& d) {
  out += "{\"id\":";
  out += std::to_string(d.id);
  out += ",\"title\":";
  out += json_quote(d.title);
  out += ",\"text\":";
  out += json_quote(d.text);
  out += ",\"references\":[";
  for (std::size_t i = 0; i < d.references.size(); ++i) {
    if (i != 0) out += ',';
    out += json_quote(d.references[i]);
  }
  out += "]}";
}

std::string matrix_json(const CompatibilityMatrix& m) {
  std::string out = "{\"schema\":\"mcmm-serve-v1\",\"cell_count\":";
  out += std::to_string(m.entry_count());
  out += ",\"description_count\":";
  out += std::to_string(m.description_count());
  out += ",\"total_routes\":";
  out += std::to_string(m.total_route_count());
  out += ",\"cells\":[";
  bool first = true;
  for (const SupportEntry* e : m.entries()) {
    if (!first) out += ',';
    first = false;
    append_entry(out, *e);
  }
  out += "],\"descriptions\":[";
  first = true;
  for (const Description* d : m.descriptions()) {
    if (!first) out += ',';
    first = false;
    append_description(out, *d);
  }
  out += "]}\n";
  return out;
}

std::string cell_json(const CompatibilityMatrix& m, const SupportEntry& e) {
  std::string out = "{\"schema\":\"mcmm-serve-v1\",\"cell\":";
  append_entry(out, e);
  out += ",\"description\":";
  append_description(out, m.description(e.description_id));
  out += "}\n";
  return out;
}

std::string claims_json(const CompatibilityMatrix& m) {
  const Claims claims(m);
  std::string out = "{\"schema\":\"mcmm-serve-v1\",\"claims\":[";
  bool first = true;
  bool all_hold = true;
  for (const ClaimResult& r : claims.evaluate_all()) {
    if (!first) out += ',';
    first = false;
    all_hold = all_hold && r.holds;
    out += "{\"id\":";
    out += json_quote(r.id);
    out += ",\"statement\":";
    out += json_quote(r.statement);
    out += ",\"holds\":";
    out += r.holds ? "true" : "false";
    out += ",\"evidence\":";
    out += json_quote(r.evidence);
    out += '}';
  }
  out += "],\"all_hold\":";
  out += all_hold ? "true" : "false";
  out += "}\n";
  return out;
}

std::string index_json() {
  return R"({"service":"mcmm serve","schema":"mcmm-serve-v1","endpoints":[)"
         R"({"method":"GET","path":"/v1/matrix",)"
         R"("query":"format=json|txt|md|csv|html|latex|yaml"},)"
         R"({"method":"GET","path":"/v1/cell/{vendor}/{model}/{language}"},)"
         R"({"method":"POST","path":"/v1/plan"},)"
         R"({"method":"GET","path":"/v1/claims"},)"
         R"({"method":"GET","path":"/v1/perf",)"
         R"("query":"format=json|txt|md|csv|html|latex|yaml"},)"
         R"({"method":"GET","path":"/healthz"},)"
         R"({"method":"GET","path":"/metrics"}]})"
         "\n";
}

// --- POST /v1/plan body -> PlannerQuery ----------------------------------

/// Reads a string array member into `out` via `parse` (vendors/models).
template <typename T, typename Parse>
bool read_enum_array(const JsonValue& node, Parse parse, std::vector<T>& out,
                     std::string& error, const char* what) {
  if (node.kind != JsonValue::Kind::Array) {
    error = std::string(what) + " must be an array of strings";
    return false;
  }
  for (const JsonValue& item : node.array) {
    if (item.kind != JsonValue::Kind::String) {
      error = std::string(what) + " must contain only strings";
      return false;
    }
    const auto parsed = parse(item.string);
    if (!parsed) {
      error = "unknown " + std::string(what) + ": " + item.string;
      return false;
    }
    out.push_back(*parsed);
  }
  return true;
}

bool read_bool(const JsonValue& node, bool& out, std::string& error,
               const char* what) {
  if (node.kind != JsonValue::Kind::Bool) {
    error = std::string(what) + " must be a boolean";
    return false;
  }
  out = node.boolean;
  return true;
}

/// Builds a PlannerQuery from the request document; false + `error` on any
/// unknown key, missing language, or type mismatch (strict by design — a
/// typo'd constraint silently ignored would return wrong advice).
bool parse_plan_query(const JsonValue& doc, PlannerQuery& q,
                      std::string& error) {
  if (doc.kind != JsonValue::Kind::Object) {
    error = "request body must be a JSON object";
    return false;
  }
  bool have_language = false;
  for (const auto& [key, value] : doc.object) {
    if (key == "language") {
      if (value.kind != JsonValue::Kind::String) {
        error = "language must be a string";
        return false;
      }
      const auto language = parse_language(value.string);
      if (!language) {
        error = "unknown language: " + value.string;
        return false;
      }
      q.language = *language;
      have_language = true;
    } else if (key == "must_run_on") {
      if (!read_enum_array(value, parse_vendor, q.must_run_on, error,
                           "must_run_on")) {
        return false;
      }
    } else if (key == "allowed_models") {
      if (!read_enum_array(value, parse_model, q.allowed_models, error,
                           "allowed_models")) {
        return false;
      }
    } else if (key == "minimum_category") {
      if (value.kind != JsonValue::Kind::String) {
        error = "minimum_category must be a string";
        return false;
      }
      const auto category = parse_category(value.string);
      if (!category) {
        error = "unknown minimum_category: " + value.string;
        return false;
      }
      q.minimum_category = *category;
    } else if (key == "require_maintained") {
      if (!read_bool(value, q.require_maintained, error,
                     "require_maintained")) {
        return false;
      }
    } else if (key == "require_vendor_support") {
      if (!read_bool(value, q.require_vendor_support, error,
                     "require_vendor_support")) {
        return false;
      }
    } else if (key == "allow_translators") {
      if (!read_bool(value, q.allow_translators, error, "allow_translators")) {
        return false;
      }
    } else {
      error = "unknown key: " + key;
      return false;
    }
  }
  if (!have_language) {
    error = "missing required key: language";
    return false;
  }
  return true;
}

std::string plan_json(const PlannerQuery& q,
                      const std::vector<PlannedRoute>& plans) {
  std::string out = "{\"schema\":\"mcmm-serve-v1\",\"query\":{\"language\":";
  out += json_quote(to_string(q.language));
  out += ",\"must_run_on\":[";
  for (std::size_t i = 0; i < q.must_run_on.size(); ++i) {
    if (i != 0) out += ',';
    out += json_quote(to_string(q.must_run_on[i]));
  }
  out += "],\"allowed_models\":[";
  for (std::size_t i = 0; i < q.allowed_models.size(); ++i) {
    if (i != 0) out += ',';
    out += json_quote(to_string(q.allowed_models[i]));
  }
  out += "],\"minimum_category\":";
  out += json_quote(category_name(q.minimum_category));
  out += ",\"require_maintained\":";
  out += q.require_maintained ? "true" : "false";
  out += ",\"require_vendor_support\":";
  out += q.require_vendor_support ? "true" : "false";
  out += ",\"allow_translators\":";
  out += q.allow_translators ? "true" : "false";
  out += "},\"route_count\":";
  out += std::to_string(plans.size());
  out += ",\"routes\":[";
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const PlannedRoute& p = plans[i];
    if (i != 0) out += ',';
    out += "{\"model\":";
    out += json_quote(to_string(p.model));
    out += ",\"rank\":";
    out += std::to_string(p.rank);
    out += ",\"rationale\":";
    out += json_quote(p.rationale);
    out += ",\"platforms\":[";
    for (std::size_t j = 0; j < p.platforms.size(); ++j) {
      const PlannedRoute::PerVendor& v = p.platforms[j];
      if (j != 0) out += ',';
      out += "{\"vendor\":";
      out += json_quote(to_string(v.vendor));
      out += ",\"category\":";
      out += json_quote(category_name(v.category));
      out += ",\"route\":";
      append_route(out, v.route);
      out += '}';
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

/// True when an If-None-Match header value matches a strong `etag`
/// ("*" or any member of the comma-separated entity-tag list).
bool etag_matches(std::string_view header_value, std::string_view etag) {
  std::string_view rest = header_value;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view token = comma == std::string_view::npos
                                 ? rest
                                 : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    while (!token.empty() && (token.front() == ' ' || token.front() == '\t')) {
      token.remove_prefix(1);
    }
    while (!token.empty() && (token.back() == ' ' || token.back() == '\t')) {
      token.remove_suffix(1);
    }
    if (token == "*" || token == etag) return true;
  }
  return false;
}

Response method_not_allowed(std::string_view allow) {
  Response r = error_response(405, "method not allowed");
  r.extra_headers.emplace_back("Allow", std::string(allow));
  return r;
}

}  // namespace

std::string etag_for(std::string_view body) {
  // FNV-1a 64: cheap, stable across runs (no seed), and collision-safe
  // enough for a cache of ~60 immutable resources.
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : body) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string("\"") + hex + '"';
}

Api::Cached Api::make_cached(std::string body, std::string content_type) {
  Cached c;
  c.etag = etag_for(body);
  c.body = std::move(body);
  c.content_type = std::move(content_type);
  return c;
}

Api::Api(const CompatibilityMatrix& matrix, const Metrics* metrics,
         const std::atomic<bool>* draining,
         const perfport::PerfReport* perf)
    : matrix_(&matrix), metrics_(metrics), draining_(draining) {
  const char* text_plain = "text/plain; charset=utf-8";
  matrix_formats_.emplace(
      "json", make_cached(matrix_json(matrix), "application/json"));
  matrix_formats_.emplace(
      "txt", make_cached(render::figure1_text(matrix), text_plain));
  matrix_formats_.emplace(
      "md", make_cached(render::figure1_markdown(matrix),
                        "text/markdown; charset=utf-8"));
  matrix_formats_.emplace("csv", make_cached(render::matrix_csv(matrix),
                                             "text/csv; charset=utf-8"));
  matrix_formats_.emplace("html", make_cached(render::figure1_html(matrix),
                                              "text/html; charset=utf-8"));
  matrix_formats_.emplace("latex", make_cached(render::figure1_latex(matrix),
                                               "application/x-tex"));
  matrix_formats_.emplace(
      "yaml",
      make_cached(yamlx::matrix_to_yaml_text(matrix), "application/yaml"));
  if (perf != nullptr) {
    perf_formats_.emplace(
        "json", make_cached(perfport::report_json(*perf), "application/json"));
    perf_formats_.emplace(
        "txt", make_cached(render::figure2_text(*perf), text_plain));
    perf_formats_.emplace(
        "md", make_cached(render::figure2_markdown(*perf),
                          "text/markdown; charset=utf-8"));
    perf_formats_.emplace("csv", make_cached(render::figure2_csv(*perf),
                                             "text/csv; charset=utf-8"));
    perf_formats_.emplace("html", make_cached(render::figure2_html(*perf),
                                              "text/html; charset=utf-8"));
    perf_formats_.emplace(
        "latex", make_cached(render::figure2_latex(*perf),
                             "application/x-tex"));
    perf_formats_.emplace("yaml", make_cached(render::figure2_yaml(*perf),
                                              "application/yaml"));
  }
  for (const SupportEntry* e : matrix.entries()) {
    cells_.emplace(e->combo,
                   make_cached(cell_json(matrix, *e), "application/json"));
  }
  claims_ = make_cached(claims_json(matrix), "application/json");
  index_ = make_cached(index_json(), "application/json");
}

Response Api::handle_health() const {
  Response r;
  std::string body = "{\"status\":\"ok\",\"pid\":";
  body += std::to_string(::getpid());
  body += ",\"in_flight\":";
  // The gauge counts this /healthz request too; report the load a prober
  // actually cares about — everything else.
  const std::uint64_t gauge =
      metrics_ != nullptr ? metrics_->in_flight() : 0;
  body += std::to_string(gauge > 0 ? gauge - 1 : 0);
  body += ",\"draining\":";
  body += draining_ != nullptr &&
                  draining_->load(std::memory_order_relaxed)
              ? "true"
              : "false";
  body += "}\n";
  r.body = std::move(body);
  return r;
}

Response Api::deliver(const Cached& c, const Request& req) {
  Response r;
  r.etag = c.etag;
  const std::string* inm = req.header("if-none-match");
  if (inm != nullptr && etag_matches(*inm, c.etag)) {
    r.status = 304;
    return r;
  }
  r.content_type = c.content_type;
  r.body = c.body;
  return r;
}

Response Api::handle_matrix(const Request& req) const {
  std::string_view format = req.query_param("format", "json");
  if (format == "text") format = "txt";
  if (format == "markdown") format = "md";
  if (format == "tex") format = "latex";
  const auto it = matrix_formats_.find(format);
  if (it == matrix_formats_.end()) {
    return error_response(
        400, "unknown format (want json|txt|md|csv|html|latex|yaml)");
  }
  return deliver(it->second, req);
}

Response Api::handle_perf(const Request& req) const {
  if (perf_formats_.empty()) {
    return error_response(
        404, "perf campaign disabled (start the server with --perf)");
  }
  std::string_view format = req.query_param("format", "json");
  if (format == "text") format = "txt";
  if (format == "markdown") format = "md";
  if (format == "tex") format = "latex";
  const auto it = perf_formats_.find(format);
  if (it == perf_formats_.end()) {
    return error_response(
        400, "unknown format (want json|txt|md|csv|html|latex|yaml)");
  }
  return deliver(it->second, req);
}

Response Api::handle_cell(const Request& req) const {
  // Path shape: /v1/cell/{vendor}/{model}/{language}
  std::string_view rest = std::string_view(req.path).substr(9);
  if (!rest.empty() && rest.front() == '/') rest.remove_prefix(1);
  std::string_view parts[3];
  int count = 0;
  while (!rest.empty() && count < 3) {
    const std::size_t slash = rest.find('/');
    parts[count++] =
        slash == std::string_view::npos ? rest : rest.substr(0, slash);
    rest = slash == std::string_view::npos ? std::string_view{}
                                           : rest.substr(slash + 1);
  }
  if (count != 3 || !rest.empty()) {
    return error_response(404, "want /v1/cell/{vendor}/{model}/{language}");
  }
  const auto vendor = parse_vendor(parts[0]);
  const auto model = parse_model(parts[1]);
  const auto language = parse_language(parts[2]);
  if (!vendor || !model || !language) {
    return error_response(404, "unknown vendor, model, or language");
  }
  const auto it = cells_.find(Combination{*vendor, *model, *language});
  if (it == cells_.end()) {
    return error_response(404,
                          "no such cell (language does not apply to model?)");
  }
  return deliver(it->second, req);
}

Response Api::handle_plan(const Request& req) const {
  std::string parse_error;
  const auto doc = json_parse(req.body, &parse_error);
  if (!doc) {
    return error_response(400, "invalid JSON body: " + parse_error);
  }
  PlannerQuery query;
  std::string query_error;
  if (!parse_plan_query(*doc, query, query_error)) {
    return error_response(400, query_error);
  }
  const RoutePlanner planner(*matrix_);
  Response r;
  r.body = plan_json(query, planner.plan(query));
  return r;
}

Response Api::handle(const Request& req) const {
  const bool is_get = req.method == "GET" || req.method == "HEAD";
  const std::string& path = req.path;
  if (path == "/" || path == "/v1") {
    return is_get ? deliver(index_, req) : method_not_allowed("GET, HEAD");
  }
  if (path == "/healthz") {
    return is_get ? handle_health() : method_not_allowed("GET, HEAD");
  }
  if (path == "/metrics") {
    if (!is_get) return method_not_allowed("GET, HEAD");
    Response r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = metrics_ != nullptr ? metrics_->prometheus_text() : std::string();
    return r;
  }
  if (path == "/v1/matrix") {
    return is_get ? handle_matrix(req) : method_not_allowed("GET, HEAD");
  }
  if (path == "/v1/perf") {
    return is_get ? handle_perf(req) : method_not_allowed("GET, HEAD");
  }
  if (path.rfind("/v1/cell/", 0) == 0) {
    return is_get ? handle_cell(req) : method_not_allowed("GET, HEAD");
  }
  if (path == "/v1/plan") {
    return req.method == "POST" ? handle_plan(req)
                                : method_not_allowed("POST");
  }
  if (path == "/v1/claims") {
    return is_get ? deliver(claims_, req) : method_not_allowed("GET, HEAD");
  }
  return error_response(404, "no such endpoint (GET / lists them)");
}

}  // namespace mcmm::serve
