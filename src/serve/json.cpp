#include "serve/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace mcmm::serve {
namespace {

constexpr int kMaxDepth = 64;

/// Cursor over the input with a single-error channel.
struct Parser {
  std::string_view text;
  std::size_t pos{0};
  std::string error;

  [[nodiscard]] bool failed() const noexcept { return !error.empty(); }

  void fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at byte " + std::to_string(pos);
    }
  }

  [[nodiscard]] bool at_end() const noexcept { return pos >= text.size(); }

  [[nodiscard]] char peek() const noexcept {
    return at_end() ? '\0' : text[pos];
  }

  void skip_ws() noexcept {
    while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                         text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) noexcept {
    if (peek() != c) return false;
    ++pos;
    return true;
  }

  bool consume_word(std::string_view word) noexcept {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }
};

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

bool parse_hex4(Parser& p, std::uint32_t& out) {
  if (p.pos + 4 > p.text.size()) {
    p.fail("truncated \\u escape");
    return false;
  }
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    const char c = p.text[p.pos + static_cast<std::size_t>(i)];
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      p.fail("bad hex digit in \\u escape");
      return false;
    }
  }
  p.pos += 4;
  out = value;
  return true;
}

bool parse_string(Parser& p, std::string& out) {
  if (!p.consume('"')) {
    p.fail("expected string");
    return false;
  }
  for (;;) {
    if (p.at_end()) {
      p.fail("unterminated string");
      return false;
    }
    const char c = p.text[p.pos];
    if (c == '"') {
      ++p.pos;
      return true;
    }
    if (static_cast<unsigned char>(c) < 0x20) {
      p.fail("unescaped control character in string");
      return false;
    }
    if (c != '\\') {
      out += c;
      ++p.pos;
      continue;
    }
    ++p.pos;  // the backslash
    if (p.at_end()) {
      p.fail("truncated escape");
      return false;
    }
    const char esc = p.text[p.pos++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        std::uint32_t cp = 0;
        if (!parse_hex4(p, cp)) return false;
        if (cp >= 0xD800 && cp <= 0xDBFF) {
          // High surrogate: a low surrogate must follow.
          if (!p.consume('\\') || !p.consume('u')) {
            p.fail("lone high surrogate");
            return false;
          }
          std::uint32_t low = 0;
          if (!parse_hex4(p, low)) return false;
          if (low < 0xDC00 || low > 0xDFFF) {
            p.fail("bad low surrogate");
            return false;
          }
          cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
          p.fail("lone low surrogate");
          return false;
        }
        append_utf8(out, cp);
        break;
      }
      default:
        p.fail("unknown escape");
        return false;
    }
  }
}

bool parse_value(Parser& p, JsonValue& out, int depth);

bool parse_number(Parser& p, JsonValue& out) {
  const std::size_t start = p.pos;
  if (p.peek() == '-') ++p.pos;
  if (!std::isdigit(static_cast<unsigned char>(p.peek()))) {
    p.fail("bad number");
    return false;
  }
  const bool leading_zero = p.peek() == '0';
  while (std::isdigit(static_cast<unsigned char>(p.peek()))) ++p.pos;
  if (leading_zero && p.pos - start > (p.text[start] == '-' ? 2u : 1u)) {
    p.fail("leading zero");  // RFC 8259: int is 0 / digit1-9 *DIGIT
    return false;
  }
  if (p.peek() == '.') {
    ++p.pos;
    if (!std::isdigit(static_cast<unsigned char>(p.peek()))) {
      p.fail("bad fraction");
      return false;
    }
    while (std::isdigit(static_cast<unsigned char>(p.peek()))) ++p.pos;
  }
  if (p.peek() == 'e' || p.peek() == 'E') {
    ++p.pos;
    if (p.peek() == '+' || p.peek() == '-') ++p.pos;
    if (!std::isdigit(static_cast<unsigned char>(p.peek()))) {
      p.fail("bad exponent");
      return false;
    }
    while (std::isdigit(static_cast<unsigned char>(p.peek()))) ++p.pos;
  }
  const std::string_view token = p.text.substr(start, p.pos - start);
  double value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    p.fail("unrepresentable number");
    return false;
  }
  out.kind = JsonValue::Kind::Number;
  out.number = value;
  return true;
}

bool parse_array(Parser& p, JsonValue& out, int depth) {
  ++p.pos;  // '['
  out.kind = JsonValue::Kind::Array;
  p.skip_ws();
  if (p.consume(']')) return true;
  for (;;) {
    JsonValue item;
    if (!parse_value(p, item, depth + 1)) return false;
    out.array.push_back(std::move(item));
    p.skip_ws();
    if (p.consume(']')) return true;
    if (!p.consume(',')) {
      p.fail("expected ',' or ']'");
      return false;
    }
    p.skip_ws();
  }
}

bool parse_object(Parser& p, JsonValue& out, int depth) {
  ++p.pos;  // '{'
  out.kind = JsonValue::Kind::Object;
  p.skip_ws();
  if (p.consume('}')) return true;
  for (;;) {
    p.skip_ws();
    std::string key;
    if (!parse_string(p, key)) return false;
    p.skip_ws();
    if (!p.consume(':')) {
      p.fail("expected ':'");
      return false;
    }
    JsonValue value;
    if (!parse_value(p, value, depth + 1)) return false;
    out.object.emplace_back(std::move(key), std::move(value));
    p.skip_ws();
    if (p.consume('}')) return true;
    if (!p.consume(',')) {
      p.fail("expected ',' or '}'");
      return false;
    }
  }
}

bool parse_value(Parser& p, JsonValue& out, int depth) {
  if (depth > kMaxDepth) {
    p.fail("nesting too deep");
    return false;
  }
  p.skip_ws();
  switch (p.peek()) {
    case '{': return parse_object(p, out, depth);
    case '[': return parse_array(p, out, depth);
    case '"':
      out.kind = JsonValue::Kind::String;
      return parse_string(p, out.string);
    case 't':
      if (!p.consume_word("true")) break;
      out.kind = JsonValue::Kind::Bool;
      out.boolean = true;
      return true;
    case 'f':
      if (!p.consume_word("false")) break;
      out.kind = JsonValue::Kind::Bool;
      out.boolean = false;
      return true;
    case 'n':
      if (!p.consume_word("null")) break;
      out.kind = JsonValue::Kind::Null;
      return true;
    default:
      if (p.peek() == '-' ||
          std::isdigit(static_cast<unsigned char>(p.peek()))) {
        return parse_number(p, out);
      }
      break;
  }
  p.fail("expected a JSON value");
  return false;
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error) {
  Parser p{text, 0, {}};
  JsonValue root;
  if (!parse_value(p, root, 0)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (!p.at_end()) {
    p.fail("trailing garbage after document");
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  return root;
}

void json_escape(std::string& out, std::string_view in) {
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
}

std::string json_quote(std::string_view in) {
  std::string out;
  out.reserve(in.size() + 2);
  out += '"';
  json_escape(out, in);
  out += '"';
  return out;
}

}  // namespace mcmm::serve
