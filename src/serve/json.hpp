#pragma once
// Minimal JSON support for the mcmm serve API: RFC 8259 string escaping on
// the writer side and a small recursive-descent parser for request bodies
// (`POST /v1/plan`). Dependency-free on purpose — the payloads are tiny and
// the repo policy is to own its wire formats (see yamlx for the same call).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mcmm::serve {

/// One parsed JSON value. A plain struct (not a variant) keeps the parser
/// and its consumers simple; only the members matching `kind` are set.
struct JsonValue {
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind{Kind::Null};
  bool boolean{};
  double number{};
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
};

/// Parses a complete JSON document. Strict: rejects trailing garbage,
/// unescaped control characters, lone surrogates, and nesting deeper than
/// 64 levels. On failure returns nullopt and, when `error` is non-null,
/// stores a one-line diagnostic with the byte offset.
[[nodiscard]] std::optional<JsonValue> json_parse(
    std::string_view text, std::string* error = nullptr);

/// Appends `in` to `out` with all characters that RFC 8259 requires escaped
/// (quote, backslash, and control characters) escaped; everything else —
/// including multi-byte UTF-8 like the category symbols — passes through.
void json_escape(std::string& out, std::string_view in);

/// `in` escaped and wrapped in double quotes.
[[nodiscard]] std::string json_quote(std::string_view in);

}  // namespace mcmm::serve
