#include "translate/rewriter.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace mcmm::translate::detail {
namespace {

[[nodiscard]] bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Regions of the source that must not be rewritten: string/char literals
/// and comments.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> skip_regions(
    const std::string& s) {
  std::vector<std::pair<std::size_t, std::size_t>> regions;
  std::size_t i = 0;
  while (i < s.size()) {
    if (s[i] == '"' || s[i] == '\'') {
      const char quote = s[i];
      const std::size_t begin = i++;
      while (i < s.size() && s[i] != quote) {
        if (s[i] == '\\') ++i;
        ++i;
      }
      regions.emplace_back(begin, std::min(i + 1, s.size()));
      ++i;
    } else if (s[i] == '/' && i + 1 < s.size() && s[i + 1] == '/') {
      const std::size_t begin = i;
      while (i < s.size() && s[i] != '\n') ++i;
      regions.emplace_back(begin, i);
    } else if (s[i] == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      const std::size_t begin = i;
      i += 2;
      while (i + 1 < s.size() && !(s[i] == '*' && s[i + 1] == '/')) ++i;
      i = std::min(i + 2, s.size());
      regions.emplace_back(begin, i);
    } else {
      ++i;
    }
  }
  return regions;
}

[[nodiscard]] bool in_regions(
    const std::vector<std::pair<std::size_t, std::size_t>>& regions,
    std::size_t pos) {
  for (const auto& [b, e] : regions) {
    if (pos >= b && pos < e) return true;
  }
  return false;
}

}  // namespace

namespace {

/// Boundary checks only apply on sides where the pattern itself is an
/// identifier character — "copyin(" and "#pragma acc ..." patterns carry
/// their own right/left delimiters.
[[nodiscard]] bool needs_left_boundary(const std::string& token) {
  return !token.empty() && ident_char(token.front());
}
[[nodiscard]] bool needs_right_boundary(const std::string& token) {
  return !token.empty() && ident_char(token.back());
}

}  // namespace

bool contains_token(const std::string& source, const std::string& token) {
  const auto regions = skip_regions(source);
  std::size_t pos = source.find(token);
  while (pos != std::string::npos) {
    const bool left_ok = !needs_left_boundary(token) || pos == 0 ||
                         !ident_char(source[pos - 1]);
    const bool right_ok = !needs_right_boundary(token) ||
                          pos + token.size() >= source.size() ||
                          !ident_char(source[pos + token.size()]);
    if (left_ok && right_ok && !in_regions(regions, pos)) return true;
    pos = source.find(token, pos + 1);
  }
  return false;
}

TranslationResult rewrite(const std::string& source,
                          const std::vector<Rule>& rules,
                          const std::vector<Blocker>& blockers) {
  TranslationResult result;

  // Longest-from first so e.g. cudaMemcpyAsync wins over cudaMemcpy.
  std::vector<const Rule*> ordered;
  ordered.reserve(rules.size());
  for (const Rule& r : rules) ordered.push_back(&r);
  std::sort(ordered.begin(), ordered.end(),
            [](const Rule* a, const Rule* b) {
              return a->from.size() > b->from.size();
            });

  std::set<std::string> fired;
  std::string out;
  out.reserve(source.size());
  const auto regions = skip_regions(source);

  std::size_t i = 0;
  while (i < source.size()) {
    if (in_regions(regions, i)) {
      out += source[i++];
      continue;
    }
    const Rule* matched = nullptr;
    for (const Rule* r : ordered) {
      if (needs_left_boundary(r->from) && i > 0 &&
          ident_char(source[i - 1])) {
        continue;
      }
      if (source.compare(i, r->from.size(), r->from) == 0) {
        const std::size_t end = i + r->from.size();
        if (!needs_right_boundary(r->from) || end >= source.size() ||
            !ident_char(source[end])) {
          matched = r;
          break;
        }
      }
    }
    if (matched != nullptr) {
      out += matched->to;
      i += matched->from.size();
      if (fired.insert(matched->from).second) {
        result.diagnostics.push_back(Diagnostic{
            Severity::Info, matched->from,
            matched->note.empty()
                ? "converted to " + matched->to
                : matched->note});
      }
      continue;
    }
    out += source[i++];
  }

  for (const Blocker& b : blockers) {
    if (contains_token(source, b.token)) {
      result.diagnostics.push_back(
          Diagnostic{Severity::Unconverted, b.token, b.message});
    }
  }

  result.code = std::move(out);
  return result;
}

}  // namespace mcmm::translate::detail
