// Intel "Application Migration Tool for OpenACC to OpenMP API" analogue.
// Handles both directive text (#pragma acc ...) and the accx structured
// embedding, mapping them to OpenMP equivalents (items 22, 23, 36, 37).

#include "translate/rewriter.hpp"
#include "translate/translate.hpp"

namespace mcmm::translate {
namespace {

using detail::Blocker;
using detail::Rule;

const std::vector<Rule>& acc_rules() {
  static const std::vector<Rule> rules = {
      // Directive forms (longest first handled by the rewriter).
      {"#pragma acc parallel loop reduction",
       "#pragma omp target teams distribute parallel for reduction", ""},
      {"#pragma acc parallel loop gang vector",
       "#pragma omp target teams distribute parallel for", ""},
      {"#pragma acc parallel loop",
       "#pragma omp target teams distribute parallel for", ""},
      {"#pragma acc kernels loop",
       "#pragma omp target teams distribute parallel for",
       "kernels-mode autoparallelization approximated by explicit "
       "distribution"},
      {"#pragma acc kernels", "#pragma omp target",
       "kernels-mode autoparallelization approximated"},
      {"#pragma acc data", "#pragma omp target data", ""},
      {"#pragma acc enter data", "#pragma omp target enter data", ""},
      {"#pragma acc exit data", "#pragma omp target exit data", ""},
      {"#pragma acc update self", "#pragma omp target update from", ""},
      {"#pragma acc update device", "#pragma omp target update to", ""},
      {"#pragma acc wait", "#pragma omp taskwait", ""},
      {"#pragma acc loop seq", "", "sequential loop: directive dropped"},
      // Clause vocabulary (the open parenthesis is part of the pattern, so
      // the original closing parenthesis completes the map() clause).
      {"copyin(", "map(to: ", ""},
      {"copyout(", "map(from: ", ""},
      {"present(", "map(alloc: ",
       "present-semantics approximated with alloc"},
      {"num_gangs", "num_teams", ""},
      {"vector_length", "thread_limit", ""},
      {"gang", "distribute", ""},
      // Embedding API forms (accx -> ompx).
      {"accx::Accelerator", "ompx::TargetDevice", ""},
      {"accx::data_region", "ompx::target_data", ""},
      {"acc.parallel_loop_reduce", "ompx::target_teams_reduce",
       "device argument moves to the front"},
      {"acc.parallel_loop", "ompx::target_teams_distribute_parallel_for",
       "device argument moves to the front"},
      {"accx", "ompx", "mcmm embedding namespace"},
  };
  return rules;
}

const std::vector<Blocker>& acc_blockers() {
  static const std::vector<Blocker> blockers = {
      {"acc_get_device_type",
       "OpenACC runtime API calls are not translated (manual port)"},
      {"acc_set_device_num",
       "OpenACC runtime API calls are not translated (manual port)"},
      {"#pragma acc cache",
       "cache directive: no OpenMP equivalent, review for shared-memory "
       "use"},
      {"#pragma acc atomic capture",
       "atomic capture ordering differs; review manually"},
      {"#pragma acc declare",
       "declare directive: global data placement must be restructured"},
      {"async(", "async clauses need explicit OpenMP task dependences"},
  };
  return blockers;
}

}  // namespace

TranslationResult acc2omp(const std::string& acc_source) {
  return detail::rewrite(acc_source, acc_rules(), acc_blockers());
}

CoverageReport acc2omp_coverage() {
  CoverageReport report;
  report.constructs_total = acc_rules().size() + acc_blockers().size();
  report.constructs_converted = acc_rules().size();
  return report;
}

}  // namespace mcmm::translate
