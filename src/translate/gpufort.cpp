#include "translate/gpufort.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace mcmm::translate {
namespace {

[[nodiscard]] std::string lowered(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

[[nodiscard]] std::string trimmed(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return {};
  const std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

[[nodiscard]] std::string indent_of(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t");
  return s.substr(0, b == std::string::npos ? 0 : b);
}

/// Replaces every case-insensitive occurrence of `from` in `line`.
[[nodiscard]] std::string replace_ci(std::string line, const std::string& from,
                                     const std::string& to) {
  const std::string low_from = lowered(from);
  std::string low = lowered(line);
  std::size_t pos = 0;
  while ((pos = low.find(low_from, pos)) != std::string::npos) {
    line.replace(pos, from.size(), to);
    low = lowered(line);
    pos += to.size();
  }
  return line;
}

[[nodiscard]] bool contains_ci(const std::string& line,
                               const std::string& needle) {
  return lowered(line).find(lowered(needle)) != std::string::npos;
}

struct ChevronLaunch {
  std::string kernel;
  std::string config;  ///< "grid, block"
  std::string args;
};

/// Parses `call name<<<grid, block>>>(args)`.
[[nodiscard]] bool parse_chevron(const std::string& line,
                                 ChevronLaunch& out) {
  const std::string low = lowered(line);
  const std::size_t call = low.find("call ");
  const std::size_t open = low.find("<<<");
  const std::size_t close = low.find(">>>");
  if (call == std::string::npos || open == std::string::npos ||
      close == std::string::npos || close < open) {
    return false;
  }
  out.kernel = trimmed(line.substr(call + 5, open - call - 5));
  out.config = trimmed(line.substr(open + 3, close - open - 3));
  const std::size_t paren = line.find('(', close);
  const std::size_t endparen = line.rfind(')');
  if (paren == std::string::npos || endparen == std::string::npos ||
      endparen < paren) {
    out.args = "";
  } else {
    out.args = trimmed(line.substr(paren + 1, endparen - paren - 1));
  }
  return true;
}

void diagnose_blockers(const std::string& source,
                       std::vector<Diagnostic>& diagnostics) {
  const struct {
    const char* token;
    const char* message;
  } blockers[] = {
      {"cudaMallocManaged",
       "managed memory is outside GPUFORT's covered functionality"},
      {"!$cuf", "cuf-kernel directives are not translated"},
      {"texture", "texture memory requires manual porting"},
      {"shared ::", "dynamic shared memory is not translated"},
      {"cudaStreamCreate", "streams are outside the covered subset"},
  };
  for (const auto& b : blockers) {
    if (contains_ci(source, b.token)) {
      diagnostics.push_back(
          Diagnostic{Severity::Unconverted, b.token, b.message});
    }
  }
}

/// Extracts an attributes(global) subroutine block starting at `i`;
/// returns the index just past `end subroutine` and appends the C++ stub.
std::size_t extract_kernel(const std::vector<std::string>& lines,
                           std::size_t i,
                           std::vector<std::string>& kernels,
                           std::vector<std::string>& out_lines) {
  // Header: attributes(global) subroutine name(args)
  const std::string& header = lines[i];
  const std::string low = lowered(header);
  const std::size_t sub = low.find("subroutine");
  std::string name = "kernel";
  std::string args;
  if (sub != std::string::npos) {
    const std::size_t paren = header.find('(', sub);
    name = trimmed(header.substr(
        sub + 10, paren == std::string::npos ? std::string::npos
                                             : paren - sub - 10));
    if (paren != std::string::npos) {
      const std::size_t close = header.find(')', paren);
      if (close != std::string::npos) {
        args = trimmed(header.substr(paren + 1, close - paren - 1));
      }
    }
  }
  std::ostringstream stub;
  stub << "// extracted from CUDA Fortran kernel '" << name << "'\n"
       << "__global__ void " << name << "(/* " << args << " */) {\n";
  std::size_t j = i + 1;
  while (j < lines.size() && !contains_ci(lines[j], "end subroutine")) {
    stub << "  // " << trimmed(lines[j]) << "\n";
    ++j;
  }
  stub << "}\n";
  kernels.push_back(stub.str());
  out_lines.push_back("! kernel '" + name + "' extracted to HIP C++ (see " +
                      name + ".hip.cpp); interface via hipfort");
  return j + 1;  // past 'end subroutine'
}

}  // namespace

GpufortResult gpufort(const std::string& source, GpufortMode mode) {
  GpufortResult result;
  diagnose_blockers(source, result.diagnostics);

  std::vector<std::string> lines;
  {
    std::istringstream in(source);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }

  std::vector<std::string> out;
  for (std::size_t i = 0; i < lines.size();) {
    const std::string& line = lines[i];
    const std::string low = lowered(trimmed(line));

    // use cudafor -> mode-specific module.
    if (low == "use cudafor") {
      out.push_back(indent_of(line) +
                    (mode == GpufortMode::ToOpenMP ? "use omp_lib"
                                                   : "use hipfort"));
      ++i;
      continue;
    }

    // Device kernels.
    if (contains_ci(line, "attributes(global)")) {
      if (mode == GpufortMode::ToHipfort) {
        i = extract_kernel(lines, i, result.extracted_kernels, out);
        continue;
      }
      // ToOpenMP: the kernel body becomes a plain subroutine; the launch
      // sites get the directives.
      out.push_back(replace_ci(line, "attributes(global) ", ""));
      result.diagnostics.push_back(Diagnostic{
          Severity::Info, "attributes(global)",
          "kernel demoted to host subroutine; parallelism moves to the "
          "OpenMP directives at the call sites"});
      ++i;
      continue;
    }

    // Chevron launches.
    ChevronLaunch launch;
    if (parse_chevron(line, launch)) {
      const std::string pad = indent_of(line);
      if (mode == GpufortMode::ToOpenMP) {
        out.push_back(pad + "!$omp target teams distribute parallel do");
        out.push_back(pad + "call " + launch.kernel + "(" + launch.args +
                      ")");
        out.push_back(pad + "!$omp end target teams distribute parallel do");
      } else {
        out.push_back(pad + "call hipLaunchKernel(c_funloc(" +
                      launch.kernel + "), " + launch.config + ", " +
                      launch.args + ")");
      }
      if (result.diagnostics.empty() ||
          result.diagnostics.back().token != "<<<>>>") {
        result.diagnostics.push_back(Diagnostic{
            Severity::Info, "<<<>>>",
            mode == GpufortMode::ToOpenMP
                ? "chevron launch replaced by OpenMP target directives"
                : "chevron launch replaced by hipLaunchKernel via hipfort"});
      }
      ++i;
      continue;
    }

    // API calls and declarations.
    std::string rewritten = line;
    if (mode == GpufortMode::ToOpenMP) {
      // Under OpenMP the explicit device management disappears into map
      // clauses; keep the lines as comments for the human reviewer.
      if (contains_ci(line, "cudaMalloc") || contains_ci(line, "cudaFree") ||
          contains_ci(line, "cudaMemcpy")) {
        out.push_back(indent_of(line) + "! gpufort: device data now " +
                      "managed by OpenMP map clauses — was: " +
                      trimmed(line));
        ++i;
        continue;
      }
      rewritten = replace_ci(rewritten, "cudaDeviceSynchronize()",
                             "omp_target_sync()");
      rewritten = replace_ci(rewritten, ", device ::", " ::");
    } else {
      rewritten = replace_ci(rewritten, "cudaMalloc", "hipMalloc");
      rewritten = replace_ci(rewritten, "cudaMemcpyHostToDevice",
                             "hipMemcpyHostToDevice");
      rewritten = replace_ci(rewritten, "cudaMemcpyDeviceToHost",
                             "hipMemcpyDeviceToHost");
      rewritten = replace_ci(rewritten, "cudaMemcpy", "hipMemcpy");
      rewritten = replace_ci(rewritten, "cudaFree", "hipFree");
      rewritten = replace_ci(rewritten, "cudaDeviceSynchronize",
                             "hipDeviceSynchronize");
    }
    out.push_back(rewritten);
    ++i;
  }

  std::ostringstream joined;
  for (const std::string& l : out) joined << l << "\n";
  result.code = joined.str();
  return result;
}

}  // namespace mcmm::translate
