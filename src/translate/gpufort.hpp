#pragma once
// GPUFORT analogue (paper items 19 and 23): a source-to-source translator
// for a CUDA-Fortran-like subset, with the two output modes the paper
// describes — "Fortran with OpenMP (via AOMP)" and "Fortran with HIP
// bindings and extracted C kernels (via hipfort)". Like the original, the
// covered functionality is a use-case-driven subset; everything else is
// diagnosed, not silently dropped.

#include <string>
#include <vector>

#include "translate/translate.hpp"

namespace mcmm::translate {

enum class GpufortMode {
  ToOpenMP,   ///< CUF kernels/API -> Fortran + OpenMP target directives
  ToHipfort,  ///< API -> hipfort calls; device kernels extracted to C++
};

struct GpufortResult {
  std::string code;  ///< translated Fortran source
  /// HIP C++ kernel stubs extracted from attributes(global) subroutines
  /// (ToHipfort mode only).
  std::vector<std::string> extracted_kernels;
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] bool clean() const noexcept {
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == Severity::Unconverted) return false;
    }
    return true;
  }
};

/// Translates CUDA-Fortran-style source. Handles: `attributes(global)
/// subroutine ... end subroutine` device kernels, `use cudafor`,
/// cudaMalloc/cudaMemcpy/cudaFree/cudaDeviceSynchronize calls,
/// `call kernel<<<grid, block>>>(args)` chevron launches, and the
/// `device` variable attribute. Diagnoses: managed memory, textures,
/// cuf-kernel directives, dynamic shared memory.
[[nodiscard]] GpufortResult gpufort(const std::string& cuda_fortran_source,
                                    GpufortMode mode);

}  // namespace mcmm::translate
