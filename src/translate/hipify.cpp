// HIPIFY analogue: CUDA C++ -> HIP C++ over the cudax/hipx API surfaces.
// Rule table modelled on hipify-perl's simple-substitution core.

#include "translate/rewriter.hpp"
#include "translate/translate.hpp"

namespace mcmm::translate {
namespace {

using detail::Blocker;
using detail::Rule;

const std::vector<Rule>& hipify_rules() {
  static const std::vector<Rule> rules = {
      // Runtime API.
      {"cudaMalloc", "hipMalloc", ""},
      {"cudaFree", "hipFree", ""},
      {"cudaMemcpyAsync", "hipMemcpyAsync", ""},
      {"cudaMemcpy", "hipMemcpy", ""},
      {"cudaMemset", "hipMemset", ""},
      {"cudaMemcpyHostToDevice", "hipMemcpyHostToDevice", ""},
      {"cudaMemcpyDeviceToHost", "hipMemcpyDeviceToHost", ""},
      {"cudaMemcpyDeviceToDevice", "hipMemcpyDeviceToDevice", ""},
      {"cudaDeviceSynchronize", "hipDeviceSynchronize", ""},
      {"cudaSetDevice", "hipSetDevice", ""},
      {"cudaGetDevice", "hipGetDevice", ""},
      {"cudaGetDeviceCount", "hipGetDeviceCount", ""},
      {"cudaGetErrorString", "hipGetErrorString", ""},
      // Streams and events.
      {"cudaStreamCreate", "hipStreamCreate", ""},
      {"cudaStreamDestroy", "hipStreamDestroy", ""},
      {"cudaStreamSynchronize", "hipStreamSynchronize", ""},
      {"cudaStream_t", "hipStream_t", ""},
      {"cudaEventCreate", "hipEventCreate", ""},
      {"cudaEventDestroy", "hipEventDestroy", ""},
      {"cudaEventRecord", "hipEventRecord", ""},
      {"cudaEventElapsedTime", "hipEventElapsedTime", ""},
      {"cudaEvent_t", "hipEvent_t", ""},
      // Types and error codes.
      {"cudaError_t", "hipError_t", ""},
      {"cudaSuccess", "hipSuccess", ""},
      {"cudaErrorMemoryAllocation", "hipErrorOutOfMemory", ""},
      {"cudaErrorInvalidValue", "hipErrorInvalidValue", ""},
      {"cudaErrorInvalidDevice", "hipErrorInvalidDevice", ""},
      {"cudaErrorInvalidDevicePointer", "hipErrorInvalidDevicePointer", ""},
      // Launch seam of the embeddings (hipLaunchKernelGGL takes the kernel
      // first; hipify-perl performs the same reordering for <<<>>>).
      {"cudaLaunchKernel", "hipLaunchKernel", ""},
      {"cudaLaunch", "hipLaunchKernelGGL",
       "argument order differs: kernel moves to the front"},
      // Libraries (item 3: hipblasSaxpy() instead of cublasSaxpy()).
      {"cublasSaxpy", "hipblasSaxpy", ""},
      {"cublasDaxpy", "hipblasDaxpy", ""},
      {"cublasSgemm", "hipblasSgemm", ""},
      {"cublasDgemm", "hipblasDgemm", ""},
      {"cublasCreate", "hipblasCreate", ""},
      {"cublasDestroy", "hipblasDestroy", ""},
      {"cublasHandle_t", "hipblasHandle_t", ""},
      {"cufftExecC2C", "hipfftExecC2C", ""},
      {"cufftPlan1d", "hipfftPlan1d", ""},
      {"curandGenerateUniform", "hiprandGenerateUniform", ""},
      // Embedding namespaces.
      {"cudax", "hipx", "mcmm embedding namespace"},
      {"cuda_runtime.h", "hip_runtime.h", "header rename"},
  };
  return rules;
}

const std::vector<Blocker>& hipify_blockers() {
  static const std::vector<Blocker> blockers = {
      {"cudaGraphLaunch",
       "CUDA graphs have no direct HIP equivalent in this rule set"},
      {"cudaMallocManaged",
       "managed memory requires manual review on ROCm (HMM-dependent)"},
      {"__ldg", "read-only cache intrinsic: verify semantics on AMD"},
      {"cooperative_groups",
       "cooperative groups need the hip_cooperative_groups port"},
      {"cudaTextureObject_t", "texture objects require manual porting"},
  };
  return blockers;
}

}  // namespace

TranslationResult hipify(const std::string& cuda_source) {
  return detail::rewrite(cuda_source, hipify_rules(), hipify_blockers());
}

CoverageReport hipify_coverage() {
  CoverageReport report;
  report.constructs_total =
      hipify_rules().size() + hipify_blockers().size();
  report.constructs_converted = hipify_rules().size();
  return report;
}

}  // namespace mcmm::translate
