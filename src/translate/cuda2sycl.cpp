// SYCLomatic / DPC++ Compatibility Tool analogue: CUDA C++ -> SYCL C++.
// Unlike hipify (near-1:1), the CUDA->SYCL mapping changes programming
// style: error codes become exceptions, cudaMalloc becomes USM
// malloc_device, launches become parallel_for submissions. The real tool
// leaves "DPCT" warnings where a construct needs human attention; this one
// does the same through diagnostics.

#include "translate/rewriter.hpp"
#include "translate/translate.hpp"

namespace mcmm::translate {
namespace {

using detail::Blocker;
using detail::Rule;

const std::vector<Rule>& sycl_rules() {
  static const std::vector<Rule> rules = {
      // Memory management -> USM on an implicit queue `q`.
      {"cudaMalloc", "/*dpct*/ q.malloc_device",
       "returns the pointer instead of an error code; allocate via "
       "q.malloc_device<T>(count)"},
      {"cudaFree", "q.free", ""},
      {"cudaMemcpyAsync", "q.memcpy", "direction inferred from USM pointers"},
      {"cudaMemcpy", "q.memcpy", "direction inferred from USM pointers"},
      {"cudaMemset", "q.fill_bytes", ""},
      // The kind arguments disappear (USM infers them); neutralize them to
      // comments so the output stays compilable after manual cleanup.
      {"cudaMemcpyHostToDevice", "/*host-to-device*/", ""},
      {"cudaMemcpyDeviceToHost", "/*device-to-host*/", ""},
      {"cudaMemcpyDeviceToDevice", "/*device-to-device*/", ""},
      // Synchronization.
      {"cudaDeviceSynchronize", "q.wait", ""},
      {"cudaStreamSynchronize", "q.wait", "streams map to in-order queues"},
      {"cudaStream_t", "syclx::queue*", ""},
      // Launch: the embeddings' seam.
      {"cudaLaunch", "q.parallel_for",
       "grid/block collapse into a 1-D range; kernel context becomes the "
       "work-item id"},
      // Types.
      {"cudaError_t", "/*dpct: SYCL uses exceptions*/ int", ""},
      {"cudaSuccess", "0", ""},
      {"cudaGetErrorString", "/*dpct: catch sycl exceptions*/", ""},
      // Embedding namespaces.
      {"cudax", "syclx", "mcmm embedding namespace"},
      {"cuda_runtime.h", "syclx/syclx.hpp", "header rename"},
  };
  return rules;
}

const std::vector<Blocker>& sycl_blockers() {
  static const std::vector<Blocker> blockers = {
      {"cudaGraphLaunch", "CUDA graphs: no SYCL equivalent emitted"},
      {"__shfl_down_sync",
       "warp shuffles must be rewritten with sub-group operations"},
      {"__syncwarp", "no direct sub-group barrier mapping emitted"},
      {"cooperative_groups", "rewrite with SYCL groups manually"},
      {"cudaTextureObject_t", "use SYCL images/samplers manually"},
      {"cublasSgemm",
       "library call: port to oneMKL (no automatic mapping here)"},
      {"atomicAdd",
       "verify memory order: SYCL atomics default to stronger ordering"},
  };
  return blockers;
}

}  // namespace

TranslationResult cuda2sycl(const std::string& cuda_source) {
  return detail::rewrite(cuda_source, sycl_rules(), sycl_blockers());
}

CoverageReport cuda2sycl_coverage() {
  CoverageReport report;
  report.constructs_total = sycl_rules().size() + sycl_blockers().size();
  report.constructs_converted = sycl_rules().size();
  return report;
}

}  // namespace mcmm::translate
