#pragma once
// Source-to-source translators — the paper's conversion-tool routes:
//
//   hipify    — AMD's HIPIFY, CUDA C++ -> HIP C++ (items 3, 18)
//   cuda2sycl — Intel's SYCLomatic / DPC++ Compatibility Tool,
//               CUDA C++ -> SYCL C++ (items 5, 31)
//   acc2omp   — Intel's Application Migration Tool for OpenACC to OpenMP
//               (items 22, 23, 36, 37)
//
// The translators operate on real source text written against the cudax /
// accx embeddings and produce text written against the hipx / syclx / ompx
// embeddings. They are deliberately token/pattern-based — like the real
// hipify-perl — and report what they could not convert instead of failing
// silently.

#include <string>
#include <vector>

namespace mcmm::translate {

/// Severity of a translation diagnostic.
enum class Severity { Info, Warning, Unconverted };

struct Diagnostic {
  Severity severity{Severity::Info};
  std::string token;    ///< the construct concerned
  std::string message;
};

struct TranslationResult {
  std::string code;
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] bool clean() const noexcept {
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == Severity::Unconverted) return false;
    }
    return true;
  }
  [[nodiscard]] std::size_t unconverted_count() const noexcept {
    std::size_t n = 0;
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == Severity::Unconverted) ++n;
    }
    return n;
  }
};

/// CUDA -> HIP (HIPIFY analogue). Renames the cuda* API surface to hip*,
/// cudaMemcpy kinds to hipMemcpy kinds, cuBLAS-style calls to hipBLAS, and
/// the cudax namespace to hipx.
[[nodiscard]] TranslationResult hipify(const std::string& cuda_source);

/// CUDA -> SYCL (SYCLomatic analogue). Maps allocations to USM, memcpy to
/// queue.memcpy, launches to parallel_for, and flags constructs that need
/// manual porting (the real tool's "DPCT" warnings).
[[nodiscard]] TranslationResult cuda2sycl(const std::string& cuda_source);

/// OpenACC -> OpenMP (Intel migration tool analogue). Rewrites `#pragma
/// acc` directives to their `#pragma omp` equivalents and the accx
/// structured API to ompx.
[[nodiscard]] TranslationResult acc2omp(const std::string& acc_source);

/// Round-trip check helper: how much of the cudax API surface a translator
/// covers, measured over a representative corpus (used by the
/// translator-coverage bench).
struct CoverageReport {
  std::size_t constructs_total{};
  std::size_t constructs_converted{};

  [[nodiscard]] double ratio() const noexcept {
    return constructs_total == 0
               ? 1.0
               : static_cast<double>(constructs_converted) /
                     static_cast<double>(constructs_total);
  }
};

[[nodiscard]] CoverageReport hipify_coverage();
[[nodiscard]] CoverageReport cuda2sycl_coverage();
[[nodiscard]] CoverageReport acc2omp_coverage();

}  // namespace mcmm::translate
