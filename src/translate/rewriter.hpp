#pragma once
// Shared token-rewriting machinery for the translators: ordered
// identifier-boundary replacements with diagnostics, skipping string
// literals and comments (the level of care hipify-perl applies).

#include <string>
#include <vector>

#include "translate/translate.hpp"

namespace mcmm::translate::detail {

struct Rule {
  std::string from;
  std::string to;
  /// Optional note attached as an Info diagnostic when the rule fires.
  std::string note;
};

/// A token that cannot be translated automatically; its presence yields an
/// Unconverted diagnostic (the construct is left in place).
struct Blocker {
  std::string token;
  std::string message;
};

/// Applies `rules` (longest-from first) at identifier boundaries outside
/// string literals and comments; records a diagnostic per distinct fired
/// rule and per found blocker.
[[nodiscard]] TranslationResult rewrite(const std::string& source,
                                        const std::vector<Rule>& rules,
                                        const std::vector<Blocker>& blockers);

/// True when source contains `token` at identifier boundaries (outside
/// strings/comments).
[[nodiscard]] bool contains_token(const std::string& source,
                                  const std::string& token);

}  // namespace mcmm::translate::detail
