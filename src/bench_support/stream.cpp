#include "bench_support/stream.hpp"

#include "gpusim/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

namespace mcmm::bench {

std::string_view to_string(StreamKernel k) noexcept {
  switch (k) {
    case StreamKernel::Copy:
      return "Copy";
    case StreamKernel::Mul:
      return "Mul";
    case StreamKernel::Add:
      return "Add";
    case StreamKernel::Triad:
      return "Triad";
    case StreamKernel::Dot:
      return "Dot";
    case StreamKernel::Reduce:
      return "Reduce";
    case StreamKernel::Uneven:
      return "Uneven";
  }
  return "?";
}

double stream_bytes(StreamKernel k, std::size_t n) noexcept {
  const double nd = static_cast<double>(n) * sizeof(double);
  switch (k) {
    case StreamKernel::Copy:
    case StreamKernel::Mul:
      return 2.0 * nd;  // one read + one write stream
    case StreamKernel::Add:
    case StreamKernel::Triad:
      return 3.0 * nd;  // two reads + one write
    case StreamKernel::Dot:
      return 2.0 * nd;  // two reads
    case StreamKernel::Reduce:
      return nd;  // one read stream (a twice, but a single load per item)
    case StreamKernel::Uneven:
      // Ragged reads (avg (kUnevenTile+1)/2 per item) + one write stream.
      return (static_cast<double>(uneven_span_total(n)) +
              static_cast<double>(n)) *
             sizeof(double);
  }
  return 0.0;
}

bool verify_stream(const std::vector<double>& a, const std::vector<double>& b,
                   const std::vector<double>& c, double dot, std::size_t n,
                   int reps) {
  // Replay the cycle on scalars (all elements evolve identically).
  double va = kInitA, vb = kInitB, vc = kInitC;
  for (int r = 0; r < reps; ++r) {
    vc = va;
    vb = kScalar * vc;
    vc = va + vb;
    va = vb + kScalar * vc;
  }
  const double expected_dot = va * vb * static_cast<double>(n);

  const auto close = [](double x, double y) {
    const double scale = std::max({std::fabs(x), std::fabs(y), 1e-30});
    return std::fabs(x - y) / scale < 1e-8;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (!close(a[i], va) || !close(b[i], vb) || !close(c[i], vc)) {
      return false;
    }
  }
  // Dot accumulates n terms; allow a looser relative tolerance.
  const double scale = std::max(std::fabs(expected_dot), 1e-30);
  return std::fabs(dot - expected_dot) / scale < 1e-6;
}

std::vector<StreamResult> run_stream(StreamBenchmark& bench, std::size_t n,
                                     int reps) {
  bench.alloc(n);
  {
    gpusim::KernelLabelScope label("Init");
    bench.init_arrays();
  }

  constexpr int kKernelCount = 5;
  double best[kKernelCount];
  std::fill(best, best + kKernelCount, std::numeric_limits<double>::max());
  double dot_value = 0.0;

  for (int r = 0; r < reps; ++r) {
    // Label the kernels for gpuprof (NVTX-style; no-op unless a profiler
    // is installed — the labels make the per-kernel roofline attribution
    // read "Triad" instead of an anonymous launch).
    double t0 = bench.simulated_time_us();
    {
      gpusim::KernelLabelScope label("Copy");
      bench.copy();
    }
    double t1 = bench.simulated_time_us();
    {
      gpusim::KernelLabelScope label("Mul");
      bench.mul();
    }
    double t2 = bench.simulated_time_us();
    {
      gpusim::KernelLabelScope label("Add");
      bench.add();
    }
    double t3 = bench.simulated_time_us();
    {
      gpusim::KernelLabelScope label("Triad");
      bench.triad();
    }
    double t4 = bench.simulated_time_us();
    {
      gpusim::KernelLabelScope label("Dot");
      dot_value = bench.dot();
    }
    double t5 = bench.simulated_time_us();

    const double durations[kKernelCount] = {t1 - t0, t2 - t1, t3 - t2,
                                            t4 - t3, t5 - t4};
    for (int k = 0; k < kKernelCount; ++k) {
      best[k] = std::min(best[k], durations[k]);
    }
  }

  std::vector<double> a(n), b(n), c(n);
  bench.read_arrays(a, b, c);
  const bool ok = verify_stream(a, b, c, dot_value, n, reps);

  std::vector<StreamResult> results;
  const StreamKernel kernels[kKernelCount] = {
      StreamKernel::Copy, StreamKernel::Mul, StreamKernel::Add,
      StreamKernel::Triad, StreamKernel::Dot};
  for (int k = 0; k < kKernelCount; ++k) {
    StreamResult res;
    res.label = bench.label();
    res.vendor = bench.vendor();
    res.kernel = kernels[k];
    res.n = n;
    res.best_time_us = best[k];
    res.bandwidth_gbps =
        stream_bytes(kernels[k], n) / (best[k] * 1e3);  // B/us -> GB/s
    res.verified = ok;
    results.push_back(std::move(res));
  }
  return results;
}

std::string format_stream_table(const std::vector<StreamResult>& results) {
  std::ostringstream out;
  out << std::left << std::setw(26) << "Route" << std::setw(8) << "Vendor"
      << std::setw(7) << "Kernel" << std::right << std::setw(12)
      << "Best us" << std::setw(12) << "GB/s" << std::setw(10) << "Verified"
      << "\n";
  out << std::string(75, '-') << "\n";
  out << std::fixed << std::setprecision(1);
  for (const StreamResult& r : results) {
    out << std::left << std::setw(26) << r.label << std::setw(8)
        << to_string(r.vendor) << std::setw(7) << to_string(r.kernel)
        << std::right << std::setw(12) << r.best_time_us << std::setw(12)
        << r.bandwidth_gbps << std::setw(10) << (r.verified ? "yes" : "NO")
        << "\n";
  }
  return out.str();
}

std::string format_stream_csv(const std::vector<StreamResult>& results) {
  std::ostringstream out;
  out << "route,vendor,kernel,n,best_time_us,bandwidth_gbps,verified\n";
  out << std::fixed << std::setprecision(3);
  for (const StreamResult& r : results) {
    out << r.label << ',' << to_string(r.vendor) << ','
        << to_string(r.kernel) << ',' << r.n << ',' << r.best_time_us << ','
        << r.bandwidth_gbps << ',' << (r.verified ? 1 : 0) << "\n";
  }
  return out.str();
}

}  // namespace mcmm::bench
