#pragma once
// BabelStream-style benchmark suite (Deakin et al. [53], the performance
// methodology the paper names as its natural extension, Sec. 5/6). The
// five kernels — Copy, Mul, Add, Triad, Dot — are implemented once per
// programming-model embedding; the harness runs them on the simulated
// devices and reports attainable bandwidth per (model route, vendor).

#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "gpusim/thread_pool.hpp"  // gpusim::Schedule

namespace mcmm::bench {

/// BabelStream's constants.
inline constexpr double kInitA = 0.1;
inline constexpr double kInitB = 0.2;
inline constexpr double kInitC = 0.0;
inline constexpr double kScalar = 0.4;

/// Tile span of the Uneven kernel: work item i accumulates a[j] over the
/// i%kUnevenTile+1 elements at the start of its kUnevenTile-aligned tile,
/// so per-item cost ramps 1..kUnevenTile within every tile (a ragged
/// workload that rewards dynamic scheduling on real hardware).
inline constexpr std::size_t kUnevenTile = 16;

/// Copy/Mul/Add/Triad/Dot are classic BabelStream; Reduce (sum of a[i]^2,
/// reduction-heavy) and Uneven (ragged per-item tile sums) extend the
/// suite for the perf-portability campaign.
enum class StreamKernel { Copy, Mul, Add, Triad, Dot, Reduce, Uneven };

[[nodiscard]] std::string_view to_string(StreamKernel k) noexcept;

/// Total elements read by one Uneven invocation over n items: item i reads
/// i%kUnevenTile+1 elements, so a full tile contributes 1+2+...+kUnevenTile.
[[nodiscard]] constexpr std::size_t uneven_span_total(std::size_t n) noexcept {
  constexpr std::size_t t = kUnevenTile;
  const std::size_t full = n / t, rem = n % t;
  return full * (t * (t + 1) / 2) + rem * (rem + 1) / 2;
}

/// Bytes moved by one invocation of a kernel on arrays of n doubles.
[[nodiscard]] double stream_bytes(StreamKernel k, std::size_t n) noexcept;

/// One programming-model implementation of the BabelStream kernels.
/// Lifecycle: construct -> alloc(n) -> init_arrays() -> kernels -> read -> destruct.
class StreamBenchmark {
 public:
  virtual ~StreamBenchmark() = default;

  /// Route label, e.g. "CUDA", "SYCL(DPC++)", "Kokkos(HIP)".
  [[nodiscard]] virtual std::string label() const = 0;
  [[nodiscard]] virtual Vendor vendor() const = 0;

  virtual void alloc(std::size_t n) = 0;
  virtual void init_arrays() = 0;

  virtual void copy() = 0;        ///< c[i] = a[i]
  virtual void mul() = 0;         ///< b[i] = scalar * c[i]
  virtual void add() = 0;         ///< c[i] = a[i] + b[i]
  virtual void triad() = 0;       ///< a[i] = b[i] + scalar * c[i]
  [[nodiscard]] virtual double dot() = 0;     ///< sum a[i] * b[i]
  [[nodiscard]] virtual double reduce() = 0;  ///< sum a[i] * a[i]
  /// c[i] = sum of a[j] for j in [tile_start(i), i], tiles of kUnevenTile.
  virtual void uneven() = 0;

  /// Host-side launch schedule for the elementwise kernels. Only models
  /// whose real APIs expose a schedule knob honor it (SYCL via the
  /// LaunchPolicy parallel_for overload, Kokkos via Schedule<...>); the
  /// default is a no-op, mirroring CUDA/HIP/stdpar, which have none.
  /// Simulated time is schedule-invariant by construction either way.
  virtual void set_schedule(gpusim::Schedule /*schedule*/) {}

  virtual void read_arrays(std::vector<double>& a, std::vector<double>& b,
                           std::vector<double>& c) = 0;

  /// Simulated time consumed so far on this route's queue, microseconds.
  [[nodiscard]] virtual double simulated_time_us() const = 0;
};

/// Result of one (route, kernel) measurement.
struct StreamResult {
  std::string label;
  Vendor vendor{};
  StreamKernel kernel{};
  std::size_t n{};
  double best_time_us{};    ///< min simulated time over repetitions
  double bandwidth_gbps{};  ///< stream_bytes / best_time
  bool verified{};
};

/// Runs the BabelStream cycle `reps` times on `bench` with arrays of `n`
/// doubles, verifying the final array contents; returns one result per
/// kernel.
[[nodiscard]] std::vector<StreamResult> run_stream(StreamBenchmark& bench,
                                                   std::size_t n, int reps);

/// Verifies arrays after `reps` iterations of the BabelStream cycle plus a
/// final dot; returns true when within tolerance.
[[nodiscard]] bool verify_stream(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 const std::vector<double>& c, double dot,
                                 std::size_t n, int reps);

/// Factory: every model route of Fig. 1's C++ row that can execute on
/// `vendor` (the executable cross-section of the compatibility table).
[[nodiscard]] std::vector<std::unique_ptr<StreamBenchmark>>
stream_benchmarks_for(Vendor vendor);

/// Formats results as a BabelStream-like table (one row per route/kernel).
[[nodiscard]] std::string format_stream_table(
    const std::vector<StreamResult>& results);

/// Formats results as CSV.
[[nodiscard]] std::string format_stream_csv(
    const std::vector<StreamResult>& results);

}  // namespace mcmm::bench
