#pragma once
// BabelStream-style benchmark suite (Deakin et al. [53], the performance
// methodology the paper names as its natural extension, Sec. 5/6). The
// five kernels — Copy, Mul, Add, Triad, Dot — are implemented once per
// programming-model embedding; the harness runs them on the simulated
// devices and reports attainable bandwidth per (model route, vendor).

#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace mcmm::bench {

/// BabelStream's constants.
inline constexpr double kInitA = 0.1;
inline constexpr double kInitB = 0.2;
inline constexpr double kInitC = 0.0;
inline constexpr double kScalar = 0.4;

enum class StreamKernel { Copy, Mul, Add, Triad, Dot };

[[nodiscard]] std::string_view to_string(StreamKernel k) noexcept;

/// Bytes moved by one invocation of a kernel on arrays of n doubles.
[[nodiscard]] double stream_bytes(StreamKernel k, std::size_t n) noexcept;

/// One programming-model implementation of the BabelStream kernels.
/// Lifecycle: construct -> alloc(n) -> init_arrays() -> kernels -> read -> destruct.
class StreamBenchmark {
 public:
  virtual ~StreamBenchmark() = default;

  /// Route label, e.g. "CUDA", "SYCL(DPC++)", "Kokkos(HIP)".
  [[nodiscard]] virtual std::string label() const = 0;
  [[nodiscard]] virtual Vendor vendor() const = 0;

  virtual void alloc(std::size_t n) = 0;
  virtual void init_arrays() = 0;

  virtual void copy() = 0;        ///< c[i] = a[i]
  virtual void mul() = 0;         ///< b[i] = scalar * c[i]
  virtual void add() = 0;         ///< c[i] = a[i] + b[i]
  virtual void triad() = 0;       ///< a[i] = b[i] + scalar * c[i]
  [[nodiscard]] virtual double dot() = 0;  ///< sum a[i] * b[i]

  virtual void read_arrays(std::vector<double>& a, std::vector<double>& b,
                           std::vector<double>& c) = 0;

  /// Simulated time consumed so far on this route's queue, microseconds.
  [[nodiscard]] virtual double simulated_time_us() const = 0;
};

/// Result of one (route, kernel) measurement.
struct StreamResult {
  std::string label;
  Vendor vendor{};
  StreamKernel kernel{};
  std::size_t n{};
  double best_time_us{};    ///< min simulated time over repetitions
  double bandwidth_gbps{};  ///< stream_bytes / best_time
  bool verified{};
};

/// Runs the BabelStream cycle `reps` times on `bench` with arrays of `n`
/// doubles, verifying the final array contents; returns one result per
/// kernel.
[[nodiscard]] std::vector<StreamResult> run_stream(StreamBenchmark& bench,
                                                   std::size_t n, int reps);

/// Verifies arrays after `reps` iterations of the BabelStream cycle plus a
/// final dot; returns true when within tolerance.
[[nodiscard]] bool verify_stream(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 const std::vector<double>& c, double dot,
                                 std::size_t n, int reps);

/// Factory: every model route of Fig. 1's C++ row that can execute on
/// `vendor` (the executable cross-section of the compatibility table).
[[nodiscard]] std::vector<std::unique_ptr<StreamBenchmark>>
stream_benchmarks_for(Vendor vendor);

/// Formats results as a BabelStream-like table (one row per route/kernel).
[[nodiscard]] std::string format_stream_table(
    const std::vector<StreamResult>& results);

/// Formats results as CSV.
[[nodiscard]] std::string format_stream_csv(
    const std::vector<StreamResult>& results);

}  // namespace mcmm::bench
