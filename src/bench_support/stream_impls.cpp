// BabelStream kernels implemented once per programming-model embedding —
// the "representative selection of micro-benchmarks ported to the models"
// the paper says a fair performance comparison would require (Sec. 5).

#include <array>
#include <cstring>
#include <numeric>

#include "bench_support/stream.hpp"
#include "models/accx/accx.hpp"
#include "models/alpakax/alpakax.hpp"
#include "models/cudax/cudax.hpp"
#include "models/hipx/hipx.hpp"
#include "models/kokkosx/kokkosx.hpp"
#include "models/ompx/ompx.hpp"
#include "models/stdparx/stdparx.hpp"
#include "models/syclx/syclx.hpp"
#include "pstlx/pstlx.hpp"

namespace mcmm::bench {
namespace {

using gpusim::KernelCosts;

[[nodiscard]] KernelCosts costs_for(StreamKernel k, std::size_t n) {
  const double nd = static_cast<double>(n) * sizeof(double);
  KernelCosts c;
  switch (k) {
    case StreamKernel::Copy:
      c.bytes_read = nd;
      c.bytes_written = nd;
      break;
    case StreamKernel::Mul:
      c.bytes_read = nd;
      c.bytes_written = nd;
      c.flops = static_cast<double>(n);
      break;
    case StreamKernel::Add:
      c.bytes_read = 2 * nd;
      c.bytes_written = nd;
      c.flops = static_cast<double>(n);
      break;
    case StreamKernel::Triad:
      c.bytes_read = 2 * nd;
      c.bytes_written = nd;
      c.flops = 2.0 * static_cast<double>(n);
      break;
    case StreamKernel::Dot:
      c.bytes_read = 2 * nd;
      c.flops = 2.0 * static_cast<double>(n);
      break;
    case StreamKernel::Reduce:
      c.bytes_read = nd;
      c.flops = 2.0 * static_cast<double>(n);
      break;
    case StreamKernel::Uneven: {
      const double span = static_cast<double>(uneven_span_total(n));
      c.bytes_read = span * sizeof(double);
      c.bytes_written = nd;
      c.flops = span;
      break;
    }
  }
  return c;
}

/// Shared Uneven body: tile-local ragged prefix sum into c[i].
template <typename T>
inline void uneven_at(const T* a, T* c, std::size_t i) {
  const std::size_t start = i - (i % kUnevenTile);
  T acc{};
  for (std::size_t j = start; j <= i; ++j) acc += a[j];
  c[i] = acc;
}

// ---------------------------------------------------------------- cudax --

class CudaxStream final : public StreamBenchmark {
 public:
  [[nodiscard]] std::string label() const override { return "CUDA"; }
  [[nodiscard]] Vendor vendor() const override { return Vendor::NVIDIA; }

  void alloc(std::size_t n) override {
    n_ = n;
    check(cudax::cudaMalloc(reinterpret_cast<void**>(&a_),
                            n * sizeof(double)));
    check(cudax::cudaMalloc(reinterpret_cast<void**>(&b_),
                            n * sizeof(double)));
    check(cudax::cudaMalloc(reinterpret_cast<void**>(&c_),
                            n * sizeof(double)));
    check(cudax::cudaMalloc(reinterpret_cast<void**>(&partials_),
                            kChunks * sizeof(double)));
  }

  ~CudaxStream() override {
    (void)cudax::cudaFree(a_);
    (void)cudax::cudaFree(b_);
    (void)cudax::cudaFree(c_);
    (void)cudax::cudaFree(partials_);
  }

  void init_arrays() override {
    launch(StreamKernel::Copy, [a = a_, b = b_, c = c_,
                                n = n_](const cudax::KernelCtx& ctx) {
      const std::size_t i = ctx.global_x();
      if (i < n) {
        a[i] = kInitA;
        b[i] = kInitB;
        c[i] = kInitC;
      }
    });
  }

  void copy() override {
    launch(StreamKernel::Copy,
           [a = a_, c = c_, n = n_](const cudax::KernelCtx& ctx) {
             const std::size_t i = ctx.global_x();
             if (i < n) c[i] = a[i];
           });
  }
  void mul() override {
    launch(StreamKernel::Mul,
           [b = b_, c = c_, n = n_](const cudax::KernelCtx& ctx) {
             const std::size_t i = ctx.global_x();
             if (i < n) b[i] = kScalar * c[i];
           });
  }
  void add() override {
    launch(StreamKernel::Add,
           [a = a_, b = b_, c = c_, n = n_](const cudax::KernelCtx& ctx) {
             const std::size_t i = ctx.global_x();
             if (i < n) c[i] = a[i] + b[i];
           });
  }
  void triad() override {
    launch(StreamKernel::Triad,
           [a = a_, b = b_, c = c_, n = n_](const cudax::KernelCtx& ctx) {
             const std::size_t i = ctx.global_x();
             if (i < n) a[i] = b[i] + kScalar * c[i];
           });
  }

  [[nodiscard]] double dot() override {
    // CUDA-idiomatic two-phase reduction: per-block partials, host finish.
    const std::size_t chunk = (n_ + kChunks - 1) / kChunks;
    const cudax::dim3 grid{kChunks, 1, 1};
    const cudax::dim3 block{1, 1, 1};
    check(cudax::cudaLaunch(
        grid, block, costs_for(StreamKernel::Dot, n_),
        static_cast<cudax::cudaStream_t>(nullptr),
        [a = a_, b = b_, p = partials_, n = n_,
         chunk](const cudax::KernelCtx& ctx) {
          const std::size_t cidx = ctx.global_x();
          if (cidx >= kChunks) return;
          const std::size_t begin = cidx * chunk;
          const std::size_t end = std::min(n, begin + chunk);
          double acc = 0.0;
          for (std::size_t i = begin; i < end; ++i) acc += a[i] * b[i];
          p[cidx] = acc;
        }));
    std::array<double, kChunks> host{};
    check(cudax::cudaMemcpy(host.data(), partials_,
                            kChunks * sizeof(double),
                            cudax::cudaMemcpyDeviceToHost));
    return std::accumulate(host.begin(), host.end(), 0.0);
  }

  [[nodiscard]] double reduce() override {
    const std::size_t chunk = (n_ + kChunks - 1) / kChunks;
    const cudax::dim3 grid{kChunks, 1, 1};
    const cudax::dim3 block{1, 1, 1};
    check(cudax::cudaLaunch(
        grid, block, costs_for(StreamKernel::Reduce, n_),
        static_cast<cudax::cudaStream_t>(nullptr),
        [a = a_, p = partials_, n = n_,
         chunk](const cudax::KernelCtx& ctx) {
          const std::size_t cidx = ctx.global_x();
          if (cidx >= kChunks) return;
          const std::size_t begin = cidx * chunk;
          const std::size_t end = std::min(n, begin + chunk);
          double acc = 0.0;
          for (std::size_t i = begin; i < end; ++i) acc += a[i] * a[i];
          p[cidx] = acc;
        }));
    std::array<double, kChunks> host{};
    check(cudax::cudaMemcpy(host.data(), partials_,
                            kChunks * sizeof(double),
                            cudax::cudaMemcpyDeviceToHost));
    return std::accumulate(host.begin(), host.end(), 0.0);
  }

  void uneven() override {
    launch(StreamKernel::Uneven,
           [a = a_, c = c_, n = n_](const cudax::KernelCtx& ctx) {
             const std::size_t i = ctx.global_x();
             if (i < n) uneven_at(a, c, i);
           });
  }

  void read_arrays(std::vector<double>& a, std::vector<double>& b,
                   std::vector<double>& c) override {
    a.resize(n_);
    b.resize(n_);
    c.resize(n_);
    check(cudax::cudaMemcpy(a.data(), a_, n_ * sizeof(double),
                            cudax::cudaMemcpyDeviceToHost));
    check(cudax::cudaMemcpy(b.data(), b_, n_ * sizeof(double),
                            cudax::cudaMemcpyDeviceToHost));
    check(cudax::cudaMemcpy(c.data(), c_, n_ * sizeof(double),
                            cudax::cudaMemcpyDeviceToHost));
  }

  [[nodiscard]] double simulated_time_us() const override {
    return cudax::queue_of(nullptr).simulated_time_us();
  }

 private:
  static constexpr std::uint32_t kChunks = 64;

  static void check(cudax::cudaError_t err) {
    if (err != cudax::cudaError_t::cudaSuccess) {
      throw gpusim::SimError(std::string("CUDA stream benchmark: ") +
                             cudax::cudaGetErrorString(err));
    }
  }

  template <typename K>
  void launch(StreamKernel kind, K&& kernel) {
    const cudax::dim3 block{256, 1, 1};
    const cudax::dim3 grid{
        static_cast<std::uint32_t>((n_ + 255) / 256), 1, 1};
    check(cudax::cudaLaunch(grid, block, costs_for(kind, n_),
                            static_cast<cudax::cudaStream_t>(nullptr),
                            std::forward<K>(kernel)));
  }

  std::size_t n_{};
  double* a_{};
  double* b_{};
  double* c_{};
  double* partials_{};
};

// ----------------------------------------------------------------- hipx --

class HipxStream final : public StreamBenchmark {
 public:
  explicit HipxStream(hipx::Platform platform) : platform_(platform) {}

  [[nodiscard]] std::string label() const override {
    return platform_ == hipx::Platform::amd ? "HIP" : "HIP(CUDA backend)";
  }
  [[nodiscard]] Vendor vendor() const override {
    return platform_ == hipx::Platform::amd ? Vendor::AMD : Vendor::NVIDIA;
  }

  void alloc(std::size_t n) override {
    const PlatformScope scope(platform_);
    n_ = n;
    check(hipx::hipMalloc(reinterpret_cast<void**>(&a_),
                          n * sizeof(double)));
    check(hipx::hipMalloc(reinterpret_cast<void**>(&b_),
                          n * sizeof(double)));
    check(hipx::hipMalloc(reinterpret_cast<void**>(&c_),
                          n * sizeof(double)));
    check(hipx::hipMalloc(reinterpret_cast<void**>(&partials_),
                          kChunks * sizeof(double)));
    check(hipx::hipStreamCreate(&stream_));
  }

  ~HipxStream() override {
    const PlatformScope scope(platform_);
    (void)hipx::hipFree(a_);
    (void)hipx::hipFree(b_);
    (void)hipx::hipFree(c_);
    (void)hipx::hipFree(partials_);
    if (stream_ != nullptr) (void)hipx::hipStreamDestroy(stream_);
  }

  void init_arrays() override {
    run(StreamKernel::Copy, [a = a_, b = b_, c = c_,
                             n = n_](const hipx::KernelCtx& ctx) {
      const std::size_t i = ctx.global_x();
      if (i < n) {
        a[i] = kInitA;
        b[i] = kInitB;
        c[i] = kInitC;
      }
    });
  }

  void copy() override {
    run(StreamKernel::Copy,
        [a = a_, c = c_, n = n_](const hipx::KernelCtx& ctx) {
          const std::size_t i = ctx.global_x();
          if (i < n) c[i] = a[i];
        });
  }
  void mul() override {
    run(StreamKernel::Mul,
        [b = b_, c = c_, n = n_](const hipx::KernelCtx& ctx) {
          const std::size_t i = ctx.global_x();
          if (i < n) b[i] = kScalar * c[i];
        });
  }
  void add() override {
    run(StreamKernel::Add,
        [a = a_, b = b_, c = c_, n = n_](const hipx::KernelCtx& ctx) {
          const std::size_t i = ctx.global_x();
          if (i < n) c[i] = a[i] + b[i];
        });
  }
  void triad() override {
    run(StreamKernel::Triad,
        [a = a_, b = b_, c = c_, n = n_](const hipx::KernelCtx& ctx) {
          const std::size_t i = ctx.global_x();
          if (i < n) a[i] = b[i] + kScalar * c[i];
        });
  }

  [[nodiscard]] double dot() override {
    const PlatformScope scope(platform_);
    const std::size_t chunk = (n_ + kChunks - 1) / kChunks;
    check(hipx::hipLaunchKernelGGL(
        [a = a_, b = b_, p = partials_, n = n_,
         chunk](const hipx::KernelCtx& ctx) {
          const std::size_t cidx = ctx.global_x();
          if (cidx >= kChunks) return;
          const std::size_t begin = cidx * chunk;
          const std::size_t end = std::min(n, begin + chunk);
          double acc = 0.0;
          for (std::size_t i = begin; i < end; ++i) acc += a[i] * b[i];
          p[cidx] = acc;
        },
        hipx::dim3{kChunks, 1, 1}, hipx::dim3{1, 1, 1},
        costs_for(StreamKernel::Dot, n_), stream_));
    std::array<double, kChunks> host{};
    check(hipx::hipMemcpy(host.data(), partials_, kChunks * sizeof(double),
                          hipx::hipMemcpyDeviceToHost));
    return std::accumulate(host.begin(), host.end(), 0.0);
  }

  [[nodiscard]] double reduce() override {
    const PlatformScope scope(platform_);
    const std::size_t chunk = (n_ + kChunks - 1) / kChunks;
    check(hipx::hipLaunchKernelGGL(
        [a = a_, p = partials_, n = n_,
         chunk](const hipx::KernelCtx& ctx) {
          const std::size_t cidx = ctx.global_x();
          if (cidx >= kChunks) return;
          const std::size_t begin = cidx * chunk;
          const std::size_t end = std::min(n, begin + chunk);
          double acc = 0.0;
          for (std::size_t i = begin; i < end; ++i) acc += a[i] * a[i];
          p[cidx] = acc;
        },
        hipx::dim3{kChunks, 1, 1}, hipx::dim3{1, 1, 1},
        costs_for(StreamKernel::Reduce, n_), stream_));
    std::array<double, kChunks> host{};
    check(hipx::hipMemcpy(host.data(), partials_, kChunks * sizeof(double),
                          hipx::hipMemcpyDeviceToHost));
    return std::accumulate(host.begin(), host.end(), 0.0);
  }

  void uneven() override {
    run(StreamKernel::Uneven,
        [a = a_, c = c_, n = n_](const hipx::KernelCtx& ctx) {
          const std::size_t i = ctx.global_x();
          if (i < n) uneven_at(a, c, i);
        });
  }

  void read_arrays(std::vector<double>& a, std::vector<double>& b,
                   std::vector<double>& c) override {
    const PlatformScope scope(platform_);
    a.resize(n_);
    b.resize(n_);
    c.resize(n_);
    check(hipx::hipMemcpy(a.data(), a_, n_ * sizeof(double),
                          hipx::hipMemcpyDeviceToHost));
    check(hipx::hipMemcpy(b.data(), b_, n_ * sizeof(double),
                          hipx::hipMemcpyDeviceToHost));
    check(hipx::hipMemcpy(c.data(), c_, n_ * sizeof(double),
                          hipx::hipMemcpyDeviceToHost));
  }

  [[nodiscard]] double simulated_time_us() const override {
    return stream_->simulated_time_us();
  }

 private:
  static constexpr std::uint32_t kChunks = 64;

  /// The HIP_PLATFORM switch is process-global; scope it per call.
  class PlatformScope {
   public:
    explicit PlatformScope(hipx::Platform p) : saved_(hipx::platform()) {
      hipx::set_platform(p);
    }
    ~PlatformScope() { hipx::set_platform(saved_); }

   private:
    hipx::Platform saved_;
  };

  static void check(hipx::hipError_t err) {
    if (err != hipx::hipError_t::hipSuccess) {
      throw gpusim::SimError(std::string("HIP stream benchmark: ") +
                             hipx::hipGetErrorString(err));
    }
  }

  template <typename K>
  void run(StreamKernel kind, K&& kernel) {
    const PlatformScope scope(platform_);
    const hipx::dim3 block{256, 1, 1};
    const hipx::dim3 grid{static_cast<std::uint32_t>((n_ + 255) / 256), 1,
                          1};
    check(hipx::hipLaunchKernelGGL(std::forward<K>(kernel), grid, block,
                                   costs_for(kind, n_), stream_));
  }

  hipx::Platform platform_;
  std::size_t n_{};
  double* a_{};
  double* b_{};
  double* c_{};
  double* partials_{};
  hipx::hipStream_t stream_{};
};

// ---------------------------------------------------------------- syclx --

class SyclxStream final : public StreamBenchmark {
 public:
  SyclxStream(Vendor vendor, syclx::Implementation impl)
      : queue_(vendor, impl) {}

  [[nodiscard]] std::string label() const override {
    return "SYCL(" + std::string(syclx::to_string(queue_.implementation())) +
           ")";
  }
  [[nodiscard]] Vendor vendor() const override { return queue_.vendor(); }

  void alloc(std::size_t n) override {
    n_ = n;
    a_ = queue_.malloc_device<double>(n);
    b_ = queue_.malloc_device<double>(n);
    c_ = queue_.malloc_device<double>(n);
  }

  ~SyclxStream() override {
    queue_.free(a_);
    queue_.free(b_);
    queue_.free(c_);
  }

  void init_arrays() override {
    queue_.parallel_for(syclx::range{n_}, costs_for(StreamKernel::Copy, n_),
                        policy_, [a = a_, b = b_, c = c_](syclx::id i) {
                          a[i] = kInitA;
                          b[i] = kInitB;
                          c[i] = kInitC;
                        });
  }

  void copy() override {
    queue_.parallel_for(syclx::range{n_}, costs_for(StreamKernel::Copy, n_),
                        policy_,
                        [a = a_, c = c_](syclx::id i) { c[i] = a[i]; });
  }
  void mul() override {
    queue_.parallel_for(
        syclx::range{n_}, costs_for(StreamKernel::Mul, n_), policy_,
        [b = b_, c = c_](syclx::id i) { b[i] = kScalar * c[i]; });
  }
  void add() override {
    queue_.parallel_for(
        syclx::range{n_}, costs_for(StreamKernel::Add, n_), policy_,
        [a = a_, b = b_, c = c_](syclx::id i) { c[i] = a[i] + b[i]; });
  }
  void triad() override {
    queue_.parallel_for(
        syclx::range{n_}, costs_for(StreamKernel::Triad, n_), policy_,
        [a = a_, b = b_, c = c_](syclx::id i) {
          a[i] = b[i] + kScalar * c[i];
        });
  }

  [[nodiscard]] double dot() override {
    return queue_.reduce(
        syclx::range{n_}, 0.0, costs_for(StreamKernel::Dot, n_),
        [a = a_, b = b_](std::size_t i) { return a[i] * b[i]; },
        [](double x, double y) { return x + y; });
  }

  [[nodiscard]] double reduce() override {
    return queue_.reduce(
        syclx::range{n_}, 0.0, costs_for(StreamKernel::Reduce, n_),
        [a = a_](std::size_t i) { return a[i] * a[i]; },
        [](double x, double y) { return x + y; });
  }

  void uneven() override {
    queue_.parallel_for(syclx::range{n_},
                        costs_for(StreamKernel::Uneven, n_), policy_,
                        [a = a_, c = c_](syclx::id i) {
                          uneven_at(a, c, static_cast<std::size_t>(i));
                        });
  }

  void set_schedule(gpusim::Schedule schedule) override {
    policy_ = gpusim::LaunchPolicy{schedule, 0};
  }

  void read_arrays(std::vector<double>& a, std::vector<double>& b,
                   std::vector<double>& c) override {
    a.resize(n_);
    b.resize(n_);
    c.resize(n_);
    queue_.memcpy(a.data(), a_, n_ * sizeof(double));
    queue_.memcpy(b.data(), b_, n_ * sizeof(double));
    queue_.memcpy(c.data(), c_, n_ * sizeof(double));
  }

  [[nodiscard]] double simulated_time_us() const override {
    return queue_.simulated_time_us();
  }

 private:
  syclx::queue queue_;
  gpusim::LaunchPolicy policy_{};
  std::size_t n_{};
  double* a_{};
  double* b_{};
  double* c_{};
};

// ----------------------------------------------------------------- ompx --

class OmpxStream final : public StreamBenchmark {
 public:
  OmpxStream(Vendor vendor, ompx::Compiler compiler)
      : dev_(vendor, compiler) {}

  [[nodiscard]] std::string label() const override {
    return "OpenMP(" + std::string(ompx::to_string(dev_.compiler())) + ")";
  }
  [[nodiscard]] Vendor vendor() const override { return dev_.vendor(); }

  void alloc(std::size_t n) override {
    n_ = n;
    ha_.assign(n, 0.0);
    hb_.assign(n, 0.0);
    hc_.assign(n, 0.0);
    data_ = std::make_unique<ompx::target_data>(dev_);
    a_ = data_->map_tofrom(ha_.data(), n);
    b_ = data_->map_tofrom(hb_.data(), n);
    c_ = data_->map_tofrom(hc_.data(), n);
  }

  void init_arrays() override {
    ompx::target_teams_distribute_parallel_for(
        dev_, n_, costs_for(StreamKernel::Copy, n_),
        [a = a_, b = b_, c = c_](std::size_t i) {
          a[i] = kInitA;
          b[i] = kInitB;
          c[i] = kInitC;
        });
  }

  void copy() override {
    ompx::target_teams_distribute_parallel_for(
        dev_, n_, costs_for(StreamKernel::Copy, n_),
        [a = a_, c = c_](std::size_t i) { c[i] = a[i]; });
  }
  void mul() override {
    ompx::target_teams_distribute_parallel_for(
        dev_, n_, costs_for(StreamKernel::Mul, n_),
        [b = b_, c = c_](std::size_t i) { b[i] = kScalar * c[i]; });
  }
  void add() override {
    ompx::target_teams_distribute_parallel_for(
        dev_, n_, costs_for(StreamKernel::Add, n_),
        [a = a_, b = b_, c = c_](std::size_t i) { c[i] = a[i] + b[i]; });
  }
  void triad() override {
    ompx::target_teams_distribute_parallel_for(
        dev_, n_, costs_for(StreamKernel::Triad, n_),
        [a = a_, b = b_, c = c_](std::size_t i) {
          a[i] = b[i] + kScalar * c[i];
        });
  }

  [[nodiscard]] double dot() override {
    return ompx::target_teams_reduce(
        dev_, n_, 0.0, costs_for(StreamKernel::Dot, n_),
        [a = a_, b = b_](std::size_t i) { return a[i] * b[i]; });
  }

  [[nodiscard]] double reduce() override {
    return ompx::target_teams_reduce(
        dev_, n_, 0.0, costs_for(StreamKernel::Reduce, n_),
        [a = a_](std::size_t i) { return a[i] * a[i]; });
  }

  void uneven() override {
    ompx::target_teams_distribute_parallel_for(
        dev_, n_, costs_for(StreamKernel::Uneven, n_),
        [a = a_, c = c_](std::size_t i) { uneven_at(a, c, i); });
  }

  void read_arrays(std::vector<double>& a, std::vector<double>& b,
                   std::vector<double>& c) override {
    data_->update_from(ha_.data());
    data_->update_from(hb_.data());
    data_->update_from(hc_.data());
    a = ha_;
    b = hb_;
    c = hc_;
  }

  [[nodiscard]] double simulated_time_us() const override {
    return dev_.simulated_time_us();
  }

 private:
  ompx::TargetDevice dev_;
  std::size_t n_{};
  std::vector<double> ha_, hb_, hc_;
  std::unique_ptr<ompx::target_data> data_;
  double* a_{};
  double* b_{};
  double* c_{};
};

// ----------------------------------------------------------------- accx --

class AccxStream final : public StreamBenchmark {
 public:
  AccxStream(Vendor vendor, accx::Compiler compiler)
      : acc_(vendor, compiler) {}

  [[nodiscard]] std::string label() const override {
    return "OpenACC(" + std::string(accx::to_string(acc_.compiler())) + ")";
  }
  [[nodiscard]] Vendor vendor() const override { return acc_.vendor(); }

  void alloc(std::size_t n) override {
    n_ = n;
    ha_.assign(n, 0.0);
    hb_.assign(n, 0.0);
    hc_.assign(n, 0.0);
    data_ = std::make_unique<accx::data_region>(acc_);
    a_ = data_->copy(ha_.data(), n);
    b_ = data_->copy(hb_.data(), n);
    c_ = data_->copy(hc_.data(), n);
  }

  void init_arrays() override {
    acc_.parallel_loop(n_, costs_for(StreamKernel::Copy, n_),
                       [a = a_, b = b_, c = c_](std::size_t i) {
                         a[i] = kInitA;
                         b[i] = kInitB;
                         c[i] = kInitC;
                       });
  }

  void copy() override {
    acc_.parallel_loop(n_, costs_for(StreamKernel::Copy, n_),
                       [a = a_, c = c_](std::size_t i) { c[i] = a[i]; });
  }
  void mul() override {
    acc_.parallel_loop(
        n_, costs_for(StreamKernel::Mul, n_),
        [b = b_, c = c_](std::size_t i) { b[i] = kScalar * c[i]; });
  }
  void add() override {
    acc_.parallel_loop(
        n_, costs_for(StreamKernel::Add, n_),
        [a = a_, b = b_, c = c_](std::size_t i) { c[i] = a[i] + b[i]; });
  }
  void triad() override {
    acc_.parallel_loop(n_, costs_for(StreamKernel::Triad, n_),
                       [a = a_, b = b_, c = c_](std::size_t i) {
                         a[i] = b[i] + kScalar * c[i];
                       });
  }

  [[nodiscard]] double dot() override {
    return acc_.parallel_loop_reduce(
        n_, 0.0, costs_for(StreamKernel::Dot, n_),
        [a = a_, b = b_](std::size_t i) { return a[i] * b[i]; });
  }

  [[nodiscard]] double reduce() override {
    return acc_.parallel_loop_reduce(
        n_, 0.0, costs_for(StreamKernel::Reduce, n_),
        [a = a_](std::size_t i) { return a[i] * a[i]; });
  }

  void uneven() override {
    acc_.parallel_loop(n_, costs_for(StreamKernel::Uneven, n_),
                       [a = a_, c = c_](std::size_t i) {
                         uneven_at(a, c, i);
                       });
  }

  void read_arrays(std::vector<double>& a, std::vector<double>& b,
                   std::vector<double>& c) override {
    // `#pragma acc update self(...)` equivalent.
    acc_.queue().memcpy(ha_.data(), a_, n_ * sizeof(double),
                        gpusim::CopyKind::DeviceToHost);
    acc_.queue().memcpy(hb_.data(), b_, n_ * sizeof(double),
                        gpusim::CopyKind::DeviceToHost);
    acc_.queue().memcpy(hc_.data(), c_, n_ * sizeof(double),
                        gpusim::CopyKind::DeviceToHost);
    a = ha_;
    b = hb_;
    c = hc_;
  }

  [[nodiscard]] double simulated_time_us() const override {
    return const_cast<accx::Accelerator&>(acc_).simulated_time_us();
  }

 private:
  accx::Accelerator acc_;
  std::size_t n_{};
  std::vector<double> ha_, hb_, hc_;
  std::unique_ptr<accx::data_region> data_;
  double* a_{};
  double* b_{};
  double* c_{};
};

// -------------------------------------------------------------- stdparx --

class StdparStream final : public StreamBenchmark {
 public:
  StdparStream(Vendor vendor, stdparx::Runtime runtime)
      : pol_(vendor, runtime) {}

  [[nodiscard]] std::string label() const override {
    return "stdpar(" + std::string(stdparx::to_string(pol_.runtime())) + ")";
  }
  [[nodiscard]] Vendor vendor() const override { return pol_.vendor(); }

  void alloc(std::size_t n) override {
    n_ = n;
    a_ = std::make_unique<stdparx::device_vector<double>>(pol_, n);
    b_ = std::make_unique<stdparx::device_vector<double>>(pol_, n);
    c_ = std::make_unique<stdparx::device_vector<double>>(pol_, n);
  }

  void init_arrays() override {
    stdparx::fill(pol_, a_->begin(), a_->end(), kInitA);
    stdparx::fill(pol_, b_->begin(), b_->end(), kInitB);
    stdparx::fill(pol_, c_->begin(), c_->end(), kInitC);
  }

  void copy() override {
    // BabelStream's copy via std::copy(par, ...).
    stdparx::copy(pol_, a_->begin(), a_->end(), c_->begin());
  }
  void mul() override {
    stdparx::transform(pol_, c_->begin(), c_->end(), b_->begin(),
                       [](double x) { return kScalar * x; });
  }
  void add() override {
    stdparx::transform(pol_, a_->begin(), a_->end(), b_->begin(),
                       c_->begin(),
                       [](double x, double y) { return x + y; });
  }
  void triad() override {
    stdparx::transform(pol_, b_->begin(), b_->end(), c_->begin(),
                       a_->begin(),
                       [](double x, double y) { return x + kScalar * y; });
  }

  [[nodiscard]] double dot() override {
    // Routed through the pstlx algorithm library; same chunk
    // decomposition, combine order, and KernelCosts as
    // stdparx::transform_reduce, so the sum and simulated time are
    // bitwise unchanged (asserted by the differential battery).
    return pstlx::transform_reduce(pol_, a_->begin(), a_->end(),
                                   b_->begin(), 0.0);
  }

  [[nodiscard]] double reduce() override {
    // sum a[i]^2 as the self-inner-product, the stdpar idiom.
    return pstlx::transform_reduce(pol_, a_->begin(), a_->end(),
                                   a_->begin(), 0.0);
  }

  void uneven() override {
    // stdpar has no index-based loop; recover i from the element address,
    // the std::for_each(par_unseq) idiom for indexed access.
    stdparx::for_each(pol_, c_->begin(), c_->end(),
                      [a = a_->begin(), c = c_->begin()](double& x) {
                        uneven_at(a, c, static_cast<std::size_t>(&x - c));
                      });
  }

  void read_arrays(std::vector<double>& a, std::vector<double>& b,
                   std::vector<double>& c) override {
    a.resize(n_);
    b.resize(n_);
    c.resize(n_);
    a_->download(a.data(), n_);
    b_->download(b.data(), n_);
    c_->download(c.data(), n_);
  }

  [[nodiscard]] double simulated_time_us() const override {
    return pol_.simulated_time_us();
  }

 private:
  stdparx::execution_policy pol_;
  std::size_t n_{};
  std::unique_ptr<stdparx::device_vector<double>> a_, b_, c_;
};

// -------------------------------------------------------------- kokkosx --

class KokkosxStream final : public StreamBenchmark {
 public:
  KokkosxStream(kokkosx::ExecSpace space, Vendor vendor)
      : exec_(space, vendor) {}

  [[nodiscard]] std::string label() const override {
    return "Kokkos(" + std::string(kokkosx::to_string(exec_.space())) + ")";
  }
  [[nodiscard]] Vendor vendor() const override { return exec_.vendor(); }

  void alloc(std::size_t n) override {
    n_ = n;
    a_ = std::make_unique<kokkosx::View<double>>(exec_, "a", n);
    b_ = std::make_unique<kokkosx::View<double>>(exec_, "b", n);
    c_ = std::make_unique<kokkosx::View<double>>(exec_, "c", n);
  }

  void init_arrays() override {
    kokkosx::parallel_for(exec_, kokkosx::RangePolicy{0, n_},
                          costs_for(StreamKernel::Copy, n_), policy_,
                          [a = *a_, b = *b_, c = *c_](std::size_t i) {
                            a(i) = kInitA;
                            b(i) = kInitB;
                            c(i) = kInitC;
                          });
  }

  void copy() override {
    kokkosx::parallel_for(exec_, kokkosx::RangePolicy{0, n_},
                          costs_for(StreamKernel::Copy, n_), policy_,
                          [a = *a_, c = *c_](std::size_t i) { c(i) = a(i); });
  }
  void mul() override {
    kokkosx::parallel_for(
        exec_, kokkosx::RangePolicy{0, n_}, costs_for(StreamKernel::Mul, n_),
        policy_,
        [b = *b_, c = *c_](std::size_t i) { b(i) = kScalar * c(i); });
  }
  void add() override {
    kokkosx::parallel_for(
        exec_, kokkosx::RangePolicy{0, n_}, costs_for(StreamKernel::Add, n_),
        policy_,
        [a = *a_, b = *b_, c = *c_](std::size_t i) { c(i) = a(i) + b(i); });
  }
  void triad() override {
    kokkosx::parallel_for(exec_, kokkosx::RangePolicy{0, n_},
                          costs_for(StreamKernel::Triad, n_), policy_,
                          [a = *a_, b = *b_, c = *c_](std::size_t i) {
                            a(i) = b(i) + kScalar * c(i);
                          });
  }

  [[nodiscard]] double dot() override {
    double result = 0.0;
    kokkosx::parallel_reduce(
        exec_, kokkosx::RangePolicy{0, n_}, costs_for(StreamKernel::Dot, n_),
        [a = *a_, b = *b_](std::size_t i, double& update) {
          update += a(i) * b(i);
        },
        result);
    return result;
  }

  [[nodiscard]] double reduce() override {
    double result = 0.0;
    kokkosx::parallel_reduce(
        exec_, kokkosx::RangePolicy{0, n_},
        costs_for(StreamKernel::Reduce, n_),
        [a = *a_](std::size_t i, double& update) { update += a(i) * a(i); },
        result);
    return result;
  }

  void uneven() override {
    kokkosx::parallel_for(exec_, kokkosx::RangePolicy{0, n_},
                          costs_for(StreamKernel::Uneven, n_), policy_,
                          [a = *a_, c = *c_](std::size_t i) {
                            const std::size_t start = i - (i % kUnevenTile);
                            double acc = 0.0;
                            for (std::size_t j = start; j <= i; ++j) {
                              acc += a(j);
                            }
                            c(i) = acc;
                          });
  }

  void set_schedule(gpusim::Schedule schedule) override {
    policy_ = gpusim::LaunchPolicy{schedule, 0};
  }

  void read_arrays(std::vector<double>& a, std::vector<double>& b,
                   std::vector<double>& c) override {
    a.resize(n_);
    b.resize(n_);
    c.resize(n_);
    kokkosx::deep_copy_to_host(a.data(), *a_);
    kokkosx::deep_copy_to_host(b.data(), *b_);
    kokkosx::deep_copy_to_host(c.data(), *c_);
  }

  [[nodiscard]] double simulated_time_us() const override {
    return exec_.simulated_time_us();
  }

 private:
  kokkosx::Execution exec_;
  gpusim::LaunchPolicy policy_{};
  std::size_t n_{};
  std::unique_ptr<kokkosx::View<double>> a_, b_, c_;
};

// -------------------------------------------------------------- alpakax --

template <typename TAcc>
class AlpakaxStream final : public StreamBenchmark {
 public:
  AlpakaxStream() = default;

  [[nodiscard]] std::string label() const override {
    return "Alpaka(" + std::string(TAcc::name) + ")";
  }
  [[nodiscard]] Vendor vendor() const override { return TAcc::vendor; }

  void alloc(std::size_t n) override {
    n_ = n;
    a_.emplace(alpakax::alloc_buf<double>(queue_, n));
    b_.emplace(alpakax::alloc_buf<double>(queue_, n));
    c_.emplace(alpakax::alloc_buf<double>(queue_, n));
  }

  void init_arrays() override {
    run(StreamKernel::Copy,
        [a = a_->data(), b = b_->data(), c = c_->data(),
         n = n_](const alpakax::AccCtx& ctx) {
          const std::size_t i = ctx.global_thread_idx;
          if (i < n) {
            a[i] = kInitA;
            b[i] = kInitB;
            c[i] = kInitC;
          }
        });
  }

  void copy() override {
    run(StreamKernel::Copy,
        [a = a_->data(), c = c_->data(), n = n_](const alpakax::AccCtx& ctx) {
          const std::size_t i = ctx.global_thread_idx;
          if (i < n) c[i] = a[i];
        });
  }
  void mul() override {
    run(StreamKernel::Mul,
        [b = b_->data(), c = c_->data(), n = n_](const alpakax::AccCtx& ctx) {
          const std::size_t i = ctx.global_thread_idx;
          if (i < n) b[i] = kScalar * c[i];
        });
  }
  void add() override {
    run(StreamKernel::Add, [a = a_->data(), b = b_->data(), c = c_->data(),
                            n = n_](const alpakax::AccCtx& ctx) {
      const std::size_t i = ctx.global_thread_idx;
      if (i < n) c[i] = a[i] + b[i];
    });
  }
  void triad() override {
    run(StreamKernel::Triad, [a = a_->data(), b = b_->data(), c = c_->data(),
                              n = n_](const alpakax::AccCtx& ctx) {
      const std::size_t i = ctx.global_thread_idx;
      if (i < n) a[i] = b[i] + kScalar * c[i];
    });
  }

  [[nodiscard]] double dot() override {
    constexpr std::size_t kChunks = 64;
    std::array<double, kChunks> partials{};
    const std::size_t chunk = (n_ + kChunks - 1) / kChunks;
    alpakax::exec(queue_, alpakax::WorkDiv{kChunks, 1},
                  costs_for(StreamKernel::Dot, n_),
                  [a = a_->data(), b = b_->data(), &partials, n = n_,
                   chunk](const alpakax::AccCtx& ctx) {
                    const std::size_t cidx = ctx.global_thread_idx;
                    if (cidx >= kChunks) return;
                    const std::size_t begin = cidx * chunk;
                    const std::size_t end = std::min(n, begin + chunk);
                    double acc = 0.0;
                    for (std::size_t i = begin; i < end; ++i) {
                      acc += a[i] * b[i];
                    }
                    partials[cidx] = acc;
                  });
    return std::accumulate(partials.begin(), partials.end(), 0.0);
  }

  [[nodiscard]] double reduce() override {
    constexpr std::size_t kChunks = 64;
    std::array<double, kChunks> partials{};
    const std::size_t chunk = (n_ + kChunks - 1) / kChunks;
    alpakax::exec(queue_, alpakax::WorkDiv{kChunks, 1},
                  costs_for(StreamKernel::Reduce, n_),
                  [a = a_->data(), &partials, n = n_,
                   chunk](const alpakax::AccCtx& ctx) {
                    const std::size_t cidx = ctx.global_thread_idx;
                    if (cidx >= kChunks) return;
                    const std::size_t begin = cidx * chunk;
                    const std::size_t end = std::min(n, begin + chunk);
                    double acc = 0.0;
                    for (std::size_t i = begin; i < end; ++i) {
                      acc += a[i] * a[i];
                    }
                    partials[cidx] = acc;
                  });
    return std::accumulate(partials.begin(), partials.end(), 0.0);
  }

  void uneven() override {
    run(StreamKernel::Uneven,
        [a = a_->data(), c = c_->data(), n = n_](const alpakax::AccCtx& ctx) {
          const std::size_t i = ctx.global_thread_idx;
          if (i < n) uneven_at(a, c, i);
        });
  }

  void read_arrays(std::vector<double>& a, std::vector<double>& b,
                   std::vector<double>& c) override {
    a.resize(n_);
    b.resize(n_);
    c.resize(n_);
    alpakax::memcpy_to_host(queue_, a.data(), *a_, n_);
    alpakax::memcpy_to_host(queue_, b.data(), *b_, n_);
    alpakax::memcpy_to_host(queue_, c.data(), *c_, n_);
  }

  [[nodiscard]] double simulated_time_us() const override {
    return queue_.simulated_time_us();
  }

 private:
  template <typename K>
  void run(StreamKernel kind, K&& kernel) {
    alpakax::exec(queue_, alpakax::work_div_for(n_), costs_for(kind, n_),
                  std::forward<K>(kernel));
  }

  alpakax::Queue<TAcc> queue_;
  std::size_t n_{};
  std::optional<alpakax::Buf<double, TAcc>> a_, b_, c_;
};

}  // namespace

std::vector<std::unique_ptr<StreamBenchmark>> stream_benchmarks_for(
    Vendor vendor) {
  std::vector<std::unique_ptr<StreamBenchmark>> out;
  switch (vendor) {
    case Vendor::NVIDIA:
      out.push_back(std::make_unique<CudaxStream>());
      out.push_back(std::make_unique<HipxStream>(hipx::Platform::nvidia));
      out.push_back(std::make_unique<SyclxStream>(
          Vendor::NVIDIA, syclx::Implementation::DPCpp));
      out.push_back(std::make_unique<SyclxStream>(
          Vendor::NVIDIA, syclx::Implementation::OpenSYCL));
      out.push_back(
          std::make_unique<OmpxStream>(Vendor::NVIDIA, ompx::Compiler::NVHPC));
      out.push_back(
          std::make_unique<AccxStream>(Vendor::NVIDIA, accx::Compiler::NVHPC));
      out.push_back(std::make_unique<StdparStream>(Vendor::NVIDIA,
                                                   stdparx::Runtime::NVHPC));
      out.push_back(std::make_unique<KokkosxStream>(kokkosx::ExecSpace::Cuda,
                                                    Vendor::NVIDIA));
      out.push_back(
          std::make_unique<AlpakaxStream<alpakax::AccGpuCudaRt>>());
      break;
    case Vendor::AMD:
      out.push_back(std::make_unique<HipxStream>(hipx::Platform::amd));
      out.push_back(std::make_unique<SyclxStream>(
          Vendor::AMD, syclx::Implementation::OpenSYCL));
      out.push_back(std::make_unique<SyclxStream>(
          Vendor::AMD, syclx::Implementation::DPCpp));
      out.push_back(
          std::make_unique<OmpxStream>(Vendor::AMD, ompx::Compiler::AOMP));
      out.push_back(
          std::make_unique<AccxStream>(Vendor::AMD, accx::Compiler::GCC));
      if (stdparx::roc_stdpar_enabled()) {
        out.push_back(std::make_unique<StdparStream>(
            Vendor::AMD, stdparx::Runtime::RocStdpar));
      }
      out.push_back(std::make_unique<KokkosxStream>(kokkosx::ExecSpace::HIP,
                                                    Vendor::AMD));
      out.push_back(std::make_unique<AlpakaxStream<alpakax::AccGpuHipRt>>());
      break;
    case Vendor::Intel:
      out.push_back(std::make_unique<SyclxStream>(
          Vendor::Intel, syclx::Implementation::DPCpp));
      out.push_back(std::make_unique<SyclxStream>(
          Vendor::Intel, syclx::Implementation::OpenSYCL));
      out.push_back(
          std::make_unique<OmpxStream>(Vendor::Intel, ompx::Compiler::ICPX));
      out.push_back(std::make_unique<StdparStream>(Vendor::Intel,
                                                   stdparx::Runtime::OneDPL));
      out.push_back(std::make_unique<KokkosxStream>(kokkosx::ExecSpace::SYCL,
                                                    Vendor::Intel));
      out.push_back(
          std::make_unique<AlpakaxStream<alpakax::AccGpuSyclIntel>>());
      break;
  }
  return out;
}

}  // namespace mcmm::bench
