// Tests of OpenACC async queues (`async(n)` / `wait(n)`).

#include <gtest/gtest.h>

#include <vector>

#include "models/accx/accx.hpp"

namespace mcmm::accx {
namespace {

TEST(AccxAsync, AsyncQueuesHaveSeparateTimelines) {
  Accelerator acc(Vendor::NVIDIA, Compiler::NVHPC);
  gpusim::KernelCosts costs;
  costs.bytes_read = 1e8;
  acc.parallel_loop_async(1, 1024, costs, [](std::size_t) {});
  acc.parallel_loop_async(1, 1024, costs, [](std::size_t) {});
  acc.parallel_loop_async(2, 1024, costs, [](std::size_t) {});
  EXPECT_GT(acc.async_time_us(1), acc.async_time_us(2));
  EXPECT_GT(acc.async_time_us(2), 0.0);
  // The synchronous queue is untouched by async work.
  EXPECT_DOUBLE_EQ(acc.simulated_time_us(), 0.0);
}

TEST(AccxAsync, ResultsVisibleAfterWait) {
  Accelerator acc(Vendor::AMD, Compiler::GCC);
  constexpr std::size_t n = 512;
  std::vector<double> host(n, 1.0);
  {
    data_region data(acc);
    double* d = data.copy(host.data(), n);
    acc.parallel_loop_async(3, n, gpusim::KernelCosts{},
                            [d](std::size_t i) { d[i] += 4.0; });
    acc.wait(3);
  }
  for (const double v : host) ASSERT_DOUBLE_EQ(v, 5.0);
}

TEST(AccxAsync, WaitOnUnknownQueueIsNoop) {
  Accelerator acc(Vendor::NVIDIA, Compiler::NVHPC);
  acc.wait(99);  // must not throw
  acc.wait_all();
}

TEST(AccxAsync, AsyncWorksThroughClaccLowering) {
  Accelerator acc(Vendor::AMD, Compiler::Clacc);
  ASSERT_TRUE(acc.lowers_to_openmp());
  constexpr std::size_t n = 128;
  std::vector<int> host(n, 0);
  {
    data_region data(acc);
    int* d = data.copy(host.data(), n);
    acc.parallel_loop_async(1, n, gpusim::KernelCosts{},
                            [d](std::size_t i) { d[i] = 7; });
    acc.wait_all();
  }
  for (const int v : host) ASSERT_EQ(v, 7);
}

TEST(AccxAsync, AsyncQueueInheritsRouteProfile) {
  Accelerator acc(Vendor::NVIDIA, Compiler::NVHPC);
  gpusim::KernelCosts costs;
  costs.bytes_read = 1e9;
  acc.parallel_loop(1024, costs, [](std::size_t) {});
  acc.parallel_loop_async(1, 1024, costs, [](std::size_t) {});
  // Same profile -> same simulated duration for the same work.
  EXPECT_DOUBLE_EQ(acc.simulated_time_us(), acc.async_time_us(1));
}

}  // namespace
}  // namespace mcmm::accx
