// Tests of the Python-column embedding (items 17, 30, 44): NumPy-shaped
// dynamic arrays per package, dtype promotion, Python-style errors, and
// the package/vendor mapping of Fig. 1's Python row.

#include "models/pybindx/pybindx.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace mcmm::pybindx {
namespace {

TEST(Pybindx, PackageVendorRow) {
  EXPECT_EQ(package_vendor(Package::CudaPython), Vendor::NVIDIA);
  EXPECT_EQ(package_vendor(Package::CuPy), Vendor::NVIDIA);
  EXPECT_EQ(package_vendor(Package::CuPyROCm), Vendor::AMD);
  EXPECT_EQ(package_vendor(Package::PyHIP), Vendor::AMD);
  EXPECT_EQ(package_vendor(Package::Dpnp), Vendor::Intel);
  EXPECT_EQ(package_vendor(Package::NumbaDpex), Vendor::Intel);
}

TEST(Pybindx, VendorProvidedPackagesMatchPaper) {
  // Item 17: CUDA Python and cuNumeric are NVIDIA's own; item 44: the
  // Intel trio is vendor-provided; item 30: AMD has no official package.
  EXPECT_TRUE(package_vendor_provided(Package::CudaPython));
  EXPECT_TRUE(package_vendor_provided(Package::CuNumeric));
  EXPECT_TRUE(package_vendor_provided(Package::Dpnp));
  EXPECT_FALSE(package_vendor_provided(Package::CuPy));
  EXPECT_FALSE(package_vendor_provided(Package::CuPyROCm));
  EXPECT_FALSE(package_vendor_provided(Package::PyHIP));
}

TEST(Pybindx, AmdRoutesAreExperimental) {
  // The AMD Python cell is rated 'limited'; its packages run at
  // experimental efficiency.
  Module cupy(Package::CuPy);
  Module rocm(Package::CuPyROCm);
  EXPECT_GT(cupy.profile().bandwidth_efficiency,
            rocm.profile().bandwidth_efficiency);
}

class PackageTest : public ::testing::TestWithParam<Package> {};

TEST_P(PackageTest, NumpyStyleWorkflow) {
  Module np(GetParam());
  EXPECT_EQ(np.vendor(), package_vendor(GetParam()));

  const ndarray x = np.full(1000, 2.0);
  const ndarray y = np.full(1000, 3.0);
  const ndarray z = np.add(np.multiply(x, 2.0), y);  // z = 2x + y = 7
  const std::vector<double> host = np.asnumpy(z);
  for (const double v : host) ASSERT_DOUBLE_EQ(v, 7.0);
  EXPECT_DOUBLE_EQ(np.sum(z), 7000.0);
  EXPECT_DOUBLE_EQ(np.dot(x, y), 6000.0);
}

TEST_P(PackageTest, ArangeAndAsarray) {
  Module np(GetParam());
  const ndarray r = np.arange(100);
  EXPECT_DOUBLE_EQ(np.sum(r), 99.0 * 100.0 / 2.0);

  std::vector<double> host(50);
  std::iota(host.begin(), host.end(), 1.0);
  const ndarray a = np.asarray(host);
  EXPECT_EQ(np.asnumpy(a), host);
}

INSTANTIATE_TEST_SUITE_P(
    Figure1PythonRow, PackageTest,
    ::testing::Values(Package::CudaPython, Package::CuPy, Package::Numba,
                      Package::CuNumeric, Package::CuPyROCm, Package::PyHIP,
                      Package::Dpnp, Package::NumbaDpex),
    [](const ::testing::TestParamInfo<Package>& info) {
      std::string name(to_string(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Pybindx, DtypePromotionFollowsNumpy) {
  EXPECT_EQ(Module::promote(DType::Int32, DType::Int32), DType::Int32);
  EXPECT_EQ(Module::promote(DType::Int32, DType::Float32), DType::Float32);
  EXPECT_EQ(Module::promote(DType::Float32, DType::Float64),
            DType::Float64);
  EXPECT_EQ(Module::promote(DType::Int32, DType::Float64), DType::Float64);
}

TEST(Pybindx, MixedDtypeArithmeticPromotes) {
  Module np(Package::CuPy);
  const ndarray i = np.full(10, 3.0, DType::Int32);
  const ndarray f = np.full(10, 0.5, DType::Float64);
  const ndarray r = np.add(i, f);
  EXPECT_EQ(r.dtype(), DType::Float64);
  for (const double v : np.asnumpy(r)) ASSERT_DOUBLE_EQ(v, 3.5);
}

TEST(Pybindx, Int32ArithmeticTruncates) {
  Module np(Package::Dpnp);
  const ndarray a = np.full(4, 7.0, DType::Int32);
  const ndarray b = np.full(4, 2.0, DType::Int32);
  const ndarray r = np.multiply(a, b);
  EXPECT_EQ(r.dtype(), DType::Int32);
  for (const double v : np.asnumpy(r)) ASSERT_DOUBLE_EQ(v, 14.0);
}

TEST(Pybindx, Float32Roundtrip) {
  Module np(Package::CuPy);
  const ndarray a = np.full(16, 1.5, DType::Float32);
  const std::vector<double> host = np.asnumpy(a);
  for (const double v : host) ASSERT_DOUBLE_EQ(v, 1.5);
}

TEST(Pybindx, ShapeMismatchRaisesValueError) {
  Module np(Package::CuPy);
  const ndarray a = np.zeros(10);
  const ndarray b = np.zeros(11);
  try {
    (void)np.add(a, b);
    FAIL() << "expected PyError";
  } catch (const PyError& e) {
    EXPECT_NE(std::string(e.what()).find("broadcast"), std::string::npos);
  }
}

TEST(Pybindx, UndefinedArrayRaisesTypeError) {
  Module np(Package::CuPy);
  const ndarray undefined;
  EXPECT_THROW((void)np.sum(undefined), PyError);
}

TEST(Pybindx, CrossModuleArraysRejected) {
  // An array created by dpnp (Intel device) handed to CuPy (NVIDIA) is a
  // cross-device bug Python users hit; the embedding raises, like CuPy.
  Module dpnp(Package::Dpnp);
  Module cupy(Package::CuPy);
  const ndarray intel_array = dpnp.zeros(8);
  EXPECT_THROW((void)cupy.sum(intel_array), PyError);
}

TEST(Pybindx, ArraysAreReferenceCountedOnDevice) {
  Module np(Package::CuPy);
  gpusim::Device& dev = gpusim::Platform::instance().device(Vendor::NVIDIA);
  const std::size_t before = dev.allocator().live_allocations();
  {
    const ndarray a = np.zeros(100);
    const ndarray alias = a;  // NOLINT(performance-unnecessary-copy-initialization)
    EXPECT_EQ(dev.allocator().live_allocations(), before + 1);
  }
  EXPECT_EQ(dev.allocator().live_allocations(), before);
}

TEST(Pybindx, SimulatedTimeAdvances) {
  Module np(Package::PyHIP);
  const double t0 = np.simulated_time_us();
  const ndarray a = np.full(1 << 16, 1.0);
  (void)np.sum(a);
  EXPECT_GT(np.simulated_time_us(), t0);
}

}  // namespace
}  // namespace mcmm::pybindx
