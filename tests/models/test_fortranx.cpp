// Tests of the Fortran binding-layer model: hipfort's interface surface
// (item 4) and FLCL (item 14), including the executable ISO_C_BINDING-style
// bridge driving the simulated AMD device.

#include "models/fortranx/fortranx.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "models/hipx/hipx.hpp"

namespace mcmm::fortranx {
namespace {

TEST(Fortranx, HipfortMetadataMatchesPaper) {
  const BindingLayer& layer = hipfort();
  EXPECT_EQ(layer.name(), "hipfort");
  EXPECT_EQ(layer.license(), "MIT");  // item 4: "MIT-licensed"
  EXPECT_EQ(layer.provider(), Provider::OtherVendor);
  EXPECT_GE(layer.entries().size(), 10u);
}

TEST(Fortranx, HipfortBindsTheHipCApi) {
  const BindingLayer& layer = hipfort();
  for (const char* name : {"hipMalloc", "hipFree", "hipMemcpy",
                           "hipDeviceSynchronize", "hipblasDaxpy"}) {
    EXPECT_NE(layer.find(name), nullptr) << name;
  }
}

TEST(Fortranx, HipfortHasNoKernelLanguage) {
  // Item 4: "CUDA-like Fortran extensions, for example to write kernels,
  // are [not] available" — the launch API is absent from the surface.
  EXPECT_EQ(hipfort().find("hipLaunchKernelGGL"), nullptr);
  EXPECT_EQ(hipfort().find("attributes_global"), nullptr);
}

TEST(Fortranx, HipfortCoversMostButNotAllOfTheApi) {
  const double cov = hipfort().coverage(hip_api_surface());
  EXPECT_GT(cov, 0.7);  // "an extensive set of ready-made interfaces"
  EXPECT_LT(cov, 1.0);  // ... but no kernel-side functionality
}

TEST(Fortranx, FlclIsTheKokkosLayer) {
  const BindingLayer& layer = flcl();
  EXPECT_EQ(layer.provider(), Provider::Community);
  EXPECT_NE(layer.find("kokkos_parallel_for"), nullptr);
  EXPECT_NE(layer.find("kokkos_deep_copy"), nullptr);
  EXPECT_EQ(layer.find("hipMalloc"), nullptr);
}

TEST(Fortranx, CallBridgeRoundTrip) {
  // A "Fortran program" driving the simulated AMD GPU purely through
  // hipfort interfaces.
  hipx::set_platform(hipx::Platform::amd);
  void* device_ptr = nullptr;
  EXPECT_EQ(call_hipfort("hipMalloc", {CValue::pointer(&device_ptr),
                                       CValue::bytes(256 * sizeof(double))}),
            0);
  ASSERT_NE(device_ptr, nullptr);

  std::vector<double> host(256, 7.0);
  EXPECT_EQ(call_hipfort("hipMemcpy",
                         {CValue::pointer(device_ptr),
                          CValue::pointer(host.data()),
                          CValue::bytes(256 * sizeof(double)),
                          CValue::bytes(hipx::hipMemcpyHostToDevice)}),
            0);
  std::vector<double> back(256, 0.0);
  EXPECT_EQ(call_hipfort("hipMemcpy",
                         {CValue::pointer(back.data()),
                          CValue::pointer(device_ptr),
                          CValue::bytes(256 * sizeof(double)),
                          CValue::bytes(hipx::hipMemcpyDeviceToHost)}),
            0);
  EXPECT_EQ(back, host);
  EXPECT_EQ(call_hipfort("hipDeviceSynchronize", {}), 0);
  EXPECT_EQ(call_hipfort("hipFree", {CValue::pointer(device_ptr)}), 0);
}

TEST(Fortranx, CallBridgeMemset) {
  hipx::set_platform(hipx::Platform::amd);
  void* p = nullptr;
  ASSERT_EQ(call_hipfort("hipMalloc",
                         {CValue::pointer(&p), CValue::bytes(64)}),
            0);
  EXPECT_EQ(call_hipfort("hipMemset", {CValue::pointer(p), CValue::bytes(0),
                                       CValue::bytes(64)}),
            0);
  EXPECT_EQ(call_hipfort("hipFree", {CValue::pointer(p)}), 0);
}

TEST(Fortranx, CallBridgeReportsErrorsAsStatusCodes) {
  hipx::set_platform(hipx::Platform::amd);
  int dummy = 0;
  // Double free comes back as a non-zero status, like the Fortran
  // interface would deliver it.
  void* p = nullptr;
  ASSERT_EQ(call_hipfort("hipMalloc",
                         {CValue::pointer(&p), CValue::bytes(16)}),
            0);
  EXPECT_EQ(call_hipfort("hipFree", {CValue::pointer(p)}), 0);
  EXPECT_NE(call_hipfort("hipFree", {CValue::pointer(p)}), 0);
  EXPECT_EQ(call_hipfort("hipGetDeviceCount", {CValue::pointer(&dummy)}), 0);
  EXPECT_EQ(dummy, 1);
}

TEST(Fortranx, UnknownInterfaceThrows) {
  EXPECT_THROW((void)call_hipfort("hipLaunchKernelGGL", {}), LookupError);
  EXPECT_THROW((void)call_hipfort("cudaMalloc", {}), LookupError);
}

TEST(Fortranx, ArityMismatchThrows) {
  EXPECT_THROW((void)call_hipfort("hipMalloc", {CValue::bytes(16)}), Error);
  EXPECT_THROW(
      (void)call_hipfort("hipDeviceSynchronize", {CValue::bytes(1)}), Error);
}

TEST(Fortranx, DeclaredButUndispatchedInterfaceThrows) {
  // hipblasSaxpy is in the interface table but outside the executable
  // subset of the bridge.
  EXPECT_THROW((void)call_hipfort(
                   "hipblasSaxpy",
                   std::vector<CValue>(7, CValue::bytes(0))),
               Error);
}

TEST(Fortranx, CoverageOfEmptySurfaceIsOne) {
  EXPECT_DOUBLE_EQ(hipfort().coverage({}), 1.0);
}

}  // namespace
}  // namespace mcmm::fortranx
