#include "models/hipx/hipx.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace mcmm::hipx {
namespace {

using enum hipError_t;

/// RAII platform switch so tests can't leak state into each other.
class PlatformGuard {
 public:
  explicit PlatformGuard(Platform p) : saved_(platform()) { set_platform(p); }
  ~PlatformGuard() { set_platform(saved_); }

 private:
  Platform saved_;
};

TEST(Hipx, DefaultPlatformIsAmd) {
  const PlatformGuard guard(Platform::amd);
  EXPECT_EQ(platform(), Platform::amd);
  EXPECT_EQ(current_device().vendor(), Vendor::AMD);
}

TEST(Hipx, NvidiaPlatformRoutesToCudaDevice) {
  // HIP_PLATFORM=nvidia: every call lands on the simulated NVIDIA device
  // through the cudax runtime (item 3).
  const PlatformGuard guard(Platform::nvidia);
  EXPECT_EQ(current_device().vendor(), Vendor::NVIDIA);
  void* p = nullptr;
  ASSERT_EQ(hipMalloc(&p, 256), hipSuccess);
  EXPECT_TRUE(cudax::current_device().is_device_pointer(p));
  EXPECT_EQ(hipFree(p), hipSuccess);
}

TEST(Hipx, MallocFreeOnAmd) {
  const PlatformGuard guard(Platform::amd);
  void* p = nullptr;
  ASSERT_EQ(hipMalloc(&p, 1024), hipSuccess);
  EXPECT_TRUE(current_device().is_device_pointer(p));
  EXPECT_EQ(hipFree(p), hipSuccess);
  EXPECT_EQ(hipFree(p), hipErrorInvalidDevicePointer);
}

class HipBothPlatforms : public ::testing::TestWithParam<Platform> {};

TEST_P(HipBothPlatforms, MemcpyRoundTrip) {
  const PlatformGuard guard(GetParam());
  std::vector<int> host(256);
  std::iota(host.begin(), host.end(), 0);
  void* d = nullptr;
  ASSERT_EQ(hipMalloc(&d, host.size() * sizeof(int)), hipSuccess);
  ASSERT_EQ(hipMemcpy(d, host.data(), host.size() * sizeof(int),
                      hipMemcpyHostToDevice),
            hipSuccess);
  std::vector<int> back(256, -1);
  ASSERT_EQ(hipMemcpy(back.data(), d, back.size() * sizeof(int),
                      hipMemcpyDeviceToHost),
            hipSuccess);
  EXPECT_EQ(back, host);
  EXPECT_EQ(hipFree(d), hipSuccess);
}

TEST_P(HipBothPlatforms, SameSourceKernelRunsOnBothPlatforms) {
  // The paper's Sec. 6: "NVIDIA and AMD GPUs can be used from the same
  // source code". This kernel is written once and executed per platform.
  const PlatformGuard guard(GetParam());
  constexpr std::size_t n = 4096;
  std::vector<double> a(n, 1.5);
  double* da = nullptr;
  ASSERT_EQ(hipMalloc(reinterpret_cast<void**>(&da), n * sizeof(double)),
            hipSuccess);
  ASSERT_EQ(hipMemcpy(da, a.data(), n * sizeof(double),
                      hipMemcpyHostToDevice),
            hipSuccess);

  const auto scale = [](const KernelCtx& ctx, double* p, double s,
                        std::size_t count) {
    const std::size_t i = ctx.global_x();
    if (i < count) p[i] *= s;
  };
  EXPECT_EQ(hipLaunchKernelGGL(scale, dim3{16, 1, 1}, dim3{256, 1, 1}, da,
                               2.0, n),
            hipSuccess);

  ASSERT_EQ(hipMemcpy(a.data(), da, n * sizeof(double),
                      hipMemcpyDeviceToHost),
            hipSuccess);
  for (const double v : a) ASSERT_DOUBLE_EQ(v, 3.0);
  EXPECT_EQ(hipFree(da), hipSuccess);
}

TEST_P(HipBothPlatforms, MemsetWorks) {
  const PlatformGuard guard(GetParam());
  void* d = nullptr;
  ASSERT_EQ(hipMalloc(&d, 64), hipSuccess);
  EXPECT_EQ(hipMemset(d, 0, 64), hipSuccess);
  std::vector<char> back(64, 1);
  ASSERT_EQ(hipMemcpy(back.data(), d, 64, hipMemcpyDeviceToHost), hipSuccess);
  for (const char c : back) EXPECT_EQ(c, 0);
  EXPECT_EQ(hipFree(d), hipSuccess);
}

TEST_P(HipBothPlatforms, DeviceSynchronizeSucceeds) {
  const PlatformGuard guard(GetParam());
  EXPECT_EQ(hipDeviceSynchronize(), hipSuccess);
}

INSTANTIATE_TEST_SUITE_P(Platforms, HipBothPlatforms,
                         ::testing::Values(Platform::amd, Platform::nvidia),
                         [](const ::testing::TestParamInfo<Platform>& info) {
                           return info.param == Platform::amd ? "amd"
                                                              : "nvidia";
                         });

TEST(Hipx, StreamProfileReflectsRoute) {
  {
    const PlatformGuard guard(Platform::amd);
    hipStream_t s = nullptr;
    ASSERT_EQ(hipStreamCreate(&s), hipSuccess);
    EXPECT_EQ(s->backend_profile().label, "HIP");
    EXPECT_EQ(hipStreamDestroy(s), hipSuccess);
  }
  {
    const PlatformGuard guard(Platform::nvidia);
    hipStream_t s = nullptr;
    ASSERT_EQ(hipStreamCreate(&s), hipSuccess);
    // The CUDA-backend route is a layer over CUDA, visible in the profile.
    EXPECT_EQ(s->backend_profile().label, "HIP-on-CUDA");
    EXPECT_LT(s->backend_profile().bandwidth_efficiency, 1.0);
    EXPECT_EQ(hipStreamDestroy(s), hipSuccess);
  }
}

TEST(Hipx, CrossPlatformPointerIsRejected) {
  // A buffer allocated on the AMD platform is not a valid pointer for the
  // NVIDIA platform's memcpy.
  void* amd_ptr = nullptr;
  {
    const PlatformGuard guard(Platform::amd);
    ASSERT_EQ(hipMalloc(&amd_ptr, 64), hipSuccess);
  }
  {
    const PlatformGuard guard(Platform::nvidia);
    std::vector<char> host(64);
    EXPECT_EQ(hipMemcpy(host.data(), amd_ptr, 64, hipMemcpyDeviceToHost),
              hipErrorInvalidDevicePointer);
  }
  {
    const PlatformGuard guard(Platform::amd);
    EXPECT_EQ(hipFree(amd_ptr), hipSuccess);
  }
}

TEST(Hipx, ErrorStrings) {
  EXPECT_STREQ(hipGetErrorString(hipSuccess), "no error");
  EXPECT_STREQ(hipGetErrorString(hipErrorOutOfMemory), "out of memory");
}

}  // namespace
}  // namespace mcmm::hipx
