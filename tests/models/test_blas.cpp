// Tests of the cuBLAS-style and hipBLAS-style library embeddings (paper
// item 3: HIP creates interfaces to CUDA libraries; hipblasSaxpy for
// cublasSaxpy).

#include <gtest/gtest.h>

#include <vector>

#include "models/cudax/cublasx.hpp"
#include "models/hipx/hipblasx.hpp"

namespace mcmm {
namespace {

using cudax::cublasStatus_t;
using hipx::hipblasStatus_t;

class CublasTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(cudax::cublasCreate(&handle_),
              cublasStatus_t::CUBLAS_STATUS_SUCCESS);
  }
  void TearDown() override {
    EXPECT_EQ(cudax::cublasDestroy(handle_),
              cublasStatus_t::CUBLAS_STATUS_SUCCESS);
  }

  template <typename T>
  T* device_upload(const std::vector<T>& host) {
    void* d = nullptr;
    EXPECT_EQ(cudax::cudaMalloc(&d, host.size() * sizeof(T)),
              cudax::cudaError_t::cudaSuccess);
    EXPECT_EQ(cudax::cudaMemcpy(d, host.data(), host.size() * sizeof(T),
                                cudax::cudaMemcpyHostToDevice),
              cudax::cudaError_t::cudaSuccess);
    return static_cast<T*>(d);
  }

  template <typename T>
  std::vector<T> device_download(const T* d, std::size_t n) {
    std::vector<T> host(n);
    EXPECT_EQ(cudax::cudaMemcpy(host.data(), d, n * sizeof(T),
                                cudax::cudaMemcpyDeviceToHost),
              cudax::cudaError_t::cudaSuccess);
    return host;
  }

  cudax::cublasHandle_t handle_{};
};

TEST_F(CublasTest, Saxpy) {
  constexpr int n = 1000;
  std::vector<float> x(n, 2.0f), y(n, 1.0f);
  float* dx = device_upload(x);
  float* dy = device_upload(y);
  const float alpha = 3.0f;
  ASSERT_EQ(cudax::cublasSaxpy(handle_, n, &alpha, dx, 1, dy, 1),
            cublasStatus_t::CUBLAS_STATUS_SUCCESS);
  for (const float v : device_download(dy, n)) ASSERT_FLOAT_EQ(v, 7.0f);
  (void)cudax::cudaFree(dx);
  (void)cudax::cudaFree(dy);
}

TEST_F(CublasTest, DaxpyWithStrides) {
  constexpr int n = 10;
  std::vector<double> x(2 * n, 1.0), y(2 * n, 0.0);
  double* dx = device_upload(x);
  double* dy = device_upload(y);
  const double alpha = 5.0;
  ASSERT_EQ(cudax::cublasDaxpy(handle_, n, &alpha, dx, 2, dy, 2),
            cublasStatus_t::CUBLAS_STATUS_SUCCESS);
  const auto out = device_download(dy, 2 * n);
  for (int i = 0; i < 2 * n; ++i) {
    ASSERT_DOUBLE_EQ(out[i], i % 2 == 0 ? 5.0 : 0.0) << i;
  }
  (void)cudax::cudaFree(dx);
  (void)cudax::cudaFree(dy);
}

TEST_F(CublasTest, Ddot) {
  constexpr int n = 12345;
  std::vector<double> x(n, 0.5), y(n, 4.0);
  double* dx = device_upload(x);
  double* dy = device_upload(y);
  double result = 0.0;
  ASSERT_EQ(cudax::cublasDdot(handle_, n, dx, 1, dy, 1, &result),
            cublasStatus_t::CUBLAS_STATUS_SUCCESS);
  EXPECT_DOUBLE_EQ(result, 2.0 * n);
  (void)cudax::cudaFree(dx);
  (void)cudax::cudaFree(dy);
}

TEST_F(CublasTest, DgemmIdentity) {
  // C = A * I must reproduce A (column-major).
  constexpr int m = 7, k = 7, n = 7;
  std::vector<double> a(m * k);
  for (int i = 0; i < m * k; ++i) a[i] = i * 0.25;
  std::vector<double> identity(k * n, 0.0);
  for (int i = 0; i < k; ++i) identity[i + i * k] = 1.0;
  std::vector<double> c(m * n, -1.0);
  double* da = device_upload(a);
  double* db = device_upload(identity);
  double* dc = device_upload(c);
  const double alpha = 1.0, beta = 0.0;
  ASSERT_EQ(cudax::cublasDgemm(handle_, m, n, k, &alpha, da, m, db, k,
                               &beta, dc, m),
            cublasStatus_t::CUBLAS_STATUS_SUCCESS);
  const auto out = device_download(dc, m * n);
  for (int i = 0; i < m * n; ++i) ASSERT_DOUBLE_EQ(out[i], a[i]) << i;
  (void)cudax::cudaFree(da);
  (void)cudax::cudaFree(db);
  (void)cudax::cudaFree(dc);
}

TEST_F(CublasTest, DgemmSmallKnownAnswer) {
  // A = [1 2; 3 4] (column-major: 1,3,2,4), B = [5 6; 7 8] -> AB =
  // [19 22; 43 50].
  const std::vector<double> a{1, 3, 2, 4};
  const std::vector<double> b{5, 7, 6, 8};
  std::vector<double> c(4, 0.0);
  double* da = device_upload(a);
  double* db = device_upload(b);
  double* dc = device_upload(c);
  const double alpha = 1.0, beta = 0.0;
  ASSERT_EQ(cudax::cublasDgemm(handle_, 2, 2, 2, &alpha, da, 2, db, 2,
                               &beta, dc, 2),
            cublasStatus_t::CUBLAS_STATUS_SUCCESS);
  const auto out = device_download(dc, 4);
  EXPECT_DOUBLE_EQ(out[0], 19.0);
  EXPECT_DOUBLE_EQ(out[1], 43.0);
  EXPECT_DOUBLE_EQ(out[2], 22.0);
  EXPECT_DOUBLE_EQ(out[3], 50.0);
  (void)cudax::cudaFree(da);
  (void)cudax::cudaFree(db);
  (void)cudax::cudaFree(dc);
}

TEST(Cublas, InvalidHandleRejected) {
  const float alpha = 1.0f;
  EXPECT_EQ(cudax::cublasSaxpy(nullptr, 1, &alpha, nullptr, 1, nullptr, 1),
            cublasStatus_t::CUBLAS_STATUS_NOT_INITIALIZED);
  EXPECT_EQ(cudax::cublasDestroy(nullptr),
            cublasStatus_t::CUBLAS_STATUS_NOT_INITIALIZED);
}

TEST(Cublas, UseAfterDestroyRejected) {
  cudax::cublasHandle_t h = nullptr;
  ASSERT_EQ(cudax::cublasCreate(&h), cublasStatus_t::CUBLAS_STATUS_SUCCESS);
  ASSERT_EQ(cudax::cublasDestroy(h),
            cublasStatus_t::CUBLAS_STATUS_SUCCESS);
  const float alpha = 1.0f;
  EXPECT_EQ(cudax::cublasSaxpy(h, 1, &alpha, nullptr, 1, nullptr, 1),
            cublasStatus_t::CUBLAS_STATUS_NOT_INITIALIZED);
}

TEST(Cublas, InvalidValuesRejected) {
  cudax::cublasHandle_t h = nullptr;
  ASSERT_EQ(cudax::cublasCreate(&h), cublasStatus_t::CUBLAS_STATUS_SUCCESS);
  EXPECT_EQ(cudax::cublasSaxpy(h, 4, nullptr, nullptr, 1, nullptr, 1),
            cublasStatus_t::CUBLAS_STATUS_INVALID_VALUE);
  const float alpha = 1.0f;
  EXPECT_EQ(cudax::cublasSaxpy(h, 4, &alpha, nullptr, 0, nullptr, 1),
            cublasStatus_t::CUBLAS_STATUS_INVALID_VALUE);
  ASSERT_EQ(cudax::cublasDestroy(h),
            cublasStatus_t::CUBLAS_STATUS_SUCCESS);
}

// ------------------------------------------------------------- hipBLAS --

class HipblasPlatformTest : public ::testing::TestWithParam<hipx::Platform> {
 protected:
  void SetUp() override {
    saved_ = hipx::platform();
    hipx::set_platform(GetParam());
    ASSERT_EQ(hipx::hipblasCreate(&handle_),
              hipblasStatus_t::HIPBLAS_STATUS_SUCCESS);
  }
  void TearDown() override {
    EXPECT_EQ(hipx::hipblasDestroy(handle_),
              hipblasStatus_t::HIPBLAS_STATUS_SUCCESS);
    hipx::set_platform(saved_);
  }

  hipx::hipblasHandle_t handle_{};
  hipx::Platform saved_{};
};

TEST_P(HipblasPlatformTest, BackendMatchesPlatform) {
  // On the nvidia platform hipBLAS wraps cuBLAS (item 3's interface
  // story); on amd it runs natively.
  EXPECT_EQ(hipx::hipblas_uses_cublas_backend(handle_),
            GetParam() == hipx::Platform::nvidia);
}

TEST_P(HipblasPlatformTest, SaxpySameSourceBothPlatforms) {
  constexpr int n = 500;
  std::vector<float> x(n, 2.0f), y(n, 1.0f);
  float *dx = nullptr, *dy = nullptr;
  ASSERT_EQ(hipx::hipMalloc(reinterpret_cast<void**>(&dx),
                            n * sizeof(float)),
            hipx::hipError_t::hipSuccess);
  ASSERT_EQ(hipx::hipMalloc(reinterpret_cast<void**>(&dy),
                            n * sizeof(float)),
            hipx::hipError_t::hipSuccess);
  ASSERT_EQ(hipx::hipMemcpy(dx, x.data(), n * sizeof(float),
                            hipx::hipMemcpyHostToDevice),
            hipx::hipError_t::hipSuccess);
  ASSERT_EQ(hipx::hipMemcpy(dy, y.data(), n * sizeof(float),
                            hipx::hipMemcpyHostToDevice),
            hipx::hipError_t::hipSuccess);
  const float alpha = 3.0f;
  ASSERT_EQ(hipx::hipblasSaxpy(handle_, n, &alpha, dx, 1, dy, 1),
            hipblasStatus_t::HIPBLAS_STATUS_SUCCESS);
  ASSERT_EQ(hipx::hipMemcpy(y.data(), dy, n * sizeof(float),
                            hipx::hipMemcpyDeviceToHost),
            hipx::hipError_t::hipSuccess);
  for (const float v : y) ASSERT_FLOAT_EQ(v, 7.0f);
  (void)hipx::hipFree(dx);
  (void)hipx::hipFree(dy);
}

TEST_P(HipblasPlatformTest, DdotAndDgemm) {
  constexpr int n = 2048;
  std::vector<double> x(n, 1.5), y(n, 2.0);
  double *dx = nullptr, *dy = nullptr;
  ASSERT_EQ(hipx::hipMalloc(reinterpret_cast<void**>(&dx),
                            n * sizeof(double)),
            hipx::hipError_t::hipSuccess);
  ASSERT_EQ(hipx::hipMalloc(reinterpret_cast<void**>(&dy),
                            n * sizeof(double)),
            hipx::hipError_t::hipSuccess);
  ASSERT_EQ(hipx::hipMemcpy(dx, x.data(), n * sizeof(double),
                            hipx::hipMemcpyHostToDevice),
            hipx::hipError_t::hipSuccess);
  ASSERT_EQ(hipx::hipMemcpy(dy, y.data(), n * sizeof(double),
                            hipx::hipMemcpyHostToDevice),
            hipx::hipError_t::hipSuccess);
  double dot = 0.0;
  ASSERT_EQ(hipx::hipblasDdot(handle_, n, dx, 1, dy, 1, &dot),
            hipblasStatus_t::HIPBLAS_STATUS_SUCCESS);
  EXPECT_DOUBLE_EQ(dot, 3.0 * n);

  // 2x2 gemm on the same platform.
  const std::vector<double> a{1, 3, 2, 4};
  const std::vector<double> b{5, 7, 6, 8};
  std::vector<double> c(4, 0.0);
  double *da = nullptr, *db = nullptr, *dc = nullptr;
  ASSERT_EQ(hipx::hipMalloc(reinterpret_cast<void**>(&da), 4 * 8),
            hipx::hipError_t::hipSuccess);
  ASSERT_EQ(hipx::hipMalloc(reinterpret_cast<void**>(&db), 4 * 8),
            hipx::hipError_t::hipSuccess);
  ASSERT_EQ(hipx::hipMalloc(reinterpret_cast<void**>(&dc), 4 * 8),
            hipx::hipError_t::hipSuccess);
  (void)hipx::hipMemcpy(da, a.data(), 32, hipx::hipMemcpyHostToDevice);
  (void)hipx::hipMemcpy(db, b.data(), 32, hipx::hipMemcpyHostToDevice);
  (void)hipx::hipMemcpy(dc, c.data(), 32, hipx::hipMemcpyHostToDevice);
  const double alpha = 1.0, beta = 0.0;
  ASSERT_EQ(hipx::hipblasDgemm(handle_, 2, 2, 2, &alpha, da, 2, db, 2,
                               &beta, dc, 2),
            hipblasStatus_t::HIPBLAS_STATUS_SUCCESS);
  (void)hipx::hipMemcpy(c.data(), dc, 32, hipx::hipMemcpyDeviceToHost);
  EXPECT_DOUBLE_EQ(c[0], 19.0);
  EXPECT_DOUBLE_EQ(c[3], 50.0);
  for (double* p : {dx, dy, da, db, dc}) (void)hipx::hipFree(p);
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, HipblasPlatformTest,
    ::testing::Values(hipx::Platform::amd, hipx::Platform::nvidia),
    [](const ::testing::TestParamInfo<hipx::Platform>& info) {
      return info.param == hipx::Platform::amd ? "amd" : "nvidia";
    });

}  // namespace
}  // namespace mcmm
