#include "models/ompx/ompx.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace mcmm::ompx {
namespace {

TEST(Ompx, CompilerVendorMatrix) {
  // The paper's compiler/vendor coverage (items 9, 24, 38).
  EXPECT_TRUE(compiler_info(Compiler::NVHPC).targets ==
              std::set<Vendor>{Vendor::NVIDIA});
  EXPECT_TRUE((compiler_info(Compiler::GCC).targets ==
               std::set<Vendor>{Vendor::NVIDIA, Vendor::AMD}));
  EXPECT_TRUE((compiler_info(Compiler::AOMP).targets ==
               std::set<Vendor>{Vendor::NVIDIA, Vendor::AMD}));
  EXPECT_TRUE(compiler_info(Compiler::ICPX).targets ==
              std::set<Vendor>{Vendor::Intel});
}

TEST(Ompx, UnsupportedVendorThrows) {
  EXPECT_THROW(TargetDevice(Vendor::AMD, Compiler::NVHPC),
               UnsupportedCombination);
  EXPECT_THROW(TargetDevice(Vendor::Intel, Compiler::NVHPC),
               UnsupportedCombination);
  EXPECT_THROW(TargetDevice(Vendor::NVIDIA, Compiler::ICPX),
               UnsupportedCombination);
  EXPECT_THROW(TargetDevice(Vendor::Intel, Compiler::GCC),
               UnsupportedCombination);
  EXPECT_THROW(TargetDevice(Vendor::Intel, Compiler::AOMP),
               UnsupportedCombination);
}

TEST(Ompx, EveryVendorHasAtLeastOneCompiler) {
  // Fig. 1: OpenMP C++ is usable on all three platforms.
  for (const Vendor v : kAllVendors) {
    bool any = false;
    for (const Compiler c : {Compiler::NVHPC, Compiler::GCC, Compiler::Clang,
                             Compiler::Cray, Compiler::AOMP, Compiler::ICPX}) {
      if (compiler_info(c).targets.contains(v)) any = true;
    }
    EXPECT_TRUE(any) << to_string(v);
  }
}

TEST(Ompx, FeatureSubsetsDifferAcrossCompilers) {
  // NVHPC implements only a subset of 5.0: no unified shared memory, no
  // declare mapper, no metadirective.
  TargetDevice nvhpc(Vendor::NVIDIA, Compiler::NVHPC);
  EXPECT_TRUE(nvhpc.has(Feature::TargetOffload));
  EXPECT_FALSE(nvhpc.has(Feature::UnifiedSharedMemory));
  EXPECT_FALSE(nvhpc.has(Feature::DeclareMapper));
  EXPECT_THROW(nvhpc.require(Feature::Metadirective), UnsupportedFeature);

  // GCC is complete 4.5 but has no 5.0 features yet.
  TargetDevice gcc(Vendor::AMD, Compiler::GCC);
  EXPECT_TRUE(gcc.has(Feature::TeamsReduction));
  EXPECT_FALSE(gcc.has(Feature::LoopDirective));

  // ICPX carries most 5.0/5.1.
  TargetDevice icpx(Vendor::Intel, Compiler::ICPX);
  EXPECT_TRUE(icpx.has(Feature::UnifiedSharedMemory));
  EXPECT_TRUE(icpx.has(Feature::DeclareMapper));
  EXPECT_FALSE(icpx.has(Feature::Metadirective));
}

TEST(Ompx, UnsupportedFeatureErrorNamesTheCompiler) {
  TargetDevice nvhpc(Vendor::NVIDIA, Compiler::NVHPC);
  try {
    nvhpc.require(Feature::DeclareMapper);
    FAIL() << "expected UnsupportedFeature";
  } catch (const UnsupportedFeature& e) {
    EXPECT_NE(std::string(e.what()).find("NVHPC"), std::string::npos);
    EXPECT_EQ(e.feature(), "declare mapper");
  }
}

struct VendorCompiler {
  Vendor vendor;
  Compiler compiler;
};

class OmpxOffload : public ::testing::TestWithParam<VendorCompiler> {};

TEST_P(OmpxOffload, MapAndComputeVectorAdd) {
  TargetDevice dev(GetParam().vendor, GetParam().compiler);
  constexpr std::size_t n = 3000;
  std::vector<double> a(n, 2.0), b(n, 3.0), c(n, 0.0);
  {
    target_data data(dev);
    const double* da = data.map_to(a.data(), n);
    const double* db = data.map_to(b.data(), n);
    double* dc = data.map_from(c.data(), n);
    target_teams_distribute_parallel_for(
        dev, n, gpusim::KernelCosts{},
        [da, db, dc](std::size_t i) { dc[i] = da[i] + db[i]; });
  }  // region end copies c back
  for (const double v : c) ASSERT_DOUBLE_EQ(v, 5.0);
}

TEST_P(OmpxOffload, ReductionClause) {
  TargetDevice dev(GetParam().vendor, GetParam().compiler);
  constexpr std::size_t n = 12345;
  std::vector<double> a(n);
  std::iota(a.begin(), a.end(), 1.0);
  target_data data(dev);
  const double* da = data.map_to(a.data(), n);
  const double sum = target_teams_reduce(
      dev, n, 0.0, gpusim::KernelCosts{},
      [da](std::size_t i) { return da[i]; });
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(n) * (n + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllRoutes, OmpxOffload,
    ::testing::Values(VendorCompiler{Vendor::NVIDIA, Compiler::NVHPC},
                      VendorCompiler{Vendor::NVIDIA, Compiler::GCC},
                      VendorCompiler{Vendor::NVIDIA, Compiler::Clang},
                      VendorCompiler{Vendor::NVIDIA, Compiler::Cray},
                      VendorCompiler{Vendor::NVIDIA, Compiler::AOMP},
                      VendorCompiler{Vendor::AMD, Compiler::AOMP},
                      VendorCompiler{Vendor::AMD, Compiler::GCC},
                      VendorCompiler{Vendor::AMD, Compiler::Clang},
                      VendorCompiler{Vendor::AMD, Compiler::Cray},
                      VendorCompiler{Vendor::Intel, Compiler::ICPX}),
    [](const ::testing::TestParamInfo<VendorCompiler>& info) {
      return std::string(to_string(info.param.vendor)) + "_" +
             std::string(to_string(info.param.compiler));
    });

TEST(Ompx, TofromMappingCopiesBothWays) {
  TargetDevice dev(Vendor::Intel, Compiler::ICPX);
  constexpr std::size_t n = 100;
  std::vector<int> x(n, 1);
  {
    target_data data(dev);
    int* dx = data.map_tofrom(x.data(), n);
    target_teams_distribute_parallel_for(
        dev, n, gpusim::KernelCosts{}, [dx](std::size_t i) { dx[i] += 41; });
  }
  for (const int v : x) EXPECT_EQ(v, 42);
}

TEST(Ompx, MapToDoesNotCopyBack) {
  TargetDevice dev(Vendor::NVIDIA, Compiler::NVHPC);
  std::vector<int> x(16, 7);
  {
    target_data data(dev);
    int* dx = data.map_to(x.data(), 16);
    target_teams_distribute_parallel_for(
        dev, 16, gpusim::KernelCosts{}, [dx](std::size_t i) { dx[i] = 0; });
  }
  for (const int v : x) EXPECT_EQ(v, 7);
}

TEST(Ompx, TargetUpdateRefreshesMidRegion) {
  TargetDevice dev(Vendor::NVIDIA, Compiler::NVHPC);  // has TargetUpdate
  std::vector<int> x(8, 1);
  target_data data(dev);
  int* dx = data.map_to(x.data(), 8);
  target_teams_distribute_parallel_for(
      dev, 8, gpusim::KernelCosts{}, [dx](std::size_t i) { dx[i] = 9; });
  data.update_from(x.data());
  for (const int v : x) EXPECT_EQ(v, 9);
  // Host change pushed back down.
  x[0] = 100;
  data.update_to(x.data());
  const int sum = target_teams_reduce(
      dev, 8, 0, gpusim::KernelCosts{},
      [dx](std::size_t i) { return dx[i]; });
  EXPECT_EQ(sum, 100 + 7 * 9);
}

TEST(Ompx, UpdateOnUnmappedPointerThrows) {
  TargetDevice dev(Vendor::NVIDIA, Compiler::NVHPC);
  target_data data(dev);
  int x = 0;
  EXPECT_THROW(data.update_from(&x), gpusim::InvalidPointer);
  EXPECT_THROW(data.update_to(&x), gpusim::InvalidPointer);
  EXPECT_THROW((void)data.device_ptr(&x), gpusim::InvalidPointer);
}

TEST(Ompx, DoubleMappingThrows) {
  TargetDevice dev(Vendor::NVIDIA, Compiler::NVHPC);
  target_data data(dev);
  std::vector<int> x(4);
  (void)data.map_to(x.data(), 4);
  EXPECT_THROW((void)data.map_to(x.data(), 4), gpusim::InvalidPointer);
}

TEST(Ompx, Collapse2IteratesFullSpace) {
  TargetDevice dev(Vendor::Intel, Compiler::ICPX);
  constexpr std::size_t n = 37, m = 23;
  std::vector<int> grid(n * m, 0);
  {
    target_data data(dev);
    int* dg = data.map_tofrom(grid.data(), n * m);
    target_teams_distribute_parallel_for_collapse2(
        dev, n, m, gpusim::KernelCosts{},
        [dg](std::size_t i, std::size_t j) { dg[i * m + j] += 1; });
  }
  for (const int v : grid) EXPECT_EQ(v, 1);
}

TEST(Ompx, MetadirectiveDispatchesToDeviceWhereSupported) {
  // Clang and Cray implement metadirective (5.0); NVHPC does not.
  ompx::TargetDevice clang(Vendor::NVIDIA, ompx::Compiler::Clang);
  std::vector<int> x(16, 0);
  {
    ompx::target_data data(clang);
    int* dx = data.map_tofrom(x.data(), 16);
    const bool on_device = ompx::metadirective_target_or_host(
        clang, 16, gpusim::KernelCosts{},
        [dx](std::size_t i) { dx[i] = 2; });
    EXPECT_TRUE(on_device);
  }
  for (const int v : x) EXPECT_EQ(v, 2);

  ompx::TargetDevice nvhpc(Vendor::NVIDIA, ompx::Compiler::NVHPC);
  EXPECT_THROW((void)ompx::metadirective_target_or_host(
                   nvhpc, 16, gpusim::KernelCosts{}, [](std::size_t) {}),
               UnsupportedFeature);
}

TEST(Ompx, DevicePtrLookup) {
  TargetDevice dev(Vendor::AMD, Compiler::AOMP);
  target_data data(dev);
  std::vector<double> x(10);
  double* dx = data.map_to(x.data(), 10);
  EXPECT_EQ(data.device_ptr(x.data()), dx);
}

}  // namespace
}  // namespace mcmm::ompx
