// Tests of the chipStar route: HIP on Intel GPUs via OpenCL/Level Zero
// (paper item 33, rated 'limited support'). The route is opt-in,
// mirroring its experimental status; once enabled, the same HIP source
// that runs on AMD and NVIDIA also runs on the simulated Intel device —
// the Sec. 6 remark "recently also Intel GPUs with chipStar".

#include <gtest/gtest.h>

#include <vector>

#include "models/hipx/hipx.hpp"

namespace mcmm::hipx {
namespace {

using enum hipError_t;

class ChipstarTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_platform_ = platform();
    saved_gate_ = chipstar_enabled();
    set_platform(Platform::intel_chipstar);
  }
  void TearDown() override {
    set_platform(saved_platform_);
    enable_experimental_chipstar(saved_gate_);
  }

  Platform saved_platform_{};
  bool saved_gate_{};
};

TEST_F(ChipstarTest, BlockedWithoutOptIn) {
  enable_experimental_chipstar(false);
  void* p = nullptr;
  EXPECT_EQ(hipMalloc(&p, 64), hipErrorInvalidDevice);
  EXPECT_EQ(p, nullptr);
  EXPECT_EQ(hipDeviceSynchronize(), hipErrorInvalidDevice);
  EXPECT_EQ(hipSetDevice(0), hipErrorInvalidDevice);
  int count = -1;
  EXPECT_EQ(hipGetDeviceCount(&count), hipSuccess);
  EXPECT_EQ(count, 0);  // no HIP devices visible without chipStar
}

TEST_F(ChipstarTest, RunsOnIntelWithOptIn) {
  enable_experimental_chipstar(true);
  int count = 0;
  EXPECT_EQ(hipGetDeviceCount(&count), hipSuccess);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(current_device().vendor(), Vendor::Intel);

  constexpr std::size_t n = 1024;
  std::vector<double> host(n, 2.0);
  double* d = nullptr;
  ASSERT_EQ(hipMalloc(reinterpret_cast<void**>(&d), n * sizeof(double)),
            hipSuccess);
  EXPECT_TRUE(gpusim::Platform::instance()
                  .device(Vendor::Intel)
                  .is_device_pointer(d));
  ASSERT_EQ(hipMemcpy(d, host.data(), n * sizeof(double),
                      hipMemcpyHostToDevice),
            hipSuccess);
  // Same HIP kernel source as on AMD/NVIDIA.
  ASSERT_EQ(hipLaunchKernelGGL(
                [](const KernelCtx& ctx, double* p, std::size_t count) {
                  const std::size_t i = ctx.global_x();
                  if (i < count) p[i] *= 3.0;
                },
                dim3{4, 1, 1}, dim3{256, 1, 1}, d, n),
            hipSuccess);
  ASSERT_EQ(hipMemcpy(host.data(), d, n * sizeof(double),
                      hipMemcpyDeviceToHost),
            hipSuccess);
  for (const double v : host) ASSERT_DOUBLE_EQ(v, 6.0);
  EXPECT_EQ(hipFree(d), hipSuccess);
}

TEST_F(ChipstarTest, StreamsCarryTheChipstarProfile) {
  enable_experimental_chipstar(true);
  hipStream_t s = nullptr;
  ASSERT_EQ(hipStreamCreate(&s), hipSuccess);
  EXPECT_EQ(s->backend_profile().label, "chipStar");
  // Item 33 is 'limited': chipStar runs visibly below native efficiency.
  EXPECT_LT(s->backend_profile().bandwidth_efficiency, 0.9);
  EXPECT_EQ(hipStreamDestroy(s), hipSuccess);
}

TEST_F(ChipstarTest, StreamCreateBlockedWithoutOptIn) {
  enable_experimental_chipstar(false);
  hipStream_t s = nullptr;
  EXPECT_EQ(hipStreamCreate(&s), hipErrorInvalidDevice);
  EXPECT_EQ(s, nullptr);
}

TEST_F(ChipstarTest, GateDoesNotAffectAmdPlatform) {
  enable_experimental_chipstar(false);
  set_platform(Platform::amd);
  void* p = nullptr;
  EXPECT_EQ(hipMalloc(&p, 64), hipSuccess);
  EXPECT_EQ(hipFree(p), hipSuccess);
}

}  // namespace
}  // namespace mcmm::hipx
