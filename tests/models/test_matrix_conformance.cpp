// Conformance: the *executable* support matrix of the model embeddings must
// agree with the paper dataset (Fig. 1), C++ column by C++ column. This is
// the central integration test tying the knowledge base to the simulated
// ecosystem.

#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "models/accx/accx.hpp"
#include "models/alpakax/alpakax.hpp"
#include "models/cudax/cudax.hpp"
#include "models/hipx/hipx.hpp"
#include "models/kokkosx/kokkosx.hpp"
#include "models/ompx/ompx.hpp"
#include "models/stdparx/stdparx.hpp"
#include "models/syclx/syclx.hpp"

namespace mcmm {
namespace {

const CompatibilityMatrix& matrix() { return data::paper_matrix(); }

[[nodiscard]] SupportCategory category(Vendor v, Model m) {
  return matrix().at(v, m, Language::Cpp).best_category();
}

/// Does the embedding offer *any* executable route for (model, vendor)?
[[nodiscard]] bool embedding_runs(Model m, Vendor v) {
  switch (m) {
    case Model::CUDA:
      // cudax is the CUDA toolkit: NVIDIA only. The CUDA-on-AMD /
      // CUDA-on-Intel cells are translator routes, covered by
      // mcmm::translate (HIPIFY / SYCLomatic pipelines), not by a runtime.
      return v == Vendor::NVIDIA;
    case Model::HIP:
      // hipx implements the amd and nvidia platforms natively, plus the
      // chipStar route to Intel behind its experimental opt-in gate
      // (item 33, 'limited support').
      if (v == Vendor::Intel) {
        hipx::enable_experimental_chipstar(true);
        hipx::set_platform(hipx::Platform::intel_chipstar);
        void* p = nullptr;
        const bool ok =
            hipx::hipMalloc(&p, 16) == hipx::hipError_t::hipSuccess;
        if (ok) (void)hipx::hipFree(p);
        hipx::set_platform(hipx::Platform::amd);
        hipx::enable_experimental_chipstar(false);
        return ok;
      }
      return v == Vendor::AMD || v == Vendor::NVIDIA;
    case Model::SYCL:
      for (const auto impl :
           {syclx::Implementation::DPCpp, syclx::Implementation::OpenSYCL}) {
        try {
          const syclx::queue q(v, impl);
          return true;
        } catch (const UnsupportedCombination&) {
        }
      }
      return false;
    case Model::OpenACC: {
      for (const auto c : {accx::Compiler::NVHPC, accx::Compiler::GCC,
                           accx::Compiler::Clacc, accx::Compiler::Cray}) {
        if (accx::compiler_targets(c, v)) return true;
      }
      return false;
    }
    case Model::OpenMP: {
      for (const auto c :
           {ompx::Compiler::NVHPC, ompx::Compiler::GCC, ompx::Compiler::Clang,
            ompx::Compiler::Cray, ompx::Compiler::AOMP,
            ompx::Compiler::ICPX}) {
        if (ompx::compiler_info(c).targets.contains(v)) return true;
      }
      return false;
    }
    case Model::Standard: {
      stdparx::enable_experimental_roc_stdpar(true);
      bool any = false;
      for (const auto r :
           {stdparx::Runtime::NVHPC, stdparx::Runtime::OneDPL,
            stdparx::Runtime::RocStdpar, stdparx::Runtime::OpenSYCL}) {
        try {
          (void)stdparx::par_gpu(v, r);
          any = true;
        } catch (const UnsupportedCombination&) {
        }
      }
      stdparx::enable_experimental_roc_stdpar(false);
      return any;
    }
    case Model::Kokkos: {
      for (const auto s :
           {kokkosx::ExecSpace::Cuda, kokkosx::ExecSpace::HIP,
            kokkosx::ExecSpace::SYCL, kokkosx::ExecSpace::OpenMPTarget}) {
        if (kokkosx::exec_space_targets(s, v)) return true;
      }
      return false;
    }
    case Model::Alpaka:
      // Tags exist for all three vendors (Intel experimentally), plus the
      // OpenMP fallback.
      return true;
    case Model::Python:
      return false;  // no executable Python embedding in a C++ library
  }
  return false;
}

class ConformanceTest
    : public ::testing::TestWithParam<std::tuple<Vendor, Model>> {};

TEST_P(ConformanceTest, EmbeddingAvailabilityMatchesFigure1) {
  const auto [vendor, model] = GetParam();
  if (model == Model::Python) {
    GTEST_SKIP() << "Python column has no C++ runtime embedding";
  }
  const SupportCategory cat = category(vendor, model);
  const bool runs = embedding_runs(model, vendor);

  // Documented exceptions: cells whose only routes are one-shot source
  // translators or young research runtimes are modelled in
  // mcmm::translate, not as runtime embeddings.
  const bool translator_only_cell =
      (model == Model::CUDA && vendor != Vendor::NVIDIA) ||
      (model == Model::OpenACC && vendor == Vendor::Intel);

  if (translator_only_cell) {
    EXPECT_LE(score(cat), score(SupportCategory::IndirectGood))
        << "translator-only cell should not be 'full'";
    return;
  }
  EXPECT_EQ(runs, usable(cat))
      << to_string(Combination{vendor, model, Language::Cpp})
      << " rated " << category_name(cat);
}

INSTANTIATE_TEST_SUITE_P(
    Figure1CppColumns, ConformanceTest,
    ::testing::Combine(::testing::ValuesIn(kAllVendors),
                       ::testing::ValuesIn(kAllModels)),
    [](const ::testing::TestParamInfo<std::tuple<Vendor, Model>>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             std::string(to_string(std::get<1>(info.param)));
    });

TEST(Conformance, ExperimentalEmbeddingsMatchLimitedCells) {
  // Kokkos and Alpaka on Intel are 'limited' in Fig. 1 and experimental in
  // the embeddings.
  EXPECT_EQ(category(Vendor::Intel, Model::Kokkos),
            SupportCategory::Limited);
  kokkosx::Execution kokkos(kokkosx::ExecSpace::SYCL, Vendor::Intel);
  EXPECT_TRUE(kokkos.experimental());

  EXPECT_EQ(category(Vendor::Intel, Model::Alpaka),
            SupportCategory::Limited);
  static_assert(alpakax::AccGpuSyclIntel::experimental);
}

TEST(Conformance, StdparGateMatchesAmdCell) {
  // Fig. 1: AMD Standard C++ is 'limited' — roc-stdpar exists but is not
  // production. The embedding expresses this as an opt-in gate.
  EXPECT_EQ(category(Vendor::AMD, Model::Standard),
            SupportCategory::Limited);
  stdparx::enable_experimental_roc_stdpar(false);
  EXPECT_THROW((void)stdparx::par_gpu(Vendor::AMD, stdparx::Runtime::RocStdpar),
               UnsupportedCombination);
}

TEST(Conformance, NativeModelsAreFullAndRunNatively) {
  struct NativePair {
    Vendor vendor;
    Model model;
  };
  for (const NativePair p : {NativePair{Vendor::NVIDIA, Model::CUDA},
                             NativePair{Vendor::AMD, Model::HIP},
                             NativePair{Vendor::Intel, Model::SYCL}}) {
    EXPECT_EQ(category(p.vendor, p.model), SupportCategory::Full)
        << to_string(p.vendor);
    EXPECT_TRUE(embedding_runs(p.model, p.vendor));
  }
}

TEST(Conformance, UnsupportedCombinationCarriesTheRightCell) {
  try {
    accx::Accelerator acc(Vendor::Intel, accx::Compiler::NVHPC);
    FAIL();
  } catch (const UnsupportedCombination& e) {
    const SupportEntry* cell = matrix().find(e.combo());
    ASSERT_NE(cell, nullptr);
    EXPECT_LE(score(cell->best_category()),
              score(SupportCategory::Limited));
  }
}

}  // namespace
}  // namespace mcmm
