#include "models/accx/accx.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace mcmm::accx {
namespace {

TEST(Accx, CompilerTargets) {
  EXPECT_TRUE(compiler_targets(Compiler::NVHPC, Vendor::NVIDIA));
  EXPECT_FALSE(compiler_targets(Compiler::NVHPC, Vendor::AMD));
  EXPECT_TRUE(compiler_targets(Compiler::GCC, Vendor::AMD));
  EXPECT_TRUE(compiler_targets(Compiler::Clacc, Vendor::AMD));
  EXPECT_TRUE(compiler_targets(Compiler::Cray, Vendor::NVIDIA));
  // The paper's headline OpenACC result: no Intel support from any
  // compiler.
  for (const Compiler c :
       {Compiler::NVHPC, Compiler::GCC, Compiler::Clacc, Compiler::Cray}) {
    EXPECT_FALSE(compiler_targets(c, Vendor::Intel));
  }
}

TEST(Accx, IntelThrowsWithMigrationHint) {
  try {
    Accelerator acc(Vendor::Intel, Compiler::GCC);
    FAIL() << "expected UnsupportedCombination";
  } catch (const UnsupportedCombination& e) {
    EXPECT_EQ(e.combo().vendor, Vendor::Intel);
    EXPECT_EQ(e.combo().model, Model::OpenACC);
    EXPECT_NE(std::string(e.what()).find("migration tool"),
              std::string::npos);
  }
}

TEST(Accx, NvhpcOnAmdThrows) {
  EXPECT_THROW(Accelerator(Vendor::AMD, Compiler::NVHPC),
               UnsupportedCombination);
}

struct Route {
  Vendor vendor;
  Compiler compiler;
};

class AccxRoutes : public ::testing::TestWithParam<Route> {};

TEST_P(AccxRoutes, DataRegionAndParallelLoop) {
  Accelerator acc(GetParam().vendor, GetParam().compiler);
  constexpr std::size_t n = 2500;
  std::vector<double> a(n, 4.0), c(n, 0.0);
  {
    data_region data(acc);
    const double* da = data.copyin(a.data(), n);
    double* dc = data.copyout(c.data(), n);
    acc.parallel_loop(n, gpusim::KernelCosts{},
                      [da, dc](std::size_t i) { dc[i] = 2.0 * da[i]; });
  }
  for (const double v : c) ASSERT_DOUBLE_EQ(v, 8.0);
}

TEST_P(AccxRoutes, ReductionLoop) {
  Accelerator acc(GetParam().vendor, GetParam().compiler);
  constexpr std::size_t n = 7777;
  std::vector<double> a(n);
  std::iota(a.begin(), a.end(), 0.0);
  data_region data(acc);
  const double* da = data.copyin(a.data(), n);
  const double sum = acc.parallel_loop_reduce(
      n, 0.0, gpusim::KernelCosts{},
      [da](std::size_t i) { return da[i]; });
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(n) * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Figure1AccRoutes, AccxRoutes,
    ::testing::Values(Route{Vendor::NVIDIA, Compiler::NVHPC},
                      Route{Vendor::NVIDIA, Compiler::GCC},
                      Route{Vendor::NVIDIA, Compiler::Clacc},
                      Route{Vendor::NVIDIA, Compiler::Cray},
                      Route{Vendor::AMD, Compiler::GCC},
                      Route{Vendor::AMD, Compiler::Clacc},
                      Route{Vendor::AMD, Compiler::Cray}),
    [](const ::testing::TestParamInfo<Route>& info) {
      return std::string(to_string(info.param.vendor)) + "_" +
             std::string(to_string(info.param.compiler));
    });

TEST(Accx, ClaccLowersToOpenMP) {
  // Clacc's design: translate OpenACC to OpenMP (item 7/22); visible here
  // as the accelerator routing through the OpenMP embedding.
  Accelerator clacc(Vendor::AMD, Compiler::Clacc);
  EXPECT_TRUE(clacc.lowers_to_openmp());
  Accelerator gcc(Vendor::AMD, Compiler::GCC);
  EXPECT_FALSE(gcc.lowers_to_openmp());
}

TEST(Accx, CreateClauseDoesNotCopy) {
  Accelerator acc(Vendor::NVIDIA, Compiler::NVHPC);
  std::vector<int> host(64, 5);
  {
    data_region data(acc);
    int* scratch = data.create(host.data(), 64);
    acc.parallel_loop(64, gpusim::KernelCosts{},
                      [scratch](std::size_t i) { scratch[i] = 1; });
  }
  // create() never writes back.
  for (const int v : host) EXPECT_EQ(v, 5);
}

TEST(Accx, CopyClauseRoundTrips) {
  Accelerator acc(Vendor::AMD, Compiler::GCC);
  std::vector<int> host(32, 1);
  {
    data_region data(acc);
    int* d = data.copy(host.data(), 32);
    acc.parallel_loop(32, gpusim::KernelCosts{},
                      [d](std::size_t i) { d[i] += 1; });
  }
  for (const int v : host) EXPECT_EQ(v, 2);
}

TEST(Accx, SimulatedTimeAdvancesWithWork) {
  Accelerator acc(Vendor::NVIDIA, Compiler::NVHPC);
  const double t0 = acc.simulated_time_us();
  gpusim::KernelCosts costs;
  costs.bytes_read = 1e8;
  acc.parallel_loop(1024, costs, [](std::size_t) {});
  EXPECT_GT(acc.simulated_time_us(), t0);
}

}  // namespace
}  // namespace mcmm::accx
