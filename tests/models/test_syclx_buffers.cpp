// Tests of the SYCL buffer/accessor layer: implicit data movement,
// write-back on destruction, host accessors, and cross-queue rejection.

#include "models/syclx/buffers.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace mcmm::syclx {
namespace {

TEST(SyclBuffers, BufferStartsOnHost) {
  std::vector<double> host(64, 1.0);
  buffer<double> buf(host.data(), host.size());
  EXPECT_FALSE(buf.on_device());
  EXPECT_EQ(buf.size(), 64u);
}

TEST(SyclBuffers, KernelThroughCommandGroup) {
  queue q(Vendor::Intel, Implementation::DPCpp);
  std::vector<double> host(128, 2.0);
  {
    buffer<double> buf(host.data(), host.size());
    submit(q, [&](handler& h) {
      auto acc = h.get_access(buf, access_mode::read_write);
      h.parallel_for(range{buf.size()},
                     [acc](id i) { acc[i] = acc[i] * 3.0; });
    });
    EXPECT_TRUE(buf.on_device());
    // Host copy not yet updated (write-back happens at buffer scope end).
    EXPECT_DOUBLE_EQ(host[0], 2.0);
  }
  // Destruction wrote back.
  for (const double v : host) ASSERT_DOUBLE_EQ(v, 6.0);
}

TEST(SyclBuffers, VectorAddTwoInputBuffers) {
  queue q(Vendor::NVIDIA, Implementation::DPCpp);
  constexpr std::size_t n = 1000;
  std::vector<double> a(n, 1.5), b(n, 2.5), c(n, 0.0);
  {
    buffer<double> ba(a.data(), n);
    buffer<double> bb(b.data(), n);
    buffer<double> bc(c.data(), n);
    submit(q, [&](handler& h) {
      auto ra = h.get_access(ba, access_mode::read);
      auto rb = h.get_access(bb, access_mode::read);
      auto wc = h.get_access(bc, access_mode::write);
      h.parallel_for(range{n}, [=](id i) { wc[i] = ra[i] + rb[i]; });
    });
  }
  for (const double v : c) ASSERT_DOUBLE_EQ(v, 4.0);
  // Read-only buffers must not have altered their host data.
  EXPECT_DOUBLE_EQ(a[0], 1.5);
  EXPECT_DOUBLE_EQ(b[0], 2.5);
}

TEST(SyclBuffers, ReadOnlyAccessSkipsWriteBack) {
  queue q(Vendor::AMD, Implementation::OpenSYCL);
  std::vector<double> host(32, 9.0);
  {
    buffer<double> buf(host.data(), host.size());
    double sum = 0.0;
    submit(q, [&](handler& h) {
      auto acc = h.get_access(buf, access_mode::read);
      h.parallel_for(range{1}, [acc, &sum](id) {
        double local = 0.0;
        for (std::size_t i = 0; i < acc.size(); ++i) local += acc[i];
        sum = local;
      });
    });
    EXPECT_DOUBLE_EQ(sum, 32 * 9.0);
    host.assign(32, -1.0);  // mutate host under the buffer
  }
  // No write-back: host keeps the mutation.
  for (const double v : host) ASSERT_DOUBLE_EQ(v, -1.0);
}

TEST(SyclBuffers, HostAccessorSynchronizes) {
  queue q(Vendor::Intel, Implementation::DPCpp);
  std::vector<double> host(16, 1.0);
  buffer<double> buf(host.data(), host.size());
  submit(q, [&](handler& h) {
    auto acc = h.get_access(buf, access_mode::read_write);
    h.parallel_for(range{16}, [acc](id i) { acc[i] += 10.0; });
  });
  double* synced = buf.get_host_access();
  for (std::size_t i = 0; i < 16; ++i) ASSERT_DOUBLE_EQ(synced[i], 11.0);
}

TEST(SyclBuffers, HostWriteAfterHostAccessReachesDevice) {
  queue q(Vendor::Intel, Implementation::DPCpp);
  std::vector<double> host(8, 1.0);
  buffer<double> buf(host.data(), host.size());
  // First kernel materializes the buffer.
  submit(q, [&](handler& h) {
    auto acc = h.get_access(buf, access_mode::read);
    h.parallel_for(range{1}, [acc](id) {});
  });
  // Host mutation through the host accessor...
  double* p = buf.get_host_access();
  p[0] = 42.0;
  // ...must be visible to the next kernel.
  double seen = 0.0;
  submit(q, [&](handler& h) {
    auto acc = h.get_access(buf, access_mode::read);
    h.parallel_for(range{1}, [acc, &seen](id) { seen = acc[0]; });
  });
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(SyclBuffers, CrossQueueUseRejected) {
  queue intel(Vendor::Intel, Implementation::DPCpp);
  queue nvidia(Vendor::NVIDIA, Implementation::DPCpp);
  std::vector<double> host(8, 0.0);
  buffer<double> buf(host.data(), host.size());
  (void)buf.get_access(intel, access_mode::read);
  EXPECT_THROW((void)buf.get_access(nvidia, access_mode::read),
               UnsupportedCombination);
}

TEST(SyclBuffers, ChainedKernelsSeeEachOthersWrites) {
  queue q(Vendor::Intel, Implementation::DPCpp);
  constexpr std::size_t n = 100;
  std::vector<double> host(n, 1.0);
  {
    buffer<double> buf(host.data(), n);
    for (int round = 0; round < 3; ++round) {
      submit(q, [&](handler& h) {
        auto acc = h.get_access(buf, access_mode::read_write);
        h.parallel_for(range{n}, [acc](id i) { acc[i] *= 2.0; });
      });
    }
  }
  for (const double v : host) ASSERT_DOUBLE_EQ(v, 8.0);
}

}  // namespace
}  // namespace mcmm::syclx
