#include "models/cudax/cudax.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace mcmm::cudax {
namespace {

using enum cudaError_t;

TEST(Cudax, DeviceManagement) {
  int count = -1;
  EXPECT_EQ(cudaGetDeviceCount(&count), cudaSuccess);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(cudaSetDevice(0), cudaSuccess);
  EXPECT_EQ(cudaSetDevice(1), cudaErrorInvalidDevice);
  int device = -1;
  EXPECT_EQ(cudaGetDevice(&device), cudaSuccess);
  EXPECT_EQ(device, 0);
  EXPECT_EQ(cudaGetDeviceCount(nullptr), cudaErrorInvalidValue);
}

TEST(Cudax, TargetsSimulatedNvidiaDevice) {
  EXPECT_EQ(current_device().vendor(), Vendor::NVIDIA);
}

TEST(Cudax, MallocFreeRoundTrip) {
  void* p = nullptr;
  EXPECT_EQ(cudaMalloc(&p, 4096), cudaSuccess);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(current_device().is_device_pointer(p));
  EXPECT_EQ(cudaFree(p), cudaSuccess);
  EXPECT_FALSE(current_device().is_device_pointer(p));
}

TEST(Cudax, FreeNullptrIsAllowed) {
  EXPECT_EQ(cudaFree(nullptr), cudaSuccess);
}

TEST(Cudax, DoubleFreeReturnsError) {
  void* p = nullptr;
  ASSERT_EQ(cudaMalloc(&p, 64), cudaSuccess);
  EXPECT_EQ(cudaFree(p), cudaSuccess);
  EXPECT_EQ(cudaFree(p), cudaErrorInvalidDevicePointer);
}

TEST(Cudax, MemcpyRoundTrip) {
  std::vector<double> host(512);
  std::iota(host.begin(), host.end(), 1.0);
  void* d = nullptr;
  ASSERT_EQ(cudaMalloc(&d, host.size() * sizeof(double)), cudaSuccess);
  EXPECT_EQ(cudaMemcpy(d, host.data(), host.size() * sizeof(double),
                       cudaMemcpyHostToDevice),
            cudaSuccess);
  std::vector<double> back(512, 0.0);
  EXPECT_EQ(cudaMemcpy(back.data(), d, back.size() * sizeof(double),
                       cudaMemcpyDeviceToHost),
            cudaSuccess);
  EXPECT_EQ(back, host);
  EXPECT_EQ(cudaFree(d), cudaSuccess);
}

TEST(Cudax, MemcpyWrongDirectionFails) {
  std::vector<char> host(64);
  void* d = nullptr;
  ASSERT_EQ(cudaMalloc(&d, 64), cudaSuccess);
  EXPECT_EQ(cudaMemcpy(host.data(), host.data(), 64, cudaMemcpyDeviceToHost),
            cudaErrorInvalidDevicePointer);
  EXPECT_EQ(cudaFree(d), cudaSuccess);
}

TEST(Cudax, MemsetFillsDeviceMemory) {
  void* d = nullptr;
  ASSERT_EQ(cudaMalloc(&d, 128), cudaSuccess);
  EXPECT_EQ(cudaMemset(d, 0x5A, 128), cudaSuccess);
  std::vector<unsigned char> back(128);
  ASSERT_EQ(cudaMemcpy(back.data(), d, 128, cudaMemcpyDeviceToHost),
            cudaSuccess);
  for (const unsigned char c : back) EXPECT_EQ(c, 0x5A);
  EXPECT_EQ(cudaFree(d), cudaSuccess);
}

TEST(Cudax, SaxpyKernel) {
  constexpr std::size_t n = 10000;
  std::vector<float> x(n, 2.0f);
  std::vector<float> y(n, 3.0f);
  float *dx = nullptr, *dy = nullptr;
  ASSERT_EQ(cudaMalloc(reinterpret_cast<void**>(&dx), n * sizeof(float)),
            cudaSuccess);
  ASSERT_EQ(cudaMalloc(reinterpret_cast<void**>(&dy), n * sizeof(float)),
            cudaSuccess);
  ASSERT_EQ(cudaMemcpy(dx, x.data(), n * sizeof(float),
                       cudaMemcpyHostToDevice),
            cudaSuccess);
  ASSERT_EQ(cudaMemcpy(dy, y.data(), n * sizeof(float),
                       cudaMemcpyHostToDevice),
            cudaSuccess);

  // The CUDA-idiomatic kernel: ctx plays the role of the built-ins.
  const auto saxpy = [](const KernelCtx& ctx, float a, const float* px,
                        float* py, std::size_t count) {
    const std::size_t i = ctx.global_x();
    if (i < count) py[i] = a * px[i] + py[i];
  };
  const dim3 block{256, 1, 1};
  const dim3 grid{static_cast<std::uint32_t>((n + 255) / 256), 1, 1};
  EXPECT_EQ(cudaLaunch(grid, block, saxpy, 2.0f,
                       static_cast<const float*>(dx), dy, n),
            cudaSuccess);

  ASSERT_EQ(cudaMemcpy(y.data(), dy, n * sizeof(float),
                       cudaMemcpyDeviceToHost),
            cudaSuccess);
  for (const float v : y) ASSERT_FLOAT_EQ(v, 7.0f);
  EXPECT_EQ(cudaFree(dx), cudaSuccess);
  EXPECT_EQ(cudaFree(dy), cudaSuccess);
}

TEST(Cudax, TwoDimensionalKernelTransposesAMatrix) {
  constexpr std::size_t rows = 48, cols = 31;
  std::vector<float> in(rows * cols), out(rows * cols, -1.0f);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(i);
  }
  float *din = nullptr, *dout = nullptr;
  ASSERT_EQ(cudaMalloc(reinterpret_cast<void**>(&din),
                       in.size() * sizeof(float)),
            cudaSuccess);
  ASSERT_EQ(cudaMalloc(reinterpret_cast<void**>(&dout),
                       out.size() * sizeof(float)),
            cudaSuccess);
  ASSERT_EQ(cudaMemcpy(din, in.data(), in.size() * sizeof(float),
                       cudaMemcpyHostToDevice),
            cudaSuccess);

  // 2-D grid/block, CUDA style: x covers columns, y covers rows.
  const dim3 block{16, 16, 1};
  const dim3 grid{static_cast<std::uint32_t>((cols + 15) / 16),
                  static_cast<std::uint32_t>((rows + 15) / 16), 1};
  const auto transpose = [](const KernelCtx& ctx, const float* src,
                            float* dst, std::size_t r, std::size_t c) {
    const std::size_t col = ctx.blockIdx.x * ctx.blockDim.x + ctx.threadIdx.x;
    const std::size_t row = ctx.blockIdx.y * ctx.blockDim.y + ctx.threadIdx.y;
    if (row < r && col < c) dst[col * r + row] = src[row * c + col];
  };
  ASSERT_EQ(cudaLaunch(grid, block, transpose,
                       static_cast<const float*>(din), dout, rows, cols),
            cudaSuccess);

  ASSERT_EQ(cudaMemcpy(out.data(), dout, out.size() * sizeof(float),
                       cudaMemcpyDeviceToHost),
            cudaSuccess);
  for (std::size_t row = 0; row < rows; ++row) {
    for (std::size_t col = 0; col < cols; ++col) {
      ASSERT_FLOAT_EQ(out[col * rows + row], in[row * cols + col])
          << row << "," << col;
    }
  }
  EXPECT_EQ(cudaFree(din), cudaSuccess);
  EXPECT_EQ(cudaFree(dout), cudaSuccess);
}

TEST(Cudax, OversizedBlockIsInvalidConfiguration) {
  const dim3 grid{1, 1, 1};
  const dim3 block{4096, 1, 1};
  EXPECT_EQ(cudaLaunch(grid, block, [](const KernelCtx&) {}),
            cudaErrorInvalidConfiguration);
}

TEST(Cudax, StreamsAndEventsMeasureSimulatedTime) {
  cudaStream_t stream = nullptr;
  ASSERT_EQ(cudaStreamCreate(&stream), cudaSuccess);
  cudaEvent_t start = nullptr, stop = nullptr;
  ASSERT_EQ(cudaEventCreate(&start), cudaSuccess);
  ASSERT_EQ(cudaEventCreate(&stop), cudaSuccess);

  ASSERT_EQ(cudaEventRecord(start, stream), cudaSuccess);
  gpusim::KernelCosts costs;
  costs.bytes_read = 1e9;
  EXPECT_EQ(cudaLaunch(dim3{64, 1, 1}, dim3{256, 1, 1}, costs, stream,
                       [](const KernelCtx&) {}),
            cudaSuccess);
  ASSERT_EQ(cudaEventRecord(stop, stream), cudaSuccess);

  float ms = 0.0f;
  ASSERT_EQ(cudaEventElapsedTime(&ms, start, stop), cudaSuccess);
  EXPECT_GT(ms, 0.0f);

  EXPECT_EQ(cudaStreamSynchronize(stream), cudaSuccess);
  EXPECT_EQ(cudaEventDestroy(start), cudaSuccess);
  EXPECT_EQ(cudaEventDestroy(stop), cudaSuccess);
  EXPECT_EQ(cudaStreamDestroy(stream), cudaSuccess);
}

TEST(Cudax, ElapsedTimeNeedsRecordedEvents) {
  cudaEvent_t a = nullptr, b = nullptr;
  ASSERT_EQ(cudaEventCreate(&a), cudaSuccess);
  ASSERT_EQ(cudaEventCreate(&b), cudaSuccess);
  float ms = 0.0f;
  EXPECT_EQ(cudaEventElapsedTime(&ms, a, b), cudaErrorInvalidValue);
  EXPECT_EQ(cudaEventDestroy(a), cudaSuccess);
  EXPECT_EQ(cudaEventDestroy(b), cudaSuccess);
}

TEST(Cudax, ErrorStringsAreDescriptive) {
  EXPECT_STREQ(cudaGetErrorString(cudaSuccess), "no error");
  EXPECT_STREQ(cudaGetErrorString(cudaErrorMemoryAllocation),
               "out of memory");
}

TEST(Cudax, OutOfMemoryReturnsErrorCode) {
  void* p = nullptr;
  // More than the 80 GB H100-like capacity.
  EXPECT_EQ(cudaMalloc(&p, std::size_t{200} * 1024 * 1024 * 1024),
            cudaErrorMemoryAllocation);
  EXPECT_EQ(p, nullptr);
}

}  // namespace
}  // namespace mcmm::cudax
