#include "models/alpakax/alpakax.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace mcmm::alpakax {
namespace {

TEST(Alpakax, TagsBindVendorsAtCompileTime) {
  static_assert(AccGpuCudaRt::vendor == Vendor::NVIDIA);
  static_assert(AccGpuHipRt::vendor == Vendor::AMD);
  static_assert(AccGpuSyclIntel::vendor == Vendor::Intel);
  static_assert(!AccGpuCudaRt::experimental);
  static_assert(AccGpuSyclIntel::experimental);
}

TEST(Alpakax, WorkDivCoversN) {
  const WorkDiv wd = work_div_for(1000, 256);
  EXPECT_EQ(wd.blocks, 4u);
  EXPECT_EQ(wd.total(), 1024u);
  const WorkDiv zero = work_div_for(0);
  EXPECT_EQ(zero.blocks, 1u);
}

/// The alpaka idiom: one templated kernel, compiled for every accelerator.
struct ScaleAddKernel {
  template <typename TCtx>
  void operator()(const TCtx& ctx, double* y, const double* x, double a,
                  std::size_t n) const {
    const std::size_t i = ctx.global_thread_idx;
    if (i < n) y[i] = a * x[i] + y[i];
  }
};

template <typename TAcc>
void run_scale_add() {
  Queue<TAcc> queue;
  constexpr std::size_t n = 3000;
  auto x = alloc_buf<double>(queue, n);
  auto y = alloc_buf<double>(queue, n);
  std::vector<double> hx(n, 2.0), hy(n, 1.0);
  memcpy_to_device(queue, x, hx.data(), n);
  memcpy_to_device(queue, y, hy.data(), n);
  exec(queue, work_div_for(n), gpusim::KernelCosts{}, ScaleAddKernel{},
       y.data(), static_cast<const double*>(x.data()), 3.0, n);
  std::vector<double> out(n);
  memcpy_to_host(queue, out.data(), y, n);
  for (const double v : out) ASSERT_DOUBLE_EQ(v, 7.0);
}

TEST(Alpakax, SameKernelOnCudaTag) { run_scale_add<AccGpuCudaRt>(); }
TEST(Alpakax, SameKernelOnHipTag) { run_scale_add<AccGpuHipRt>(); }
TEST(Alpakax, SameKernelOnSyclTag) { run_scale_add<AccGpuSyclIntel>(); }

TEST(Alpakax, QueueVendorsMatchTags) {
  Queue<AccGpuCudaRt> cuda;
  EXPECT_EQ(cuda.device().vendor(), Vendor::NVIDIA);
  Queue<AccGpuHipRt> hip;
  EXPECT_EQ(hip.device().vendor(), Vendor::AMD);
  Queue<AccGpuSyclIntel> sycl;
  EXPECT_EQ(sycl.device().vendor(), Vendor::Intel);
}

TEST(Alpakax, SyclTagPaysExperimentalOverhead) {
  Queue<AccGpuCudaRt> cuda;
  Queue<AccGpuSyclIntel> sycl;
  EXPECT_GT(cuda.queue().backend_profile().bandwidth_efficiency,
            sycl.queue().backend_profile().bandwidth_efficiency);
}

TEST(Alpakax, OmpFallbackRunsOnAllVendors) {
  // Items 29/43: Alpaka can fall back to an OpenMP backend.
  for (const Vendor v : kAllVendors) {
    Queue<AccOmp> queue(v);
    EXPECT_EQ(queue.vendor(), v);
    constexpr std::size_t n = 500;
    auto buf = alloc_buf<int>(queue, n);
    std::vector<int> host(n, 0);
    memcpy_to_device(queue, buf, host.data(), n);
    exec(queue, work_div_for(n), gpusim::KernelCosts{},
         [](const AccCtx& ctx, int* p, std::size_t count) {
           if (ctx.global_thread_idx < count) {
             p[ctx.global_thread_idx] = static_cast<int>(ctx.global_thread_idx);
           }
         },
         buf.data(), n);
    memcpy_to_host(queue, host.data(), buf, n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(host[i], static_cast<int>(i));
    }
  }
}

TEST(Alpakax, BufferMoveTransfersOwnership) {
  Queue<AccGpuCudaRt> queue;
  const std::size_t before = queue.device().allocator().live_allocations();
  {
    auto a = alloc_buf<double>(queue, 64);
    auto b = std::move(a);
    EXPECT_EQ(queue.device().allocator().live_allocations(), before + 1);
    EXPECT_NE(b.data(), nullptr);
  }
  EXPECT_EQ(queue.device().allocator().live_allocations(), before);
}

TEST(Alpakax, SimulatedTimeAdvances) {
  Queue<AccGpuHipRt> queue;
  const double t0 = queue.simulated_time_us();
  gpusim::KernelCosts costs;
  costs.bytes_written = 1e8;
  exec(queue, work_div_for(1024), costs,
       [](const AccCtx&, int) {}, 0);
  EXPECT_GT(queue.simulated_time_us(), t0);
}

}  // namespace
}  // namespace mcmm::alpakax
