#include "models/kokkosx/kokkosx.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace mcmm::kokkosx {
namespace {

TEST(Kokkosx, ExecSpaceVendorMatrix) {
  // Fig. 1's Kokkos column (items 13, 28, 42).
  EXPECT_TRUE(exec_space_targets(ExecSpace::Cuda, Vendor::NVIDIA));
  EXPECT_FALSE(exec_space_targets(ExecSpace::Cuda, Vendor::AMD));
  EXPECT_TRUE(exec_space_targets(ExecSpace::HIP, Vendor::AMD));
  EXPECT_FALSE(exec_space_targets(ExecSpace::HIP, Vendor::Intel));
  EXPECT_TRUE(exec_space_targets(ExecSpace::SYCL, Vendor::Intel));
  EXPECT_TRUE(exec_space_targets(ExecSpace::OpenMPTarget, Vendor::NVIDIA));
  EXPECT_TRUE(exec_space_targets(ExecSpace::OpenMPTarget, Vendor::AMD));
  EXPECT_FALSE(exec_space_targets(ExecSpace::OpenMPTarget, Vendor::Intel));
}

TEST(Kokkosx, EveryVendorReachableBySomeSpace) {
  for (const Vendor v : kAllVendors) {
    bool reachable = false;
    for (const ExecSpace s : {ExecSpace::Cuda, ExecSpace::HIP, ExecSpace::SYCL,
                              ExecSpace::OpenMPTarget}) {
      if (exec_space_targets(s, v)) reachable = true;
    }
    EXPECT_TRUE(reachable) << to_string(v);
  }
}

TEST(Kokkosx, MismatchedSpaceThrows) {
  EXPECT_THROW(Execution(ExecSpace::Cuda, Vendor::AMD),
               UnsupportedCombination);
  EXPECT_THROW(Execution(ExecSpace::HIP, Vendor::NVIDIA),
               UnsupportedCombination);
  EXPECT_THROW(Execution(ExecSpace::SYCL, Vendor::NVIDIA),
               UnsupportedCombination);
}

TEST(Kokkosx, SyclBackendIsExperimental) {
  Execution intel(ExecSpace::SYCL, Vendor::Intel);
  EXPECT_TRUE(intel.experimental());
  Execution nvidia(ExecSpace::Cuda, Vendor::NVIDIA);
  EXPECT_FALSE(nvidia.experimental());
  // Experimental backends run at reduced efficiency.
  EXPECT_LT(intel.queue().backend_profile().bandwidth_efficiency,
            nvidia.queue().backend_profile().bandwidth_efficiency);
}

TEST(Kokkosx, ViewsAreReferenceCounted) {
  Execution exec(ExecSpace::Cuda, Vendor::NVIDIA);
  const std::size_t before = exec.device().allocator().live_allocations();
  {
    View<double> a(exec, "a", 128);
    EXPECT_EQ(a.use_count(), 1);
    {
      View<double> b = a;  // NOLINT(performance-unnecessary-copy-initialization)
      EXPECT_EQ(a.use_count(), 2);
      EXPECT_EQ(b.data(), a.data());
    }
    EXPECT_EQ(a.use_count(), 1);
    EXPECT_EQ(exec.device().allocator().live_allocations(), before + 1);
  }
  EXPECT_EQ(exec.device().allocator().live_allocations(), before);
}

TEST(Kokkosx, ViewLabels) {
  Execution exec(ExecSpace::Cuda, Vendor::NVIDIA);
  View<int> v(exec, "forces", 16);
  EXPECT_EQ(v.label(), "forces");
  EXPECT_EQ(v.size(), 16u);
}

struct SpaceVendor {
  ExecSpace space;
  Vendor vendor;
};

class KokkosRoutes : public ::testing::TestWithParam<SpaceVendor> {};

TEST_P(KokkosRoutes, ParallelForAxpy) {
  Execution exec(GetParam().space, GetParam().vendor);
  constexpr std::size_t n = 5000;
  View<double> x(exec, "x", n);
  View<double> y(exec, "y", n);
  std::vector<double> hx(n, 2.0), hy(n, 1.0);
  deep_copy_to_device(x, hx.data());
  deep_copy_to_device(y, hy.data());
  parallel_for(exec, RangePolicy{0, n}, gpusim::KernelCosts{},
               [x, y](std::size_t i) { y(i) += 3.0 * x(i); });
  std::vector<double> out(n);
  deep_copy_to_host(out.data(), y);
  for (const double v : out) ASSERT_DOUBLE_EQ(v, 7.0);
}

TEST_P(KokkosRoutes, ParallelReduceDot) {
  Execution exec(GetParam().space, GetParam().vendor);
  constexpr std::size_t n = 8192;
  View<double> x(exec, "x", n);
  View<double> y(exec, "y", n);
  std::vector<double> h(n, 0.5);
  deep_copy_to_device(x, h.data());
  deep_copy_to_device(y, h.data());
  double dot = 0.0;
  parallel_reduce(
      exec, RangePolicy{0, n}, gpusim::KernelCosts{},
      [x, y](std::size_t i, double& update) { update += x(i) * y(i); }, dot);
  EXPECT_DOUBLE_EQ(dot, 0.25 * n);
}

INSTANTIATE_TEST_SUITE_P(
    Figure1KokkosColumn, KokkosRoutes,
    ::testing::Values(SpaceVendor{ExecSpace::Cuda, Vendor::NVIDIA},
                      SpaceVendor{ExecSpace::HIP, Vendor::AMD},
                      SpaceVendor{ExecSpace::SYCL, Vendor::Intel},
                      SpaceVendor{ExecSpace::OpenMPTarget, Vendor::NVIDIA},
                      SpaceVendor{ExecSpace::OpenMPTarget, Vendor::AMD}),
    [](const ::testing::TestParamInfo<SpaceVendor>& info) {
      return std::string(to_string(info.param.space)) + "_" +
             std::string(to_string(info.param.vendor));
    });

TEST(Kokkosx, ParallelScanInclusivePrefixSum) {
  Execution exec(ExecSpace::Cuda, Vendor::NVIDIA);
  constexpr std::size_t n = 1000;
  View<long> in(exec, "in", n);
  View<long> out(exec, "out", n);
  std::vector<long> host(n, 1);
  deep_copy_to_device(in, host.data());
  parallel_scan<long>(exec, RangePolicy{0, n}, gpusim::KernelCosts{},
                      [in, out](std::size_t i, long& update, bool final) {
                        update += in(i);
                        if (final) out(i) = update;
                      });
  std::vector<long> result(n);
  deep_copy_to_host(result.data(), out);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(result[i], static_cast<long>(i + 1)) << i;
  }
}

TEST(Kokkosx, ParallelScanNonUniformValues) {
  Execution exec(ExecSpace::HIP, Vendor::AMD);
  constexpr std::size_t n = 777;
  View<long> in(exec, "in", n);
  View<long> out(exec, "out", n);
  std::vector<long> host(n);
  for (std::size_t i = 0; i < n; ++i) host[i] = static_cast<long>(i % 13);
  deep_copy_to_device(in, host.data());
  parallel_scan<long>(exec, RangePolicy{0, n}, gpusim::KernelCosts{},
                      [in, out](std::size_t i, long& update, bool final) {
                        update += in(i);
                        if (final) out(i) = update;
                      });
  std::vector<long> result(n);
  deep_copy_to_host(result.data(), out);
  long expected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expected += host[i];
    ASSERT_EQ(result[i], expected) << i;
  }
}

TEST(Kokkosx, DeepCopyDeviceToDevice) {
  Execution exec(ExecSpace::Cuda, Vendor::NVIDIA);
  constexpr std::size_t n = 256;
  View<int> a(exec, "a", n);
  View<int> b(exec, "b", n);
  std::vector<int> host(n, 9);
  deep_copy_to_device(a, host.data());
  deep_copy(b, a);
  std::vector<int> out(n);
  deep_copy_to_host(out.data(), b);
  for (const int v : out) ASSERT_EQ(v, 9);
}

TEST(Kokkosx, RangePolicyWithOffset) {
  Execution exec(ExecSpace::Cuda, Vendor::NVIDIA);
  constexpr std::size_t n = 100;
  View<int> v(exec, "v", n);
  std::vector<int> host(n, 0);
  deep_copy_to_device(v, host.data());
  parallel_for(exec, RangePolicy{10, 20}, gpusim::KernelCosts{},
               [v](std::size_t i) { v(i) = 1; });
  deep_copy_to_host(host.data(), v);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(host[i], (i >= 10 && i < 20) ? 1 : 0) << i;
  }
}

}  // namespace
}  // namespace mcmm::kokkosx
