#include "models/stdparx/stdparx.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "support/rng.hpp"

namespace mcmm::stdparx {
namespace {

/// RAII guard for the roc-stdpar opt-in flag.
class RocGuard {
 public:
  explicit RocGuard(bool enable) : saved_(roc_stdpar_enabled()) {
    enable_experimental_roc_stdpar(enable);
  }
  ~RocGuard() { enable_experimental_roc_stdpar(saved_); }

 private:
  bool saved_;
};

TEST(Stdparx, NvhpcTargetsNvidiaOnly) {
  EXPECT_NO_THROW(par_gpu(Vendor::NVIDIA, Runtime::NVHPC));
  EXPECT_THROW(par_gpu(Vendor::AMD, Runtime::NVHPC), UnsupportedCombination);
  EXPECT_THROW(par_gpu(Vendor::Intel, Runtime::NVHPC),
               UnsupportedCombination);
}

TEST(Stdparx, RocStdparRequiresOptIn) {
  {
    const RocGuard guard(false);
    // Item 26: AMD does not yet provide production-grade pSTL support.
    EXPECT_THROW(par_gpu(Vendor::AMD, Runtime::RocStdpar),
                 UnsupportedCombination);
  }
  {
    const RocGuard guard(true);
    EXPECT_NO_THROW(par_gpu(Vendor::AMD, Runtime::RocStdpar));
  }
}

TEST(Stdparx, RocStdparIsAmdOnly) {
  const RocGuard guard(true);
  EXPECT_THROW(par_gpu(Vendor::NVIDIA, Runtime::RocStdpar),
               UnsupportedCombination);
  EXPECT_THROW(par_gpu(Vendor::Intel, Runtime::RocStdpar),
               UnsupportedCombination);
}

TEST(Stdparx, OneDplIsCustomNamespace) {
  // Item 40 / Sec. 5: Intel's pSTL lives in oneapi::dpl::, the reason the
  // cell is 'some support' rather than full.
  const execution_policy pol = par_gpu(Vendor::Intel, Runtime::OneDPL);
  EXPECT_TRUE(pol.custom_namespace());
  const execution_policy nv = par_gpu(Vendor::NVIDIA, Runtime::NVHPC);
  EXPECT_FALSE(nv.custom_namespace());
}

TEST(Stdparx, OpenSyclReachesAllVendors) {
  for (const Vendor v : kAllVendors) {
    EXPECT_NO_THROW(par_gpu(v, Runtime::OpenSYCL)) << to_string(v);
  }
}

struct Route {
  Vendor vendor;
  Runtime runtime;
};

std::vector<Route> working_routes() {
  return {
      {Vendor::NVIDIA, Runtime::NVHPC},   {Vendor::Intel, Runtime::OneDPL},
      {Vendor::NVIDIA, Runtime::OneDPL},  {Vendor::AMD, Runtime::OneDPL},
      {Vendor::NVIDIA, Runtime::OpenSYCL}, {Vendor::AMD, Runtime::OpenSYCL},
      {Vendor::Intel, Runtime::OpenSYCL},
  };
}

class StdparRoutes : public ::testing::TestWithParam<Route> {};

TEST_P(StdparRoutes, TransformReduceAndFill) {
  const execution_policy pol =
      par_gpu(GetParam().vendor, GetParam().runtime);
  constexpr std::size_t n = 4096;
  device_vector<double> a(pol, n);
  device_vector<double> b(pol, n);
  device_vector<double> c(pol, n);

  fill(pol, a.begin(), a.end(), 2.0);
  fill(pol, b.begin(), b.end(), 0.5);
  transform(pol, a.begin(), a.end(), b.begin(), c.begin(),
            [](double x, double y) { return x * y; });
  const double dot =
      transform_reduce(pol, c.begin(), c.end(), a.begin(), 0.0);
  // c[i] = 1.0, a[i] = 2.0 -> dot = 2n.
  EXPECT_DOUBLE_EQ(dot, 2.0 * n);
}

TEST_P(StdparRoutes, ForEachMutatesInPlace) {
  const execution_policy pol =
      par_gpu(GetParam().vendor, GetParam().runtime);
  constexpr std::size_t n = 1000;
  device_vector<int> v(pol, n);
  fill(pol, v.begin(), v.end(), 1);
  for_each(pol, v.begin(), v.end(), [](int& x) { x += 41; });
  std::vector<int> host(n);
  v.download(host.data(), n);
  for (const int x : host) ASSERT_EQ(x, 42);
}

INSTANTIATE_TEST_SUITE_P(
    Figure1StandardColumn, StdparRoutes,
    ::testing::ValuesIn(working_routes()),
    [](const ::testing::TestParamInfo<Route>& info) {
      std::string name = std::string(to_string(info.param.vendor)) + "_" +
                         std::string(to_string(info.param.runtime));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Stdparx, ReduceSumAndCustomOp) {
  const execution_policy pol = par_gpu(Vendor::NVIDIA, Runtime::NVHPC);
  constexpr std::size_t n = 10000;
  std::vector<double> host(n);
  std::iota(host.begin(), host.end(), 1.0);
  device_vector<double> d(pol, n);
  d.upload(host.data(), n);
  EXPECT_DOUBLE_EQ(reduce(pol, d.begin(), d.end(), 0.0),
                   static_cast<double>(n) * (n + 1) / 2);
  const double mx =
      reduce(pol, d.begin(), d.end(), 0.0,
             [](double a, double b) { return a > b ? a : b; });
  EXPECT_DOUBLE_EQ(mx, static_cast<double>(n));
}

TEST(Stdparx, CopyIsDeviceToDevice) {
  const execution_policy pol = par_gpu(Vendor::Intel, Runtime::OneDPL);
  constexpr std::size_t n = 512;
  device_vector<int> a(pol, n);
  device_vector<int> b(pol, n);
  fill(pol, a.begin(), a.end(), 7);
  copy(pol, a.begin(), a.end(), b.begin());
  std::vector<int> host(n);
  b.download(host.data(), n);
  for (const int x : host) ASSERT_EQ(x, 7);
}

TEST(Stdparx, SortOrdersDeviceArray) {
  const execution_policy pol = par_gpu(Vendor::NVIDIA, Runtime::NVHPC);
  constexpr std::size_t n = 2048;
  std::vector<int> host(n);
  mcmm::testing::rng r(7919);
  for (std::size_t i = 0; i < n; ++i) {
    host[i] = static_cast<int>(r.below(10007));
  }
  device_vector<int> d(pol, n);
  d.upload(host.data(), n);
  sort(pol, d.begin(), d.end());
  std::vector<int> back(n);
  d.download(back.data(), n);
  std::sort(host.begin(), host.end());
  EXPECT_EQ(back, host);
}

TEST(Stdparx, UnaryTransform) {
  const execution_policy pol = par_gpu(Vendor::AMD, Runtime::OpenSYCL);
  constexpr std::size_t n = 333;
  device_vector<double> in(pol, n);
  device_vector<double> out(pol, n);
  fill(pol, in.begin(), in.end(), 3.0);
  transform(pol, in.begin(), in.end(), out.begin(),
            [](double x) { return x * x; });
  std::vector<double> host(n);
  out.download(host.data(), n);
  for (const double x : host) ASSERT_DOUBLE_EQ(x, 9.0);
}

TEST(Stdparx, ExperimentalRoutesAreSlower) {
  const execution_policy native = par_gpu(Vendor::NVIDIA, Runtime::NVHPC);
  const execution_policy exp = par_gpu(Vendor::NVIDIA, Runtime::OpenSYCL);
  EXPECT_GT(native.queue().backend_profile().bandwidth_efficiency,
            exp.queue().backend_profile().bandwidth_efficiency);
}

TEST(Stdparx, MovedFromVectorIsSafe) {
  const execution_policy pol = par_gpu(Vendor::NVIDIA, Runtime::NVHPC);
  device_vector<int> a(pol, 16);
  device_vector<int> b = std::move(a);
  EXPECT_EQ(b.size(), 16u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): documented
}

}  // namespace
}  // namespace mcmm::stdparx
