#include "models/syclx/syclx.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "support/rng.hpp"

namespace mcmm::syclx {
namespace {

struct Combo {
  Vendor vendor;
  Implementation impl;
};

class SyclAllRoutes : public ::testing::TestWithParam<Combo> {};

TEST_P(SyclAllRoutes, QueueConstructs) {
  const queue q(GetParam().vendor, GetParam().impl);
  EXPECT_EQ(q.vendor(), GetParam().vendor);
  EXPECT_EQ(q.implementation(), GetParam().impl);
}

TEST_P(SyclAllRoutes, UsmRoundTripAndKernel) {
  queue q(GetParam().vendor, GetParam().impl);
  constexpr std::size_t n = 2048;
  double* d = q.malloc_device<double>(n);
  std::vector<double> host(n);
  std::iota(host.begin(), host.end(), 0.0);
  q.memcpy(d, host.data(), n * sizeof(double));
  q.parallel_for(range{n}, [d](id i) { d[i] = d[i] * 2.0 + 1.0; });
  std::vector<double> back(n);
  q.memcpy(back.data(), d, n * sizeof(double));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(back[i], host[i] * 2.0 + 1.0) << i;
  }
  q.free(d);
}

TEST_P(SyclAllRoutes, Reduction) {
  queue q(GetParam().vendor, GetParam().impl);
  constexpr std::size_t n = 10001;
  double* d = q.malloc_device<double>(n);
  std::vector<double> host(n, 1.0);
  q.memcpy(d, host.data(), n * sizeof(double));
  const double sum = q.reduce(
      range{n}, 0.0, gpusim::KernelCosts{},
      [d](std::size_t i) { return d[i]; },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(n));
  q.free(d);
}

INSTANTIATE_TEST_SUITE_P(
    Figure1SyclColumn, SyclAllRoutes,
    ::testing::Values(Combo{Vendor::Intel, Implementation::DPCpp},
                      Combo{Vendor::NVIDIA, Implementation::DPCpp},
                      Combo{Vendor::AMD, Implementation::DPCpp},
                      Combo{Vendor::Intel, Implementation::OpenSYCL},
                      Combo{Vendor::NVIDIA, Implementation::OpenSYCL},
                      Combo{Vendor::AMD, Implementation::OpenSYCL}),
    [](const ::testing::TestParamInfo<Combo>& info) {
      return std::string(to_string(info.param.vendor)) + "_" +
             (info.param.impl == Implementation::DPCpp ? "DPCpp"
                                                       : "OpenSYCL");
    });

TEST(Syclx, ComputeCppIsRetiredEverywhere) {
  for (const Vendor v : kAllVendors) {
    EXPECT_THROW((void)queue(v, Implementation::ComputeCpp),
                 UnsupportedCombination)
        << to_string(v);
  }
}

TEST(Syclx, DpcppIsNativeOnIntelOnly) {
  const queue intel(Vendor::Intel, Implementation::DPCpp);
  EXPECT_DOUBLE_EQ(intel.backend_profile().bandwidth_efficiency, 1.0);
  const queue nvidia(Vendor::NVIDIA, Implementation::DPCpp);
  EXPECT_LT(nvidia.backend_profile().bandwidth_efficiency, 1.0);
  const queue amd(Vendor::AMD, Implementation::DPCpp);
  EXPECT_LT(amd.backend_profile().bandwidth_efficiency, 1.0);
}

TEST(Syclx, UsmMemcpyInfersDirections) {
  queue q(Vendor::Intel, Implementation::DPCpp);
  constexpr std::size_t n = 64;
  int* a = q.malloc_device<int>(n);
  int* b = q.malloc_device<int>(n);
  std::vector<int> host(n, 7);
  q.memcpy(a, host.data(), n * sizeof(int));     // H2D
  q.memcpy(b, a, n * sizeof(int));               // D2D
  std::vector<int> back(n, 0);
  q.memcpy(back.data(), b, n * sizeof(int));     // D2H
  EXPECT_EQ(back, host);
  std::vector<int> host2(n, 0);
  q.memcpy(host2.data(), host.data(), n * sizeof(int));  // H2H
  EXPECT_EQ(host2, host);
  q.free(a);
  q.free(b);
}

TEST(Syclx, EventsReportSimulatedDurations) {
  queue q(Vendor::Intel, Implementation::DPCpp);
  gpusim::KernelCosts costs;
  costs.bytes_read = 1e8;
  const event e = q.parallel_for(range{1024}, costs, [](id) {});
  EXPECT_GT(e.duration_us(), 0.0);
  EXPECT_GT(q.simulated_time_us(), 0.0);
}

TEST(Syclx, ReduceHandlesEmptyAndSingleElementRanges) {
  queue q(Vendor::Intel, Implementation::DPCpp);
  double* d = q.malloc_device<double>(1);
  const double v = 42.0;
  q.memcpy(d, &v, sizeof(double));
  EXPECT_DOUBLE_EQ(q.reduce(
                       range{0}, 0.0, gpusim::KernelCosts{},
                       [d](std::size_t i) { return d[i]; },
                       [](double a, double b) { return a + b; }),
                   0.0);
  EXPECT_DOUBLE_EQ(q.reduce(
                       range{1}, 0.0, gpusim::KernelCosts{},
                       [d](std::size_t i) { return d[i]; },
                       [](double a, double b) { return a + b; }),
                   42.0);
  q.free(d);
}

TEST(Syclx, MaxReduction) {
  queue q(Vendor::AMD, Implementation::OpenSYCL);
  constexpr std::size_t n = 5000;
  std::vector<double> host(n);
  mcmm::testing::rng r(0x57c1u);
  for (std::size_t i = 0; i < n; ++i) {
    host[i] = static_cast<double>(r.below(1000));  // all below the max
  }
  host[1234] = 5000.0;
  double* d = q.malloc_device<double>(n);
  q.memcpy(d, host.data(), n * sizeof(double));
  const double mx = q.reduce(
      range{n}, -1e300, gpusim::KernelCosts{},
      [d](std::size_t i) { return d[i]; },
      [](double a, double b) { return a > b ? a : b; });
  EXPECT_DOUBLE_EQ(mx, 5000.0);
  q.free(d);
}

TEST(Syclx, ImplementationNames) {
  EXPECT_EQ(to_string(Implementation::DPCpp), "DPC++");
  EXPECT_EQ(to_string(Implementation::OpenSYCL), "Open SYCL");
  EXPECT_EQ(to_string(Implementation::ComputeCpp), "ComputeCpp");
}

}  // namespace
}  // namespace mcmm::syclx
