// Tests of the extension surfaces: Kokkos MDRange, the omp_target_alloc
// routine family, and the additional pSTL algorithms.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "models/kokkosx/kokkosx.hpp"
#include "models/ompx/ompx.hpp"
#include "models/stdparx/stdparx.hpp"
#include "support/rng.hpp"

namespace mcmm {
namespace {

// ------------------------------------------------------- Kokkos MDRange --

TEST(KokkosMDRange, CoversRectangularSpace) {
  kokkosx::Execution exec(kokkosx::ExecSpace::Cuda, Vendor::NVIDIA);
  constexpr std::size_t rows = 37, cols = 21;
  kokkosx::View<int> grid(exec, "grid", rows * cols);
  std::vector<int> host(rows * cols, 0);
  kokkosx::deep_copy_to_device(grid, host.data());
  kokkosx::parallel_for(
      exec, kokkosx::MDRangePolicy2D{0, rows, 0, cols},
      gpusim::KernelCosts{},
      [grid, cols](std::size_t i, std::size_t j) {
        grid(i * cols + j) += 1;
      });
  kokkosx::deep_copy_to_host(host.data(), grid);
  for (const int v : host) ASSERT_EQ(v, 1);
}

TEST(KokkosMDRange, OffsetsRespected) {
  kokkosx::Execution exec(kokkosx::ExecSpace::HIP, Vendor::AMD);
  constexpr std::size_t dim = 10;
  kokkosx::View<int> grid(exec, "grid", dim * dim);
  std::vector<int> host(dim * dim, 0);
  kokkosx::deep_copy_to_device(grid, host.data());
  kokkosx::parallel_for(
      exec, kokkosx::MDRangePolicy2D{2, 5, 3, 7}, gpusim::KernelCosts{},
      [grid](std::size_t i, std::size_t j) { grid(i * dim + j) = 1; });
  kokkosx::deep_copy_to_host(host.data(), grid);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      const bool inside = i >= 2 && i < 5 && j >= 3 && j < 7;
      EXPECT_EQ(host[i * dim + j], inside ? 1 : 0) << i << "," << j;
    }
  }
}

TEST(KokkosMDRange, Reduce2D) {
  kokkosx::Execution exec(kokkosx::ExecSpace::SYCL, Vendor::Intel);
  constexpr std::size_t rows = 16, cols = 16;
  kokkosx::View<double> m(exec, "m", rows * cols);
  std::vector<double> host(rows * cols, 0.5);
  kokkosx::deep_copy_to_device(m, host.data());
  double sum = 0.0;
  kokkosx::parallel_reduce(
      exec, kokkosx::MDRangePolicy2D{0, rows, 0, cols},
      gpusim::KernelCosts{},
      [m, cols](std::size_t i, std::size_t j, double& update) {
        update += m(i * cols + j);
      },
      sum);
  EXPECT_DOUBLE_EQ(sum, 0.5 * rows * cols);
}

// ------------------------------------------------ omp_target_alloc family --

TEST(OmpTargetRoutines, AllocCopyFree) {
  ompx::TargetDevice dev(Vendor::AMD, ompx::Compiler::AOMP);
  void* d = ompx::omp_target_alloc(dev, 256 * sizeof(double));
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(ompx::omp_target_is_present(dev, d));

  std::vector<double> host(256, 3.25);
  EXPECT_EQ(ompx::omp_target_memcpy(dev, d, host.data(),
                                    256 * sizeof(double), true, false),
            0);
  std::vector<double> back(256, 0.0);
  EXPECT_EQ(ompx::omp_target_memcpy(dev, back.data(), d,
                                    256 * sizeof(double), false, true),
            0);
  EXPECT_EQ(back, host);
  ompx::omp_target_free(dev, d);
  EXPECT_FALSE(ompx::omp_target_is_present(dev, d));
}

TEST(OmpTargetRoutines, DeviceToDeviceCopy) {
  ompx::TargetDevice dev(Vendor::Intel, ompx::Compiler::ICPX);
  void* a = ompx::omp_target_alloc(dev, 64);
  void* b = ompx::omp_target_alloc(dev, 64);
  std::vector<char> host(64, 'x');
  ASSERT_EQ(ompx::omp_target_memcpy(dev, a, host.data(), 64, true, false),
            0);
  ASSERT_EQ(ompx::omp_target_memcpy(dev, b, a, 64, true, true), 0);
  std::vector<char> back(64, 0);
  ASSERT_EQ(ompx::omp_target_memcpy(dev, back.data(), b, 64, false, true),
            0);
  EXPECT_EQ(back, host);
  ompx::omp_target_free(dev, a);
  ompx::omp_target_free(dev, b);
}

TEST(OmpTargetRoutines, AllocFailureReturnsNull) {
  ompx::TargetDevice dev(Vendor::NVIDIA, ompx::Compiler::NVHPC);
  EXPECT_EQ(ompx::omp_target_alloc(
                dev, std::size_t{1} << 60),  // absurd request
            nullptr);
}

TEST(OmpTargetRoutines, BadMemcpyReturnsError) {
  ompx::TargetDevice dev(Vendor::NVIDIA, ompx::Compiler::NVHPC);
  std::vector<char> host(64);
  // Claiming a host pointer is a device pointer must fail validation.
  EXPECT_NE(ompx::omp_target_memcpy(dev, host.data(), host.data(), 64, true,
                                    false),
            0);
}

TEST(OmpTargetRoutines, FreeNullIsNoop) {
  ompx::TargetDevice dev(Vendor::NVIDIA, ompx::Compiler::NVHPC);
  ompx::omp_target_free(dev, nullptr);  // must not throw
}

// ------------------------------------------------ extra pSTL algorithms --

TEST(StdparExtensions, CountIf) {
  const auto pol = stdparx::par_gpu(Vendor::NVIDIA, stdparx::Runtime::NVHPC);
  constexpr std::size_t n = 10000;
  stdparx::device_vector<int> v(pol, n);
  stdparx::iota(pol, v.begin(), v.end(), 0);
  const std::size_t evens = stdparx::count_if(
      pol, v.begin(), v.end(), [](int x) { return x % 2 == 0; });
  EXPECT_EQ(evens, n / 2);
}

TEST(StdparExtensions, Iota) {
  const auto pol = stdparx::par_gpu(Vendor::Intel, stdparx::Runtime::OneDPL);
  constexpr std::size_t n = 500;
  stdparx::device_vector<long> v(pol, n);
  stdparx::iota(pol, v.begin(), v.end(), 10L);
  std::vector<long> host(n);
  v.download(host.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(host[i], static_cast<long>(10 + i));
  }
}

TEST(StdparExtensions, InclusiveScan) {
  const auto pol = stdparx::par_gpu(Vendor::NVIDIA, stdparx::Runtime::NVHPC);
  constexpr std::size_t n = 1234;
  stdparx::device_vector<long> in(pol, n);
  stdparx::device_vector<long> out(pol, n);
  stdparx::fill(pol, in.begin(), in.end(), 2L);
  stdparx::inclusive_scan(pol, in.begin(), in.end(), out.begin());
  std::vector<long> host(n);
  out.download(host.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(host[i], static_cast<long>(2 * (i + 1))) << i;
  }
}

TEST(StdparExtensions, InclusiveScanNonUniform) {
  const auto pol =
      stdparx::par_gpu(Vendor::AMD, stdparx::Runtime::OpenSYCL);
  constexpr std::size_t n = 777;
  std::vector<long> host(n);
  for (std::size_t i = 0; i < n; ++i) host[i] = static_cast<long>(i % 7);
  stdparx::device_vector<long> in(pol, n);
  stdparx::device_vector<long> out(pol, n);
  in.upload(host.data(), n);
  stdparx::inclusive_scan(pol, in.begin(), in.end(), out.begin());
  std::vector<long> result(n);
  out.download(result.data(), n);
  long acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += host[i];
    ASSERT_EQ(result[i], acc) << i;
  }
}

TEST(StdparExtensions, MinMaxElementValues) {
  const auto pol = stdparx::par_gpu(Vendor::NVIDIA, stdparx::Runtime::NVHPC);
  constexpr std::size_t n = 4096;
  std::vector<double> host(n);
  mcmm::testing::rng r(2654435761u);
  for (std::size_t i = 0; i < n; ++i) {
    host[i] = static_cast<double>(r.below(100000));  // inside (-5, 1e6)
  }
  host[123] = -5.0;
  host[3210] = 1e6;
  stdparx::device_vector<double> v(pol, n);
  v.upload(host.data(), n);
  EXPECT_DOUBLE_EQ(stdparx::min_element_value(pol, v.begin(), v.end()),
                   -5.0);
  EXPECT_DOUBLE_EQ(stdparx::max_element_value(pol, v.begin(), v.end()),
                   1e6);
}

TEST(StdparExtensions, EmptyRangeBehaviour) {
  const auto pol = stdparx::par_gpu(Vendor::NVIDIA, stdparx::Runtime::NVHPC);
  stdparx::device_vector<double> v(pol, 1);
  EXPECT_EQ(stdparx::count_if(pol, v.begin(), v.begin(),
                              [](double) { return true; }),
            0u);
  stdparx::inclusive_scan(pol, v.begin(), v.begin(), v.begin());  // no-op
}

}  // namespace
}  // namespace mcmm
