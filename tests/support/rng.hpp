#pragma once
// Shared deterministic test randomness (ISSUE 8 satellite): one seeded
// generator for every property/differential suite under tests/,
// replacing the hand-rolled xorshift and multiplicative-hash fills that
// used to be duplicated per test file. Seeds are fixed in the tests, so
// failures reproduce; the generator is splitmix64, whose 64-bit output
// is well distributed even for consecutive seeds.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace mcmm::testing {

/// Deterministic seeded generator (splitmix64).
class rng {
 public:
  explicit constexpr rng(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, n); 0 when n == 0.
  constexpr std::size_t below(std::size_t n) noexcept {
    return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
  }

  /// Uniform int in [lo, hi] (inclusive).
  constexpr int int_in(int lo, int hi) noexcept {
    return lo + static_cast<int>(
                    below(static_cast<std::size_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  constexpr double unit() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// Input distributions for the differential batteries (tests/pstlx):
/// the shapes where sort/merge/scan decompositions historically break.
enum class Shape {
  Random,          ///< uniform values over a wide range
  DuplicateHeavy,  ///< many ties (values drawn from a tiny alphabet)
  Presorted,       ///< already ascending
  ReverseSorted,   ///< strictly descending
  AllEqual,        ///< one repeated value
};

inline constexpr Shape kAllShapes[] = {
    Shape::Random, Shape::DuplicateHeavy, Shape::Presorted,
    Shape::ReverseSorted, Shape::AllEqual};

[[nodiscard]] constexpr std::string_view to_string(Shape s) noexcept {
  switch (s) {
    case Shape::Random:
      return "random";
    case Shape::DuplicateHeavy:
      return "duplicate-heavy";
    case Shape::Presorted:
      return "presorted";
    case Shape::ReverseSorted:
      return "reverse-sorted";
    case Shape::AllEqual:
      return "all-equal";
  }
  return "?";
}

/// Builds n values of the given distribution shape from a fixed seed.
/// T must be constructible from int; values stay small enough that
/// integer sums of 2^20 elements do not overflow 64-bit accumulators.
template <typename T>
[[nodiscard]] std::vector<T> make_data(Shape shape, std::size_t n,
                                       std::uint64_t seed) {
  rng r(seed);
  std::vector<T> data(n);
  switch (shape) {
    case Shape::Random:
      for (std::size_t i = 0; i < n; ++i) {
        data[i] = static_cast<T>(r.int_in(-100000, 100000));
      }
      break;
    case Shape::DuplicateHeavy:
      for (std::size_t i = 0; i < n; ++i) {
        data[i] = static_cast<T>(r.int_in(0, 7));
      }
      break;
    case Shape::Presorted:
      for (std::size_t i = 0; i < n; ++i) {
        data[i] = static_cast<T>(static_cast<int>(i % 1000000));
      }
      break;
    case Shape::ReverseSorted:
      for (std::size_t i = 0; i < n; ++i) {
        data[i] = static_cast<T>(static_cast<int>(n - i));
      }
      break;
    case Shape::AllEqual:
      for (std::size_t i = 0; i < n; ++i) {
        data[i] = static_cast<T>(42);
      }
      break;
  }
  return data;
}

}  // namespace mcmm::testing
