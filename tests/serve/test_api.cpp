// Tests for the serve API layer: endpoint routing, the acceptance-criterion
// byte-identity of /v1/matrix?format=txt with the Fig. 1 golden render,
// cell/plan/claims payloads, ETag stability, and conditional GETs.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "data/dataset.hpp"
#include "perfport/perfport.hpp"
#include "render/perf.hpp"
#include "render/render.hpp"
#include "serve/api.hpp"
#include "serve/http.hpp"
#include "serve/json.hpp"
#include "serve/metrics.hpp"

#ifndef MCMM_GOLDEN_DIR
#error "MCMM_GOLDEN_DIR must point at tests/render/golden"
#endif

namespace {

using mcmm::data::paper_matrix;
using mcmm::serve::Api;
using mcmm::serve::etag_for;
using mcmm::serve::json_parse;
using mcmm::serve::JsonValue;
using mcmm::serve::Request;
using mcmm::serve::RequestParser;
using mcmm::serve::Response;

/// Parses a full wire-format request; the API layer only ever sees
/// requests that came through the real parser.
Request make_request(const std::string& wire) {
  RequestParser parser;
  EXPECT_EQ(parser.feed(wire), RequestParser::Status::Complete) << wire;
  return parser.take_request();
}

Request get(const std::string& target, const std::string& headers = "") {
  return make_request("GET " + target + " HTTP/1.1\r\n" + headers + "\r\n");
}

Request post(const std::string& target, const std::string& body) {
  return make_request("POST " + target + " HTTP/1.1\r\nContent-Length: " +
                      std::to_string(body.size()) + "\r\n\r\n" + body);
}

const Api& api() {
  static const Api instance(paper_matrix());
  return instance;
}

TEST(Api, MatrixTxtIsByteIdenticalToTheGoldenFigure) {
  const Response r = api().handle(get("/v1/matrix?format=txt"));
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "text/plain; charset=utf-8");

  std::ifstream in(std::string(MCMM_GOLDEN_DIR) + "/figure1.txt",
                   std::ios::binary);
  std::ostringstream golden;
  golden << in.rdbuf();
  ASSERT_FALSE(golden.str().empty()) << "missing golden figure1.txt";
  EXPECT_EQ(r.body, golden.str());
}

TEST(Api, MatrixFormatsAndAliases) {
  for (const auto& [format, needle] :
       {std::pair<std::string, std::string>{"json", "\"cells\""},
        {"md", "|"},
        {"markdown", "|"},
        {"csv", ","},
        {"html", "<table"},
        {"latex", "\\begin"},
        {"tex", "\\begin"},
        {"yaml", "descriptions"},
        {"txt", "Fortran"},
        {"text", "Fortran"}}) {
    const Response r = api().handle(get("/v1/matrix?format=" + format));
    ASSERT_EQ(r.status, 200) << format;
    EXPECT_NE(r.body.find(needle), std::string::npos) << format;
    EXPECT_FALSE(r.etag.empty()) << format;
  }
  // Default format is JSON.
  const Response def = api().handle(get("/v1/matrix"));
  EXPECT_EQ(def.content_type, "application/json");
  // Unknown format -> 400 with a JSON error body.
  const Response bad = api().handle(get("/v1/matrix?format=pdf"));
  EXPECT_EQ(bad.status, 400);
  EXPECT_TRUE(json_parse(bad.body).has_value());
}

TEST(Api, MatrixJsonCarriesTheWholeDataset) {
  const Response r = api().handle(get("/v1/matrix?format=json"));
  ASSERT_EQ(r.status, 200);
  const auto doc = json_parse(r.body);
  ASSERT_TRUE(doc.has_value()) << "matrix JSON must parse";
  const JsonValue* cells = doc->find("cells");
  ASSERT_NE(cells, nullptr);
  EXPECT_EQ(cells->array.size(), paper_matrix().entries().size());
  const JsonValue* descriptions = doc->find("descriptions");
  ASSERT_NE(descriptions, nullptr);
  EXPECT_EQ(descriptions->array.size(), paper_matrix().descriptions().size());
}

TEST(Api, CellLookupIsCaseInsensitiveAndComplete) {
  const Response r = api().handle(get("/v1/cell/amd/SYCL/c%2B%2B"));
  ASSERT_EQ(r.status, 200);
  const auto doc = json_parse(r.body);
  ASSERT_TRUE(doc.has_value());
  const JsonValue* cell = doc->find("cell");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->find("vendor")->string, "AMD");
  EXPECT_EQ(cell->find("model")->string, "SYCL");
  EXPECT_EQ(cell->find("language")->string, "C++");
  ASSERT_NE(cell->find("ratings"), nullptr);
  ASSERT_NE(doc->find("description"), nullptr);
  ASSERT_NE(doc->find("description")->find("text"), nullptr);

  // Every dataset combination must be addressable: the URL form of each
  // combination (with '+' %-escaped) resolves to its own cached cell.
  for (const auto* entry : paper_matrix().entries()) {
    const auto escape_plus = [](std::string_view s) {
      std::string out;
      for (const char c : s) {
        if (c == '+') out += "%2B"; else out += c;
      }
      return out;
    };
    const std::string target =
        "/v1/cell/" + std::string(mcmm::to_string(entry->combo.vendor)) + "/" +
        escape_plus(mcmm::to_string(entry->combo.model)) + "/" +
        escape_plus(mcmm::to_string(entry->combo.language));
    const Response each = api().handle(get(target));
    EXPECT_EQ(each.status, 200) << target;
  }
}

TEST(Api, CellLookupRejectsUnknownSegments) {
  for (const char* target :
       {"/v1/cell/tesla/sycl/c%2B%2B",     // unknown vendor
        "/v1/cell/amd/fortranoo/fortran",  // unknown model
        "/v1/cell/amd/sycl/rust",          // unknown language
        "/v1/cell/amd/sycl",               // too few segments
        "/v1/cell/amd/sycl/c%2B%2B/x"}) {  // too many segments
    const Response r = api().handle(get(target));
    EXPECT_EQ(r.status, 404) << target;
    EXPECT_TRUE(json_parse(r.body).has_value()) << target;
  }
}

TEST(Api, PlanRanksFortranOnAmd) {
  const Response r = api().handle(post(
      "/v1/plan",
      R"({"language": "fortran", "must_run_on": ["amd"]})"));
  ASSERT_EQ(r.status, 200) << r.body;
  const auto doc = json_parse(r.body);
  ASSERT_TRUE(doc.has_value());
  const JsonValue* routes = doc->find("routes");
  ASSERT_NE(routes, nullptr);
  ASSERT_FALSE(routes->array.empty());
  // Ranked: scores (higher is better) come back in non-increasing order.
  double previous = 1e18;
  for (const JsonValue& route : routes->array) {
    const JsonValue* rank = route.find("rank");
    ASSERT_NE(rank, nullptr);
    EXPECT_LE(rank->number, previous);
    previous = rank->number;
    ASSERT_NE(route.find("model"), nullptr);
    ASSERT_NE(route.find("platforms"), nullptr);
    ASSERT_FALSE(route.find("platforms")->array.empty());
  }
  // The paper's Fortran-on-AMD story leads with OpenMP offload.
  EXPECT_EQ(routes->array[0].find("model")->string, "OpenMP");
}

TEST(Api, PlanRejectsBadBodies) {
  for (const char* body : {
           "",                                  // empty
           "not json",                          // unparseable
           "[]",                                // not an object
           R"({"must_run_on": ["amd"]})",       // missing language
           R"({"language": "rust"})",           // unknown language
           R"({"language": "fortran", "x":1})"  // unknown key
       }) {
    const Response r = api().handle(post("/v1/plan", body));
    EXPECT_EQ(r.status, 400) << body;
    EXPECT_TRUE(json_parse(r.body).has_value()) << body;
  }
}

TEST(Api, MethodGuards) {
  const Response r = api().handle(get("/v1/plan"));
  EXPECT_EQ(r.status, 405);
  bool saw_allow = false;
  for (const auto& [name, value] : r.extra_headers) {
    if (name == "Allow") {
      saw_allow = true;
      EXPECT_EQ(value, "POST");
    }
  }
  EXPECT_TRUE(saw_allow);

  const Response m = api().handle(post("/v1/matrix", "{}"));
  EXPECT_EQ(m.status, 405);
}

TEST(Api, ClaimsAllHold) {
  const Response r = api().handle(get("/v1/claims"));
  ASSERT_EQ(r.status, 200);
  const auto doc = json_parse(r.body);
  ASSERT_TRUE(doc.has_value());
  const JsonValue* claims = doc->find("claims");
  ASSERT_NE(claims, nullptr);
  ASSERT_FALSE(claims->array.empty());
  for (const JsonValue& c : claims->array) {
    const JsonValue* holds = c.find("holds");
    ASSERT_NE(holds, nullptr);
    EXPECT_TRUE(holds->boolean) << c.find("statement")->string;
  }
}

TEST(Api, UnknownPathsAre404) {
  for (const char* target :
       {"/v2/matrix", "/v1/", "/v1/unknown", "/favicon.ico"}) {
    EXPECT_EQ(api().handle(get(target)).status, 404) << target;
  }
  // The index is served at / and /v1.
  EXPECT_EQ(api().handle(get("/")).status, 200);
  EXPECT_EQ(api().handle(get("/v1")).status, 200);
  EXPECT_EQ(api().handle(get("/healthz")).status, 200);
}

TEST(Api, EtagsAreStrongStableAndHonoured) {
  // Deterministic across Api instances (same dataset -> same tag).
  const Api other(paper_matrix());
  const Response a = api().handle(get("/v1/matrix?format=txt"));
  const Response b = other.handle(get("/v1/matrix?format=txt"));
  ASSERT_FALSE(a.etag.empty());
  EXPECT_EQ(a.etag, b.etag);
  EXPECT_EQ(a.etag.front(), '"');
  EXPECT_EQ(a.etag.back(), '"');
  EXPECT_EQ(a.etag, etag_for(a.body));
  // Different bodies get different tags.
  const Response csv = api().handle(get("/v1/matrix?format=csv"));
  EXPECT_NE(a.etag, csv.etag);

  // If-None-Match with the current tag -> bodyless 304 carrying the tag.
  const Response not_modified = api().handle(
      get("/v1/matrix?format=txt", "If-None-Match: " + a.etag + "\r\n"));
  EXPECT_EQ(not_modified.status, 304);
  EXPECT_TRUE(not_modified.body.empty());
  EXPECT_EQ(not_modified.etag, a.etag);

  // A list of candidates and the * wildcard both match.
  EXPECT_EQ(api()
                .handle(get("/v1/matrix?format=txt",
                            "If-None-Match: \"zzz\", " + a.etag + "\r\n"))
                .status,
            304);
  EXPECT_EQ(api()
                .handle(get("/v1/matrix?format=txt", "If-None-Match: *\r\n"))
                .status,
            304);
  // A stale tag still gets the full body.
  EXPECT_EQ(api()
                .handle(get("/v1/matrix?format=txt",
                            "If-None-Match: \"deadbeef\"\r\n"))
                .status,
            200);
}

/// Small two-kernel campaign backing the /v1/perf tests; renders are
/// cached by the Api constructor, so the run happens once.
const mcmm::perfport::PerfReport& perf_report() {
  static const mcmm::perfport::PerfReport report = [] {
    mcmm::perfport::CampaignConfig cfg;
    cfg.sizes = {4096};
    cfg.reps = 1;
    cfg.kernels = {mcmm::perfport::PerfKernel::Triad,
                   mcmm::perfport::PerfKernel::Dot};
    return mcmm::perfport::run_campaign(cfg);
  }();
  return report;
}

const Api& perf_api() {
  static const Api instance(paper_matrix(), nullptr, nullptr, &perf_report());
  return instance;
}

TEST(ApiPerf, DisabledCampaignIs404WithAHint) {
  // The default api() was built without a report; /v1/perf must say how
  // to turn it on rather than pretend the path does not exist.
  const Response r = api().handle(get("/v1/perf"));
  EXPECT_EQ(r.status, 404);
  EXPECT_NE(r.body.find("--perf"), std::string::npos) << r.body;
  // The index still advertises the endpoint either way.
  EXPECT_NE(api().handle(get("/")).body.find("/v1/perf"), std::string::npos);
}

TEST(ApiPerf, FormatsAndAliases) {
  const std::pair<const char*, const char*> cases[] = {
      {"/v1/perf", "application/json"},
      {"/v1/perf?format=json", "application/json"},
      {"/v1/perf?format=txt", "text/plain; charset=utf-8"},
      {"/v1/perf?format=text", "text/plain; charset=utf-8"},
      {"/v1/perf?format=md", "text/markdown; charset=utf-8"},
      {"/v1/perf?format=markdown", "text/markdown; charset=utf-8"},
      {"/v1/perf?format=csv", "text/csv; charset=utf-8"},
      {"/v1/perf?format=html", "text/html; charset=utf-8"},
      {"/v1/perf?format=latex", "application/x-tex"},
      {"/v1/perf?format=tex", "application/x-tex"},
      {"/v1/perf?format=yaml", "application/yaml"},
  };
  for (const auto& [target, content_type] : cases) {
    const Response r = perf_api().handle(get(target));
    ASSERT_EQ(r.status, 200) << target;
    EXPECT_EQ(r.content_type, content_type) << target;
    EXPECT_FALSE(r.body.empty()) << target;
  }
  EXPECT_NE(perf_api().handle(get("/v1/perf")).body.find("mcmm-perfport-v1"),
            std::string::npos);
  EXPECT_EQ(perf_api().handle(get("/v1/perf?format=ascii")).status, 400);
  EXPECT_EQ(perf_api().handle(post("/v1/perf", "{}")).status, 405);
}

TEST(ApiPerf, TxtIsByteIdenticalToTheLibraryRender) {
  // The served bytes are the cached render of the exact report the server
  // was constructed with — the same identity CI asserts against the
  // committed Figure 2 golden.
  const Response r = perf_api().handle(get("/v1/perf?format=txt"));
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(r.body, mcmm::render::figure2_text(perf_report()));
}

TEST(ApiPerf, EtagsAreStrongAndHonoured) {
  const Response r = perf_api().handle(get("/v1/perf?format=txt"));
  ASSERT_EQ(r.status, 200);
  ASSERT_FALSE(r.etag.empty());
  EXPECT_EQ(r.etag, etag_for(r.body));
  const Response not_modified = perf_api().handle(
      get("/v1/perf?format=txt", "If-None-Match: " + r.etag + "\r\n"));
  EXPECT_EQ(not_modified.status, 304);
  EXPECT_TRUE(not_modified.body.empty());
  EXPECT_EQ(not_modified.etag, r.etag);
  EXPECT_EQ(perf_api()
                .handle(get("/v1/perf?format=txt",
                            "If-None-Match: \"deadbeef\"\r\n"))
                .status,
            200);
}

TEST(Metrics, PerEndpointCounterNormalizesPaths) {
  mcmm::serve::Metrics metrics;
  metrics.record_endpoint("/v1/matrix");
  metrics.record_endpoint("/v1/perf");
  metrics.record_endpoint("/v1/perf");
  metrics.record_endpoint("/v1/cell/nvidia/cuda/c%2B%2B");
  metrics.record_endpoint("/v1");  // alias of the index
  metrics.record_endpoint("/");
  metrics.record_endpoint("/favicon.ico");  // off-table -> "other"
  const std::string text = metrics.prometheus_text();
  const std::pair<const char*, const char*> expected[] = {
      {"endpoint=\"/v1/matrix\"} 1", "matrix"},
      {"endpoint=\"/v1/perf\"} 2", "perf"},
      {"endpoint=\"/v1/cell\"} 1", "cell subtree collapses to one label"},
      {"endpoint=\"/\"} 2", "/v1 is the same index as /"},
      {"endpoint=\"other\"} 1", "unknown paths are bucketed, not dropped"},
  };
  for (const auto& [needle, why] : expected) {
    EXPECT_NE(text.find(std::string("mcmm_http_requests_by_endpoint_total{") +
                        needle),
              std::string::npos)
        << why << "\n" << text;
  }
  // Zero-count endpoints stay out of the exposition (no label noise).
  EXPECT_EQ(text.find("endpoint=\"/healthz\""), std::string::npos);
}

}  // namespace
