// Loopback integration tests for the serve network layer: concurrent
// keep-alive clients against a real listening socket, wire-level
// conditional GETs, slow-client deadlines (408), pipelining, and graceful
// shutdown draining the worker pool.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "serve/server.hpp"

namespace {

using mcmm::data::paper_matrix;
using mcmm::serve::Server;
using mcmm::serve::ServerConfig;

/// Minimal blocking test client over one loopback connection.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port, int rcvbuf_bytes = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (rcvbuf_bytes > 0) {
      // Must be set before connect() so the shrunken window is what the
      // handshake advertises; used to force server-side write stalls.
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof rcvbuf_bytes);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }

  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool connected() const { return connected_; }
  [[nodiscard]] int fd() const { return fd_; }

  bool send_raw(const std::string& wire) {
    std::size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  struct Reply {
    int status{-1};
    std::string headers;
    std::string body;
    [[nodiscard]] std::string header(const std::string& name) const {
      const std::string needle = "\r\n" + name + ": ";
      const std::size_t pos = headers.find(needle);
      if (pos == std::string::npos) return {};
      const std::size_t start = pos + needle.size();
      return headers.substr(start, headers.find('\r', start) - start);
    }
  };

  /// Reads exactly one response off the connection (keep-alive safe).
  Reply read_reply() {
    Reply reply;
    std::size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!fill()) return reply;
    }
    reply.headers = buffer_.substr(0, header_end + 4);
    buffer_.erase(0, header_end + 4);
    if (reply.headers.rfind("HTTP/1.1 ", 0) != 0) return reply;
    reply.status = std::atoi(reply.headers.c_str() + 9);
    std::size_t content_length = 0;
    const std::string cl = reply.header("Content-Length");
    if (!cl.empty()) content_length = std::strtoul(cl.c_str(), nullptr, 10);
    while (buffer_.size() < content_length) {
      if (!fill()) return reply;
    }
    reply.body = buffer_.substr(0, content_length);
    buffer_.erase(0, content_length);
    return reply;
  }

  Reply get(const std::string& target, const std::string& headers = "") {
    if (!send_raw("GET " + target + " HTTP/1.1\r\nHost: t\r\n" + headers +
                  "\r\n")) {
      return {};
    }
    return read_reply();
  }

  /// True when the peer closed the connection (clean EOF).
  bool at_eof() {
    if (!buffer_.empty()) return false;
    return !fill();
  }

 private:
  bool fill() {
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_{-1};
  bool connected_{false};
  std::string buffer_;
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerConfig config;
    config.port = 0;  // ephemeral
    config.threads = 4;
    server_ = std::make_unique<Server>(paper_matrix(), config);
    server_->start();
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->shutdown();
      server_->join();
    }
  }

  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, ServesKeepAliveSequencesOnOneConnection) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  for (const char* target : {"/healthz", "/v1/claims", "/v1/matrix?format=txt",
                             "/healthz"}) {
    const TestClient::Reply reply = client.get(target);
    EXPECT_EQ(reply.status, 200) << target;
    EXPECT_FALSE(reply.body.empty()) << target;
    EXPECT_EQ(reply.header("Connection"), "keep-alive") << target;
  }
}

TEST_F(ServerTest, WireLevelConditionalGetGets304) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const TestClient::Reply first = client.get("/v1/matrix?format=txt");
  ASSERT_EQ(first.status, 200);
  const std::string etag = first.header("ETag");
  ASSERT_FALSE(etag.empty());
  const TestClient::Reply second =
      client.get("/v1/matrix?format=txt", "If-None-Match: " + etag + "\r\n");
  EXPECT_EQ(second.status, 304);
  EXPECT_TRUE(second.body.empty());
  EXPECT_EQ(second.header("ETag"), etag);
  EXPECT_TRUE(second.header("Content-Length").empty());
  // The connection survives the 304 (still keep-alive).
  EXPECT_EQ(client.get("/healthz").status, 200);
}

TEST_F(ServerTest, ConcurrentClientsAllSucceed) {
  constexpr int kClients = 8;
  constexpr int kRequestsEach = 50;
  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &failures] {
      TestClient client(server_->port());
      if (!client.connected()) {
        failures[c] = kRequestsEach;
        return;
      }
      const char* target = (c % 2 == 0) ? "/v1/matrix?format=json"
                                        : "/v1/cell/amd/sycl/c%2B%2B";
      for (int i = 0; i < kRequestsEach; ++i) {
        if (client.get(target).status != 200) ++failures[c];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
  EXPECT_GE(server_->metrics().requests_total(),
            static_cast<std::uint64_t>(kClients * kRequestsEach));
}

TEST_F(ServerTest, PipelinedRequestsAreAnsweredInOrder) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_raw("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                              "GET /v1/claims HTTP/1.1\r\nHost: t\r\n\r\n"));
  const TestClient::Reply first = client.read_reply();
  const TestClient::Reply second = client.read_reply();
  EXPECT_EQ(first.status, 200);
  EXPECT_NE(first.body.find("\"status\""), std::string::npos);
  EXPECT_EQ(second.status, 200);
  EXPECT_NE(second.body.find("\"claims\""), std::string::npos);
}

TEST_F(ServerTest, MalformedRequestGets400AndClose) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_raw("BOGUS\r\n\r\n"));
  const TestClient::Reply reply = client.read_reply();
  EXPECT_EQ(reply.status, 400);
  EXPECT_EQ(reply.header("Connection"), "close");
  EXPECT_TRUE(client.at_eof());
}

TEST_F(ServerTest, MetricsReflectTraffic) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_EQ(client.get("/healthz").status, 200);
  const TestClient::Reply metrics = client.get("/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("mcmm_http_requests_total{code=\"200\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("mcmm_http_connections_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("mcmm_http_request_duration_seconds_bucket"),
            std::string::npos);
  // Per-endpoint family: the /healthz hit above must show up labelled.
  EXPECT_NE(metrics.body.find("mcmm_http_requests_by_endpoint_total{"
                              "endpoint=\"/healthz\"}"),
            std::string::npos)
      << metrics.body;
}

TEST_F(ServerTest, RequestIdIsMintedEchoedAndSanitized) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  const TestClient::Reply minted = client.get("/healthz");
  ASSERT_EQ(minted.status, 200);
  const std::string id = minted.header("X-Request-Id");
  ASSERT_EQ(id.size(), 16u) << id;
  for (const char c : id) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)) != 0) << id;
  }

  const TestClient::Reply echoed =
      client.get("/healthz", "X-Request-Id: client-chose-this-1\r\n");
  EXPECT_EQ(echoed.header("X-Request-Id"), "client-chose-this-1");

  // A header-smuggling or non-visible-ASCII id is replaced, not echoed.
  const TestClient::Reply replaced =
      client.get("/healthz", "X-Request-Id: bad id\r\n");
  EXPECT_EQ(replaced.status, 200);
  EXPECT_NE(replaced.header("X-Request-Id"), "bad id");
  EXPECT_EQ(replaced.header("X-Request-Id").size(), 16u);
}

TEST_F(ServerTest, HealthzReportsLoadPidAndDrainState) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const TestClient::Reply reply = client.get("/healthz");
  ASSERT_EQ(reply.status, 200);
  EXPECT_NE(reply.body.find("\"status\":\"ok\""), std::string::npos)
      << reply.body;
  EXPECT_NE(reply.body.find("\"pid\":"), std::string::npos) << reply.body;
  EXPECT_NE(reply.body.find("\"draining\":false"), std::string::npos)
      << reply.body;
  // The health request does not count itself in the reported gauge.
  EXPECT_NE(reply.body.find("\"in_flight\":0"), std::string::npos)
      << reply.body;
}

TEST(ServerOverload, ShedsWith503AndRetryAfterAtTheCap) {
  ServerConfig config;
  config.port = 0;
  config.threads = 2;
  config.max_in_flight = 1;
  Server server(paper_matrix(), config);
  server.start();

  {
    // Under the cap: normal service.
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.get("/v1/claims").status, 200);
  }

  // Pin the in-flight gauge so the next request exceeds the cap.
  server.metrics().begin_request();
  {
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    const TestClient::Reply reply = client.get("/v1/claims");
    EXPECT_EQ(reply.status, 503);
    EXPECT_EQ(reply.header("Retry-After"), "1");
  }
  server.metrics().end_request();
  {
    // Back under the cap: service resumes.
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.get("/v1/claims").status, 200);
  }

  server.shutdown();
  server.join();
}

TEST(ServerTimeouts, SlowMidRequestClientGets408) {
  ServerConfig config;
  config.port = 0;
  config.threads = 2;
  config.request_timeout_ms = 200;
  config.idle_timeout_ms = 200;
  Server server(paper_matrix(), config);
  server.start();
  {
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    // Half a request, then silence: the read deadline must fire.
    ASSERT_TRUE(client.send_raw("GET /healthz HTT"));
    const TestClient::Reply reply = client.read_reply();
    EXPECT_EQ(reply.status, 408);
    EXPECT_TRUE(client.at_eof());
  }
  {
    // An idle keep-alive connection is closed silently (no 408).
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.get("/healthz").status, 200);
    EXPECT_TRUE(client.at_eof());  // idle deadline closes it with no bytes
  }
  server.shutdown();
  server.join();
}

TEST(ServerTransport, SlowLorisFleetDoesNotStarveWorkers) {
  // Classic slow-loris: more stalled half-request connections than the
  // server has workers. On a thread-per-connection design this parks the
  // whole pool; on the readiness loop a connection that never becomes
  // readable costs nothing, so a healthy client must still be served
  // promptly — and the wheel must eventually evict every loris.
  ServerConfig config;
  config.port = 0;
  config.threads = 2;
  config.request_timeout_ms = 300;
  config.idle_timeout_ms = 300;
  Server server(paper_matrix(), config);
  server.start();

  constexpr int kLoris = 8;  // 4x the worker count
  std::vector<std::unique_ptr<TestClient>> loris;
  for (int i = 0; i < kLoris; ++i) {
    loris.push_back(std::make_unique<TestClient>(server.port()));
    ASSERT_TRUE(loris.back()->connected());
    ASSERT_TRUE(loris.back()->send_raw("GET /healthz HT"));  // ...and stall
  }

  // Every worker would be parked now if reads were blocking. The healthy
  // client must get through far sooner than the loris deadline.
  const auto t0 = std::chrono::steady_clock::now();
  TestClient healthy(server.port());
  ASSERT_TRUE(healthy.connected());
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(healthy.get("/v1/claims").status, 200) << "request " << i;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 250) << "healthy client was starved";

  // The wheel fires each loris deadline: 408 (mid-request) then close.
  for (auto& client : loris) {
    const TestClient::Reply reply = client->read_reply();
    EXPECT_EQ(reply.status, 408);
    EXPECT_TRUE(client->at_eof());
  }
  EXPECT_GE(server.loop_counters().timer_evictions_total.load(),
            static_cast<std::uint64_t>(kLoris));
  server.shutdown();
  server.join();
}

TEST(ServerTransport, OneBytePartialWritesStillParse) {
  // A pathological client dribbling its request one byte per send() must
  // still be answered: the parser accumulates across reads and the timer
  // re-arms on progress.
  ServerConfig config;
  config.port = 0;
  config.threads = 2;
  config.request_timeout_ms = 2000;
  Server server(paper_matrix(), config);
  server.start();
  {
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    const std::string wire = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    for (const char c : wire) {
      ASSERT_TRUE(client.send_raw(std::string(1, c)));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(client.read_reply().status, 200);
  }
  server.shutdown();
  server.join();
}

TEST(ServerTransport, MidResponseStallIsEvictedByTheWheel) {
  // A client that requests large bodies and never reads them: the server's
  // partial write re-arms for EPOLLOUT, the stall outlives the request
  // deadline, and the wheel must evict the connection instead of holding
  // its buffered responses forever.
  ServerConfig config;
  config.port = 0;
  config.threads = 2;
  config.request_timeout_ms = 300;
  config.idle_timeout_ms = 300;
  Server server(paper_matrix(), config);
  server.start();
  {
    TestClient client(server.port(), /*rcvbuf_bytes=*/4096);
    ASSERT_TRUE(client.connected());
    std::string pipeline;
    for (int i = 0; i < 400; ++i) {
      pipeline += "GET /v1/matrix?format=json HTTP/1.1\r\nHost: t\r\n\r\n";
    }
    ASSERT_TRUE(client.send_raw(pipeline));
    // Read nothing. The server must give up on us within a few deadlines.
    const auto t0 = std::chrono::steady_clock::now();
    for (;;) {
      ASSERT_LT(std::chrono::steady_clock::now() - t0,
                std::chrono::seconds(5))
          << "stalled connection was never evicted";
      pollfd pfd{};
      pfd.fd = client.fd();
      pfd.events = POLLERR | POLLHUP;
      if (::poll(&pfd, 1, 100) > 0 &&
          (pfd.revents & (POLLERR | POLLHUP)) != 0) {
        break;  // evicted: reset or closed with unread data
      }
    }
    EXPECT_GE(server.loop_counters().epollout_rearms_total.load(), 1u);
    EXPECT_GE(server.loop_counters().timer_evictions_total.load(), 1u);
  }
  // The server survives the abuse and keeps serving.
  TestClient after(server.port());
  ASSERT_TRUE(after.connected());
  EXPECT_EQ(after.get("/healthz").status, 200);
  server.shutdown();
  server.join();
}

TEST(ServerTransport, MetricsExposeEventLoopFamilies) {
  ServerConfig config;
  config.port = 0;
  config.threads = 2;
  Server server(paper_matrix(), config);
  server.start();
  {
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_EQ(client.get("/healthz").status, 200);
    const TestClient::Reply metrics = client.get("/metrics");
    ASSERT_EQ(metrics.status, 200);
    for (const char* family :
         {"mcmm_eventloop_open_connections", "mcmm_eventloop_wakeups_total",
          "mcmm_eventloop_accepts_total", "mcmm_eventloop_dispatches_total",
          "mcmm_eventloop_epollout_rearms_total",
          "mcmm_eventloop_timer_evictions_total"}) {
      EXPECT_NE(metrics.body.find(family), std::string::npos) << family;
    }
  }
  server.shutdown();
  server.join();
}

TEST(ServerShutdown, DrainsCleanlyUnderLoad) {
  ServerConfig config;
  config.port = 0;
  config.threads = 4;
  Server server(paper_matrix(), config);
  server.start();

  std::vector<std::thread> threads;
  std::vector<int> served(4, 0);
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&server, &served, c] {
      TestClient client(server.port());
      if (!client.connected()) return;
      // Keep issuing requests until the server closes the connection.
      for (int i = 0; i < 10000; ++i) {
        const TestClient::Reply reply = client.get("/v1/claims");
        if (reply.status != 200) break;
        ++served[c];
      }
    });
  }
  // Let the clients get going, then pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.shutdown();
  server.join();  // must return: no hung worker, no leaked connection
  for (std::thread& t : threads) t.join();

  int total = 0;
  for (const int n : served) total += n;
  EXPECT_GT(total, 0);  // traffic flowed before the drain
  EXPECT_GE(server.metrics().requests_total(),
            static_cast<std::uint64_t>(total));
  // A new connection after shutdown must be refused.
  TestClient late(server.port());
  EXPECT_TRUE(!late.connected() || late.get("/healthz").status != 200);
}

}  // namespace
