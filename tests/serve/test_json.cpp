// Tests for the serve JSON layer: escaping (every dataset description must
// survive a round trip), the strict parser, and its adversarial inputs.
#include <gtest/gtest.h>

#include <string>

#include "data/dataset.hpp"
#include "serve/json.hpp"

namespace {

using mcmm::serve::json_escape;
using mcmm::serve::json_parse;
using mcmm::serve::json_quote;
using mcmm::serve::JsonValue;

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("a\nb\tc"), "\"a\\nb\\tc\"");
  EXPECT_EQ(json_quote(std::string("\x01", 1)), "\"\\u0001\"");
  // Multi-byte UTF-8 (the matrix category symbols) passes through verbatim.
  EXPECT_EQ(json_quote("(\u2713)"), "\"(\u2713)\"");
}

TEST(JsonEscape, AppendsWithoutClobbering) {
  std::string out = "prefix:";
  json_escape(out, "x\"y");
  EXPECT_EQ(out, "prefix:x\\\"y");
}

TEST(JsonRoundTrip, EveryDatasetDescriptionSurvives) {
  // Several Fig. 1 footnotes contain quotes and parentheses; whatever the
  // dataset holds must come back byte-identical through quote -> parse.
  const auto& matrix = mcmm::data::paper_matrix();
  ASSERT_FALSE(matrix.descriptions().empty());
  for (const auto* d : matrix.descriptions()) {
    const std::string wire = json_quote(d->text);
    std::string error;
    const auto value = json_parse(wire, &error);
    ASSERT_TRUE(value.has_value()) << error << " for: " << d->text;
    ASSERT_EQ(value->kind, JsonValue::Kind::String);
    EXPECT_EQ(value->string, d->text);
  }
}

TEST(JsonParse, ParsesScalarsArraysAndObjects) {
  auto v = json_parse(R"({"a": [1, 2.5, -3e2], "b": {"c": true,
                          "d": null}, "e": "x"})");
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->kind, JsonValue::Kind::Object);
  const JsonValue* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
  const JsonValue* b = v->find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_NE(b->find("c"), nullptr);
  EXPECT_TRUE(b->find("c")->boolean);
  EXPECT_EQ(b->find("d")->kind, JsonValue::Kind::Null);
  EXPECT_EQ(v->find("e")->string, "x");
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(JsonParse, DecodesEscapesIncludingSurrogatePairs) {
  auto v = json_parse(R"("a\u0041\n\" \ud83d\ude00")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string, "aA\n\" \xF0\x9F\x98\x80");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  for (const char* bad : {
           "",             // empty
           "{",            // unterminated object
           "[1,]",         // trailing comma
           "{\"a\" 1}",    // missing colon
           "nul",          // truncated keyword
           "01",           // leading zero
           "1.",           // bare decimal point
           "\"a",          // unterminated string
           "\"\\q\"",      // bad escape
           "\"\\ud800\"",  // lone surrogate
           "\"\x01\"",     // raw control character in string
           "1 2",          // trailing garbage
           "{\"a\":1}}",   // trailing garbage after object
       }) {
    std::string error;
    EXPECT_FALSE(json_parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonParse, RejectsADepthBomb) {
  std::string bomb;
  for (int i = 0; i < 200; ++i) bomb += '[';
  for (int i = 0; i < 200; ++i) bomb += ']';
  std::string error;
  EXPECT_FALSE(json_parse(bomb, &error).has_value());
  EXPECT_NE(error.find("deep"), std::string::npos);

  // 64 levels is the documented cap; just inside it must still parse.
  std::string ok;
  for (int i = 0; i < 63; ++i) ok += '[';
  for (int i = 0; i < 63; ++i) ok += ']';
  EXPECT_TRUE(json_parse(ok).has_value());
}

}  // namespace
