// Adversarial and property tests for the serve HTTP request parser:
// split reads, pipelining, size caps, smuggling vectors, %-escapes.
#include <gtest/gtest.h>

#include <string>

#include "serve/http.hpp"

namespace {

using mcmm::serve::Limits;
using mcmm::serve::percent_decode;
using mcmm::serve::Request;
using mcmm::serve::RequestParser;
using mcmm::serve::Response;
using mcmm::serve::serialize_response;
using Status = mcmm::serve::RequestParser::Status;

TEST(HttpParser, ParsesASimpleGet) {
  RequestParser p;
  ASSERT_EQ(p.feed("GET /v1/matrix?format=txt HTTP/1.1\r\n"
                   "Host: localhost\r\n\r\n"),
            Status::Complete);
  const Request r = p.take_request();
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.path, "/v1/matrix");
  EXPECT_EQ(r.query_param("format"), "txt");
  EXPECT_EQ(*r.header("host"), "localhost");
  EXPECT_TRUE(r.keep_alive());
}

TEST(HttpParser, OneByteAtATime) {
  const std::string wire =
      "POST /v1/plan HTTP/1.1\r\nContent-Length: 4\r\n"
      "Content-Type: application/json\r\n\r\nnull";
  RequestParser p;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    const Status s = p.feed(wire.substr(i, 1));
    if (i + 1 < wire.size()) {
      ASSERT_EQ(s, Status::NeedMore) << "byte " << i;
      EXPECT_TRUE(p.mid_request());
    } else {
      ASSERT_EQ(s, Status::Complete);
    }
  }
  const Request r = p.take_request();
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.body, "null");
}

TEST(HttpParser, PipelinedRequestsAreKeptApart) {
  RequestParser p;
  ASSERT_EQ(p.feed("GET /healthz HTTP/1.1\r\n\r\n"
                   "GET /v1/claims HTTP/1.1\r\n\r\n"),
            Status::Complete);
  EXPECT_EQ(p.take_request().path, "/healthz");
  p.reset();  // must re-parse the already-buffered second request
  ASSERT_EQ(p.status(), Status::Complete);
  EXPECT_EQ(p.take_request().path, "/v1/claims");
  p.reset();
  EXPECT_EQ(p.status(), Status::NeedMore);
  EXPECT_FALSE(p.mid_request());
}

TEST(HttpParser, ToleratesBareLfAndLeadingBlankLines) {
  RequestParser p;
  ASSERT_EQ(p.feed("\r\n\nGET / HTTP/1.1\nHost: x\n\n"), Status::Complete);
  EXPECT_EQ(p.take_request().path, "/");
}

TEST(HttpParser, RejectsOversizedRequestLine) {
  Limits limits;
  limits.max_request_line = 64;
  RequestParser p(limits);
  const std::string long_target(200, 'a');
  EXPECT_EQ(p.feed("GET /" + long_target + " HTTP/1.1\r\n\r\n"),
            Status::Error);
  EXPECT_EQ(p.error_status(), 414);
}

TEST(HttpParser, RejectsOversizedRequestLineWithoutNewline) {
  // The cap must bite while the line is still arriving, not only at CRLF —
  // otherwise a peer that never sends a newline grows the buffer forever.
  Limits limits;
  limits.max_request_line = 64;
  RequestParser p(limits);
  Status s = Status::NeedMore;
  for (int i = 0; i < 40 && s == Status::NeedMore; ++i) {
    s = p.feed("aaaaaaaaaa");
  }
  ASSERT_EQ(s, Status::Error);
  EXPECT_EQ(p.error_status(), 414);
}

TEST(HttpParser, RejectsOversizedHeaderSection) {
  Limits limits;
  limits.max_header_bytes = 256;
  RequestParser p(limits);
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 16; ++i) {
    wire += "X-Filler-" + std::to_string(i) + ": " + std::string(32, 'x') +
            "\r\n";
  }
  wire += "\r\n";
  EXPECT_EQ(p.feed(wire), Status::Error);
  EXPECT_EQ(p.error_status(), 431);
}

TEST(HttpParser, RejectsTooManyHeaders) {
  Limits limits;
  limits.max_header_count = 4;
  RequestParser p(limits);
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 6; ++i) {
    wire += "H" + std::to_string(i) + ": v\r\n";
  }
  wire += "\r\n";
  EXPECT_EQ(p.feed(wire), Status::Error);
  EXPECT_EQ(p.error_status(), 431);
}

TEST(HttpParser, RejectsOversizedBody) {
  Limits limits;
  limits.max_body = 16;
  RequestParser p(limits);
  EXPECT_EQ(p.feed("POST /v1/plan HTTP/1.1\r\nContent-Length: 17\r\n\r\n"),
            Status::Error);
  EXPECT_EQ(p.error_status(), 413);
}

TEST(HttpParser, RejectsBadVerbsAndTargets) {
  {
    RequestParser p;
    EXPECT_EQ(p.feed("GE T / HTTP/1.1\r\n\r\n"), Status::Error);
    EXPECT_EQ(p.error_status(), 400);
  }
  {
    RequestParser p;
    EXPECT_EQ(p.feed("GET example.com HTTP/1.1\r\n\r\n"), Status::Error);
    EXPECT_EQ(p.error_status(), 400);
  }
  {
    RequestParser p;
    EXPECT_EQ(p.feed("G\x01T / HTTP/1.1\r\n\r\n"), Status::Error);
    EXPECT_EQ(p.error_status(), 400);
  }
  {
    RequestParser p;
    EXPECT_EQ(p.feed("GET / HTTP/2.0\r\n\r\n"), Status::Error);
    EXPECT_EQ(p.error_status(), 505);
  }
}

TEST(HttpParser, RejectsSmugglingShapedHeaders) {
  {
    // Whitespace before the colon (RFC 9112 forbids it: smuggling vector).
    RequestParser p;
    EXPECT_EQ(p.feed("GET / HTTP/1.1\r\nHost : x\r\n\r\n"), Status::Error);
    EXPECT_EQ(p.error_status(), 400);
  }
  {
    RequestParser p;
    EXPECT_EQ(p.feed("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
              Status::Error);
    EXPECT_EQ(p.error_status(), 501);
  }
  {
    RequestParser p;
    EXPECT_EQ(p.feed("POST / HTTP/1.1\r\nContent-Length: 4\r\n"
                     "Content-Length: 5\r\n\r\n"),
              Status::Error);
    EXPECT_EQ(p.error_status(), 400);
  }
  {
    RequestParser p;
    EXPECT_EQ(p.feed("POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"),
              Status::Error);
    EXPECT_EQ(p.error_status(), 400);
  }
}

TEST(HttpParser, DecodesPercentEscapes) {
  RequestParser p;
  ASSERT_EQ(p.feed("GET /v1/cell/amd/sycl/c%2B%2B?x=a%20b HTTP/1.1\r\n\r\n"),
            Status::Complete);
  const Request r = p.take_request();
  EXPECT_EQ(r.path, "/v1/cell/amd/sycl/c++");
  EXPECT_EQ(r.query_param("x"), "a b");
}

TEST(HttpParser, RejectsBadPercentEscapes) {
  for (const char* target : {"/a%2", "/a%zz", "/a%", "/ok?k=%f"}) {
    RequestParser p;
    EXPECT_EQ(p.feed(std::string("GET ") + target + " HTTP/1.1\r\n\r\n"),
              Status::Error)
        << target;
    EXPECT_EQ(p.error_status(), 400) << target;
  }
}

TEST(HttpParser, KeepAliveDefaultsPerVersion) {
  {
    RequestParser p;
    ASSERT_EQ(p.feed("GET / HTTP/1.0\r\n\r\n"), Status::Complete);
    EXPECT_FALSE(p.take_request().keep_alive());
  }
  {
    RequestParser p;
    ASSERT_EQ(p.feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
              Status::Complete);
    EXPECT_TRUE(p.take_request().keep_alive());
  }
  {
    RequestParser p;
    ASSERT_EQ(p.feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
              Status::Complete);
    EXPECT_FALSE(p.take_request().keep_alive());
  }
}

TEST(HttpParser, HeaderNamesAreCaseInsensitive) {
  RequestParser p;
  ASSERT_EQ(p.feed("GET / HTTP/1.1\r\nIf-NONE-Match: \"abc\"\r\n\r\n"),
            Status::Complete);
  const Request r = p.take_request();
  ASSERT_NE(r.header("if-none-match"), nullptr);
  EXPECT_EQ(*r.header("If-None-Match"), "\"abc\"");
}

TEST(PercentDecode, RoundTripsPlainText) {
  EXPECT_EQ(percent_decode("hello"), "hello");
  EXPECT_EQ(percent_decode("a%2Fb%00c").value(),
            std::string("a/b\0c", 5));
  EXPECT_FALSE(percent_decode("%GG").has_value());
  EXPECT_FALSE(percent_decode("%2").has_value());
}

TEST(HttpResponse, SerializesStatusHeadersAndBody) {
  Response r;
  r.status = 200;
  r.body = "hi";
  r.etag = "\"abcd\"";
  const std::string full = serialize_response(r, false, true);
  EXPECT_NE(full.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(full.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(full.find("ETag: \"abcd\"\r\n"), std::string::npos);
  EXPECT_NE(full.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(full.substr(full.size() - 2), "hi");

  const std::string head = serialize_response(r, true, false);
  EXPECT_NE(head.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(head.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(head.substr(head.size() - 4), "\r\n\r\n");  // no body
}

TEST(HttpResponse, A304CarriesNoBodyOrContentLength) {
  Response r;
  r.status = 304;
  r.etag = "\"abcd\"";
  r.body = "";
  const std::string wire = serialize_response(r, false, true);
  EXPECT_NE(wire.find("HTTP/1.1 304 Not Modified\r\n"), std::string::npos);
  EXPECT_EQ(wire.find("Content-Length"), std::string::npos);
  EXPECT_NE(wire.find("ETag: \"abcd\"\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 4), "\r\n\r\n");
}

}  // namespace
