// Gate-audit battery (satellite): every (vendor, runtime) cell of the
// Figure 1 Standard column must either construct an execution_policy or
// throw UnsupportedCombination, exactly as tier_for predicts — with the
// roc-stdpar opt-in switch audited in both positions. The second half
// covers the mid-algorithm hazard the execution_policy fix closed:
// revoking the roc-stdpar opt-in after a policy exists must make the
// next pstlx algorithm throw *before* it consumes the queue, leaving
// the queue's simulated clock untouched and the queue fully usable once
// the gate reopens.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/error.hpp"
#include "models/stdparx/stdparx.hpp"
#include "pstlx/pstlx.hpp"
#include "support/rng.hpp"

namespace mcmm {
namespace {

using stdparx::Runtime;
using pstlx::SupportTier;

constexpr Vendor kVendors[] = {Vendor::NVIDIA, Vendor::AMD, Vendor::Intel};
constexpr Runtime kRuntimes[] = {Runtime::NVHPC, Runtime::OneDPL,
                                 Runtime::RocStdpar, Runtime::OpenSYCL};

/// Restores the process-global roc-stdpar opt-in even when an
/// assertion fails mid-test.
class RocGuard {
 public:
  explicit RocGuard(bool enabled) noexcept
      : prev_(stdparx::roc_stdpar_enabled()) {
    stdparx::enable_experimental_roc_stdpar(enabled);
  }
  ~RocGuard() { stdparx::enable_experimental_roc_stdpar(prev_); }
  RocGuard(const RocGuard&) = delete;
  RocGuard& operator=(const RocGuard&) = delete;

 private:
  bool prev_;
};

/// Whether construction should succeed for this cell given the opt-in
/// switch position.
[[nodiscard]] bool should_construct(Vendor v, Runtime r, bool roc_enabled) {
  const SupportTier tier = pstlx::tier_for(v, r);
  if (tier == SupportTier::Unsupported) return false;
  if (tier == SupportTier::OptInExperimental) return roc_enabled;
  return true;
}

TEST(PstlxPolicyGating, EveryCellConstructsOrThrowsPerTier) {
  for (const bool roc : {false, true}) {
    RocGuard guard(roc);
    for (const Vendor v : kVendors) {
      for (const Runtime r : kRuntimes) {
        SCOPED_TRACE(::testing::Message()
                     << to_string(v) << "/" << stdparx::to_string(r)
                     << " roc=" << roc);
        if (should_construct(v, r, roc)) {
          EXPECT_NO_THROW({
            const stdparx::execution_policy pol(v, r);
            pol.validate();  // re-check agrees with construction
          });
        } else {
          EXPECT_THROW(stdparx::execution_policy(v, r),
                       UnsupportedCombination);
        }
      }
    }
  }
}

TEST(PstlxPolicyGating, ValidateReflectsCurrentGateNotConstructionTime) {
  RocGuard guard(true);
  const stdparx::execution_policy pol(Vendor::AMD, Runtime::RocStdpar);
  EXPECT_NO_THROW(pol.validate());
  stdparx::enable_experimental_roc_stdpar(false);
  EXPECT_THROW(pol.validate(), UnsupportedCombination);
  stdparx::enable_experimental_roc_stdpar(true);
  EXPECT_NO_THROW(pol.validate());
}

/// The mid-algorithm leak the fix closed: a gate revoked between policy
/// construction and the algorithm call must fail the algorithm up
/// front — zero launches issued, simulated clock unmoved — rather than
/// abandoning a queue with some kernels executed and some not.
TEST(PstlxPolicyGating, RevokedGateFailsBeforeConsumingQueue) {
  RocGuard guard(true);
  const stdparx::execution_policy pol(Vendor::AMD, Runtime::RocStdpar);

  const std::size_t n = 4097;
  const std::vector<int> host =
      testing::make_data<int>(testing::Shape::Random, n, 99);
  stdparx::device_vector<int> d(pol, n);
  stdparx::device_vector<long> dscan(pol, n);
  d.upload(host.data(), n);

  const double before = pol.queue().simulated_time_us();
  stdparx::enable_experimental_roc_stdpar(false);

  EXPECT_THROW(pstlx::sort(pol, d.begin(), d.end()),
               UnsupportedCombination);
  EXPECT_THROW(pstlx::inclusive_scan(pol, d.begin(), d.end(),
                                     dscan.begin()),
               UnsupportedCombination);
  EXPECT_THROW((void)pstlx::reduce(pol, d.begin(), d.end(), 0L),
               UnsupportedCombination);
  EXPECT_THROW(pstlx::for_each(pol, d.begin(), d.end(),
                               [](int& x) { x += 1; }),
               UnsupportedCombination);
  EXPECT_EQ(pol.queue().simulated_time_us(), before)
      << "a rejected algorithm advanced the simulated clock — it "
         "launched work before validating";

  // Device data is untouched: the failed sort never wrote anything.
  std::vector<int> still(n);
  d.download(still.data(), n);
  EXPECT_EQ(still, host);

  // Reopening the gate leaves a fully usable queue behind.
  stdparx::enable_experimental_roc_stdpar(true);
  EXPECT_NO_THROW(pstlx::sort(pol, d.begin(), d.end()));
  pol.queue().synchronize();
  EXPECT_GT(pol.queue().simulated_time_us(), before);
  std::vector<int> sorted(n);
  d.download(sorted.data(), n);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

/// Same audit one level down: every pstlx entry point validates, so a
/// closed gate rejects each algorithm uniformly across cells.
TEST(PstlxPolicyGating, AllAlgorithmsRejectRevokedPolicyUniformly) {
  RocGuard guard(true);
  const stdparx::execution_policy pol(Vendor::AMD, Runtime::RocStdpar);
  const std::size_t n = 257;
  std::vector<int> host =
      testing::make_data<int>(testing::Shape::Random, n, 7);
  stdparx::device_vector<int> a(pol, n);
  stdparx::device_vector<int> b(pol, n);
  stdparx::device_vector<int> out(pol, 2 * n);
  stdparx::device_vector<long> lout(pol, n);
  a.upload(host.data(), n);
  b.upload(host.data(), n);

  stdparx::enable_experimental_roc_stdpar(false);
  const double before = pol.queue().simulated_time_us();

  EXPECT_THROW(pstlx::transform(pol, a.begin(), a.end(), b.begin(),
                                [](int x) { return x; }),
               UnsupportedCombination);
  EXPECT_THROW((void)pstlx::transform_reduce(pol, a.begin(), a.end(),
                                             b.begin(), 0L),
               UnsupportedCombination);
  EXPECT_THROW(pstlx::exclusive_scan(pol, a.begin(), a.end(),
                                     lout.begin(), 0L),
               UnsupportedCombination);
  EXPECT_THROW(pstlx::stable_sort(pol, a.begin(), a.end()),
               UnsupportedCombination);
  EXPECT_THROW(pstlx::merge(pol, a.begin(), a.end(), b.begin(), b.end(),
                            out.begin()),
               UnsupportedCombination);
  EXPECT_EQ(pol.queue().simulated_time_us(), before);
}

}  // namespace
}  // namespace mcmm
