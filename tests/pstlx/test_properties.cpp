// Property tests for the pstlx algorithms: invariants that must hold
// for *every* input, checked over seeded shapes rather than against a
// reference implementation. Covers the scan prefix laws, the
// inclusive/exclusive duality, merge stability (equal keys keep their
// source-range order and relative order), schedule independence
// (Static and Dynamic produce identical bytes and identical simulated
// time), and the Figure 1 Standard-column tier table.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <tuple>
#include <vector>

#include "models/stdparx/stdparx.hpp"
#include "pstlx/host.hpp"
#include "pstlx/pstlx.hpp"
#include "support/rng.hpp"

namespace mcmm {
namespace {

using testing::Shape;
using testing::kAllShapes;
using testing::make_data;

constexpr std::uint64_t kSeed = 0x5eedf00d12345678ull;

[[nodiscard]] stdparx::execution_policy device_policy() {
  return stdparx::par_gpu(Vendor::NVIDIA, stdparx::Runtime::NVHPC);
}

TEST(PstlxProperties, InclusiveScanPrefixInvariant) {
  const auto pol = device_policy();
  for (const std::size_t n : {std::size_t{1}, std::size_t{4097}}) {
    for (const Shape shape : kAllShapes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " shape="
                                        << testing::to_string(shape));
      const std::vector<long> in = make_data<long>(shape, n, kSeed ^ 1);
      stdparx::device_vector<long> d(pol, n);
      stdparx::device_vector<long> dout(pol, n);
      d.upload(in.data(), n);
      pstlx::inclusive_scan(pol, d.begin(), d.end(), dout.begin());
      std::vector<long> out(n);
      dout.download(out.data(), n);
      ASSERT_EQ(out[0], in[0]);
      for (std::size_t i = 1; i < n; ++i) {
        ASSERT_EQ(out[i], out[i - 1] + in[i]) << "at i=" << i;
      }
    }
  }
}

TEST(PstlxProperties, ExclusiveScanPrefixInvariant) {
  const auto pol = device_policy();
  constexpr long kInit = 17;
  for (const std::size_t n : {std::size_t{1}, std::size_t{4097}}) {
    for (const Shape shape : kAllShapes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " shape="
                                        << testing::to_string(shape));
      const std::vector<long> in = make_data<long>(shape, n, kSeed ^ 2);
      stdparx::device_vector<long> d(pol, n);
      stdparx::device_vector<long> dout(pol, n);
      d.upload(in.data(), n);
      pstlx::exclusive_scan(pol, d.begin(), d.end(), dout.begin(), kInit);
      std::vector<long> out(n);
      dout.download(out.data(), n);
      ASSERT_EQ(out[0], kInit);
      for (std::size_t i = 1; i < n; ++i) {
        ASSERT_EQ(out[i], out[i - 1] + in[i - 1]) << "at i=" << i;
      }
    }
  }
}

/// inclusive[i] == exclusive[i] + in[i] when the exclusive seed is 0.
TEST(PstlxProperties, ScanDuality) {
  const auto pol = device_policy();
  const std::size_t n = 5001;
  const std::vector<long> in = make_data<long>(Shape::Random, n, kSeed ^ 3);
  stdparx::device_vector<long> d(pol, n);
  stdparx::device_vector<long> dinc(pol, n);
  stdparx::device_vector<long> dexc(pol, n);
  d.upload(in.data(), n);
  pstlx::inclusive_scan(pol, d.begin(), d.end(), dinc.begin());
  pstlx::exclusive_scan(pol, d.begin(), d.end(), dexc.begin(), 0L);
  std::vector<long> inc(n);
  std::vector<long> exc(n);
  dinc.download(inc.data(), n);
  dexc.download(exc.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(inc[i], exc[i] + in[i]) << "at i=" << i;
  }
}

struct Keyed {
  int key;
  int tag;  // provenance: which range / original position
  bool operator==(const Keyed&) const = default;
};

TEST(PstlxProperties, MergeIsStable) {
  // Duplicate-heavy keys so stability is actually exercised: ties must
  // take from the first range before the second, preserving tag order.
  const auto pol = device_policy();
  const std::size_t na = 3001, nb = 2003;
  const auto by_key = [](const Keyed& x, const Keyed& y) {
    return x.key < y.key;
  };

  std::vector<Keyed> a, b;
  testing::rng r(kSeed ^ 4);
  for (std::size_t i = 0; i < na; ++i) {
    a.push_back({static_cast<int>(r.below(16)), static_cast<int>(i)});
  }
  for (std::size_t i = 0; i < nb; ++i) {
    b.push_back({static_cast<int>(r.below(16)),
                 static_cast<int>(na + i)});
  }
  std::stable_sort(a.begin(), a.end(), by_key);
  std::stable_sort(b.begin(), b.end(), by_key);

  stdparx::device_vector<Keyed> da(pol, na);
  stdparx::device_vector<Keyed> db(pol, nb);
  stdparx::device_vector<Keyed> dout(pol, na + nb);
  da.upload(a.data(), na);
  db.upload(b.data(), nb);
  pstlx::merge(pol, da.begin(), da.end(), db.begin(), db.end(),
               dout.begin(), by_key);
  std::vector<Keyed> got(na + nb);
  dout.download(got.data(), na + nb);

  // std::merge is specified stable; element-wise equality on (key, tag)
  // proves pstlx::merge makes the same tie-breaking choices.
  std::vector<Keyed> expected(na + nb);
  std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin(),
             by_key);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], expected[i]) << "at i=" << i;
  }
}

TEST(PstlxProperties, StableSortPreservesTagOrderWithinEqualKeys) {
  const auto pol = device_policy();
  const std::size_t n = 8191;
  const auto by_key = [](const Keyed& x, const Keyed& y) {
    return x.key < y.key;
  };
  std::vector<Keyed> data;
  testing::rng r(kSeed ^ 5);
  for (std::size_t i = 0; i < n; ++i) {
    data.push_back({static_cast<int>(r.below(8)), static_cast<int>(i)});
  }
  std::vector<Keyed> expected = data;

  stdparx::device_vector<Keyed> d(pol, n);
  d.upload(data.data(), n);
  pstlx::stable_sort(pol, d.begin(), d.end(), by_key);
  std::vector<Keyed> got(n);
  d.download(got.data(), n);

  std::stable_sort(expected.begin(), expected.end(), by_key);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(got[i], expected[i]) << "at i=" << i;
  }
}

TEST(PstlxProperties, SortProducesSortedPermutation) {
  const auto pol = device_policy();
  for (const Shape shape : kAllShapes) {
    SCOPED_TRACE(testing::to_string(shape));
    const std::size_t n = 4099;
    const std::vector<int> in = make_data<int>(shape, n, kSeed ^ 6);
    stdparx::device_vector<int> d(pol, n);
    d.upload(in.data(), n);
    pstlx::sort(pol, d.begin(), d.end());
    std::vector<int> got(n);
    d.download(got.data(), n);
    ASSERT_TRUE(std::is_sorted(got.begin(), got.end()));
    ASSERT_TRUE(std::is_permutation(got.begin(), got.end(), in.begin()));
  }
}

/// Schedule is an execution knob only: Static and Dynamic must produce
/// identical bytes *and* identical simulated time.
TEST(PstlxProperties, ScheduleNeverChangesResultsOrSimTime) {
  const std::size_t n = 12289;
  const std::vector<int> in = make_data<int>(Shape::Random, n, kSeed ^ 7);

  auto run = [&](gpusim::Schedule s) {
    pstlx::schedule_guard guard(s);
    const auto pol = device_policy();
    stdparx::device_vector<int> d(pol, n);
    stdparx::device_vector<long> dscan(pol, n);
    d.upload(in.data(), n);
    pstlx::sort(pol, d.begin(), d.end());
    pstlx::inclusive_scan(pol, d.begin(), d.end(), dscan.begin());
    const long total =
        pstlx::reduce(pol, d.begin(), d.end(), 0L);
    std::vector<int> sorted(n);
    std::vector<long> scanned(n);
    d.download(sorted.data(), n);
    dscan.download(scanned.data(), n);
    return std::tuple{sorted, scanned, total,
                      pol.queue().simulated_time_us()};
  };

  const auto stat = run(gpusim::Schedule::Static);
  const auto dyn = run(gpusim::Schedule::Dynamic);
  EXPECT_EQ(std::get<0>(stat), std::get<0>(dyn));
  EXPECT_EQ(std::get<1>(stat), std::get<1>(dyn));
  EXPECT_EQ(std::get<2>(stat), std::get<2>(dyn));
  EXPECT_EQ(std::get<3>(stat), std::get<3>(dyn))
      << "schedule changed simulated time";
}

/// The Figure 1 Standard-column table, cell by cell.
TEST(PstlxProperties, TierTableMatchesFigureOneStandardColumn) {
  using stdparx::Runtime;
  using pstlx::SupportTier;
  using pstlx::tier_for;

  EXPECT_EQ(tier_for(Vendor::NVIDIA, Runtime::NVHPC),
            SupportTier::VendorComplete);
  EXPECT_EQ(tier_for(Vendor::AMD, Runtime::NVHPC), SupportTier::Unsupported);
  EXPECT_EQ(tier_for(Vendor::Intel, Runtime::NVHPC),
            SupportTier::Unsupported);

  EXPECT_EQ(tier_for(Vendor::Intel, Runtime::OneDPL),
            SupportTier::CustomNamespace);
  EXPECT_EQ(tier_for(Vendor::NVIDIA, Runtime::OneDPL),
            SupportTier::Experimental);
  EXPECT_EQ(tier_for(Vendor::AMD, Runtime::OneDPL),
            SupportTier::Experimental);

  EXPECT_EQ(tier_for(Vendor::AMD, Runtime::RocStdpar),
            SupportTier::OptInExperimental);
  EXPECT_EQ(tier_for(Vendor::NVIDIA, Runtime::RocStdpar),
            SupportTier::Unsupported);
  EXPECT_EQ(tier_for(Vendor::Intel, Runtime::RocStdpar),
            SupportTier::Unsupported);

  for (const Vendor v : {Vendor::NVIDIA, Vendor::AMD, Vendor::Intel}) {
    EXPECT_EQ(tier_for(v, Runtime::OpenSYCL), SupportTier::Experimental);
  }

  EXPECT_EQ(pstlx::to_string(SupportTier::VendorComplete),
            "vendor-complete");
  EXPECT_EQ(pstlx::to_string(SupportTier::CustomNamespace),
            "custom-namespace");
  EXPECT_EQ(pstlx::to_string(SupportTier::OptInExperimental),
            "opt-in-experimental");
  EXPECT_EQ(pstlx::to_string(SupportTier::Experimental), "experimental");
  EXPECT_EQ(pstlx::to_string(SupportTier::Unsupported), "unsupported");
}

/// Host fallback honours the same invariants (spot check: scan duality
/// and merge stability through the ThreadPool path, above the serial
/// cutoff so the blocked code actually runs).
TEST(PstlxProperties, HostPathScanDualityAndStability) {
  const pstlx::host_policy pol{.serial_cutoff = 64};
  const std::size_t n = 40961;
  const std::vector<long> in = make_data<long>(Shape::Random, n, kSeed ^ 8);
  std::vector<long> inc(n), exc(n);
  pstlx::inclusive_scan(pol, in.begin(), in.end(), inc.begin());
  pstlx::exclusive_scan(pol, in.begin(), in.end(), exc.begin(), 0L);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(inc[i], exc[i] + in[i]) << "at i=" << i;
  }

  const auto by_key = [](const Keyed& x, const Keyed& y) {
    return x.key < y.key;
  };
  std::vector<Keyed> data;
  testing::rng r(kSeed ^ 9);
  for (std::size_t i = 0; i < n; ++i) {
    data.push_back({static_cast<int>(r.below(4)), static_cast<int>(i)});
  }
  std::vector<Keyed> expected = data;
  pstlx::stable_sort(pol, data.begin(), data.end(), by_key);
  std::stable_sort(expected.begin(), expected.end(), by_key);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(data[i], expected[i]) << "at i=" << i;
  }
}

}  // namespace
}  // namespace mcmm
