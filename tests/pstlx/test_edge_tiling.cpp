// Edge-tiling coverage (satellite): gpusim::Queue launches tile work
// with exact ceil-division — no padding threads, no dropped tail. The
// pstlx sort and scan decompositions lean on that tiling at every
// awkward count: primes, one-off-from-power-of-two, sizes below one
// tile, sizes that leave a single-element tail tile. A wrong tile
// boundary shows up here as a missing or doubled element, not a race.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "models/stdparx/stdparx.hpp"
#include "pstlx/pstlx.hpp"
#include "support/rng.hpp"

namespace mcmm {
namespace {

using testing::Shape;
using testing::make_data;

// Around the sort tile floor (1024), the tile-count cap (64 tiles →
// 65536 elements), powers of two ± 1, primes, and a large prime.
constexpr std::size_t kAwkwardSizes[] = {
    1,    2,    3,     63,    64,    65,    1000,  1023,   1024,
    1025, 2047, 2049,  4097,  65535, 65536, 65537, 104729,
};

[[nodiscard]] stdparx::execution_policy device_policy() {
  return stdparx::par_gpu(Vendor::NVIDIA, stdparx::Runtime::NVHPC);
}

TEST(PstlxEdgeTiling, SortEveryAwkwardSize) {
  const auto pol = device_policy();
  for (const std::size_t n : kAwkwardSizes) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    std::vector<int> expected = make_data<int>(Shape::Random, n, n * 31);
    stdparx::device_vector<int> d(pol, n);
    d.upload(expected.data(), n);
    pstlx::sort(pol, d.begin(), d.end());
    std::vector<int> got(n);
    d.download(got.data(), n);
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(got, expected);
  }
}

TEST(PstlxEdgeTiling, InclusiveScanEveryAwkwardSize) {
  const auto pol = device_policy();
  for (const std::size_t n : kAwkwardSizes) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    const std::vector<long> in = make_data<long>(Shape::Random, n, n * 37);
    stdparx::device_vector<long> d(pol, n);
    stdparx::device_vector<long> dout(pol, n);
    d.upload(in.data(), n);
    pstlx::inclusive_scan(pol, d.begin(), d.end(), dout.begin());
    std::vector<long> got(n);
    dout.download(got.data(), n);
    std::vector<long> expected(n);
    std::inclusive_scan(in.begin(), in.end(), expected.begin());
    ASSERT_EQ(got, expected);
  }
}

TEST(PstlxEdgeTiling, ExclusiveScanEveryAwkwardSize) {
  const auto pol = device_policy();
  for (const std::size_t n : kAwkwardSizes) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    const std::vector<long> in = make_data<long>(Shape::Random, n, n * 41);
    stdparx::device_vector<long> d(pol, n);
    stdparx::device_vector<long> dout(pol, n);
    d.upload(in.data(), n);
    pstlx::exclusive_scan(pol, d.begin(), d.end(), dout.begin(), 1L);
    std::vector<long> got(n);
    dout.download(got.data(), n);
    std::vector<long> expected(n);
    std::exclusive_scan(in.begin(), in.end(), expected.begin(), 1L);
    ASSERT_EQ(got, expected);
  }
}

/// Asymmetric merges: a short tail tile in one range must not misalign
/// the co-rank split of the other.
TEST(PstlxEdgeTiling, MergeLopsidedRanges) {
  const auto pol = device_policy();
  const std::pair<std::size_t, std::size_t> splits[] = {
      {1, 104729}, {104729, 1}, {1023, 1025}, {4097, 63}, {65537, 2047},
  };
  for (const auto& [na, nb] : splits) {
    SCOPED_TRACE(::testing::Message() << "na=" << na << " nb=" << nb);
    std::vector<int> a = make_data<int>(Shape::DuplicateHeavy, na, na);
    std::vector<int> b = make_data<int>(Shape::DuplicateHeavy, nb, nb);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    stdparx::device_vector<int> da(pol, na);
    stdparx::device_vector<int> db(pol, nb);
    stdparx::device_vector<int> dout(pol, na + nb);
    da.upload(a.data(), na);
    db.upload(b.data(), nb);
    pstlx::merge(pol, da.begin(), da.end(), db.begin(), db.end(),
                 dout.begin());
    std::vector<int> got(na + nb);
    dout.download(got.data(), na + nb);
    std::vector<int> expected(na + nb);
    std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
    ASSERT_EQ(got, expected);
  }
}

/// Both schedules walk the same tiles: a Static/Dynamic disagreement at
/// an awkward size would betray a tiling dependent on work distribution.
TEST(PstlxEdgeTiling, AwkwardSizesScheduleInvariant) {
  for (const std::size_t n : {std::size_t{65}, std::size_t{104729}}) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    const std::vector<int> in = make_data<int>(Shape::Random, n, n * 43);
    std::vector<int> results[2];
    int slot = 0;
    for (const auto s :
         {gpusim::Schedule::Static, gpusim::Schedule::Dynamic}) {
      pstlx::schedule_guard guard(s);
      const auto pol = device_policy();
      stdparx::device_vector<int> d(pol, n);
      d.upload(in.data(), n);
      pstlx::sort(pol, d.begin(), d.end());
      results[slot].resize(n);
      d.download(results[slot].data(), n);
      ++slot;
    }
    ASSERT_EQ(results[0], results[1]);
  }
}

}  // namespace
}  // namespace mcmm
