// Differential battery (ctest label: differential): every pstlx
// algorithm — device-executed and host fallback — checked against its
// sequential std:: counterpart over seeded inputs in the sizes and
// distribution shapes where blocked decompositions historically break:
// 0, 1, non-power-of-two, and 2^20 elements; random, duplicate-heavy,
// presorted, reverse-sorted, and all-equal values. Integer results must
// match std:: exactly; the device reduce additionally matches
// stdparx::reduce bit for bit on doubles (same 64-chunk decomposition).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "models/stdparx/stdparx.hpp"
#include "pstlx/host.hpp"
#include "pstlx/pstlx.hpp"
#include "support/rng.hpp"

namespace mcmm {
namespace {

using testing::Shape;
using testing::kAllShapes;
using testing::make_data;

constexpr std::size_t kSizes[] = {0, 1, 1000, std::size_t{1} << 20};
constexpr std::uint64_t kSeed = 0xbadc0ffee0ddf00dull;

[[nodiscard]] stdparx::execution_policy device_policy() {
  return stdparx::par_gpu(Vendor::NVIDIA, stdparx::Runtime::NVHPC);
}

/// Uploads host data, runs `device_op(policy, device_ptr, n)`, downloads
/// the result.
template <typename T, typename DeviceOp>
std::vector<T> on_device(const std::vector<T>& input, DeviceOp&& device_op) {
  const auto pol = device_policy();
  const std::size_t n = input.size();
  stdparx::device_vector<T> d(pol, n == 0 ? 1 : n);
  if (n != 0) d.upload(input.data(), n);
  device_op(pol, d.begin(), n);
  std::vector<T> out(n);
  if (n != 0) d.download(out.data(), n);
  return out;
}

TEST(PstlxDifferential, DeviceSortMatchesStdSort) {
  for (const std::size_t n : kSizes) {
    for (const Shape shape : kAllShapes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " shape="
                                        << testing::to_string(shape));
      std::vector<int> expected = make_data<int>(shape, n, kSeed);
      const std::vector<int> got =
          on_device(expected, [](const auto& pol, int* d, std::size_t m) {
            pstlx::sort(pol, d, d + m);
          });
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(got, expected);
    }
  }
}

TEST(PstlxDifferential, DeviceStableSortMatchesStdStableSort) {
  for (const std::size_t n : kSizes) {
    for (const Shape shape : kAllShapes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " shape="
                                        << testing::to_string(shape));
      // Pack (key, original index) into one value so exact equality
      // with std::stable_sort proves order preservation among ties.
      std::vector<long> expected;
      expected.reserve(n);
      const std::vector<int> keys = make_data<int>(shape, n, kSeed ^ 1);
      for (std::size_t i = 0; i < n; ++i) {
        expected.push_back(static_cast<long>(keys[i]) * 1048576 +
                           static_cast<long>(i % 1048576));
      }
      const auto by_key = [](long a, long b) {
        return a / 1048576 < b / 1048576;
      };
      const std::vector<long> got = on_device(
          expected, [&](const auto& pol, long* d, std::size_t m) {
            pstlx::stable_sort(pol, d, d + m, by_key);
          });
      std::stable_sort(expected.begin(), expected.end(), by_key);
      ASSERT_EQ(got, expected);
    }
  }
}

TEST(PstlxDifferential, DeviceMergeMatchesStdMerge) {
  for (const std::size_t n : kSizes) {
    for (const Shape shape : kAllShapes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " shape="
                                        << testing::to_string(shape));
      std::vector<int> a = make_data<int>(shape, n, kSeed ^ 2);
      std::vector<int> b = make_data<int>(shape, n / 2 + 1, kSeed ^ 3);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      const std::size_t total = a.size() + b.size();

      const auto pol = device_policy();
      stdparx::device_vector<int> da(pol, a.size() + 1);
      stdparx::device_vector<int> db(pol, b.size() + 1);
      stdparx::device_vector<int> dout(pol, total + 1);
      if (!a.empty()) da.upload(a.data(), a.size());
      db.upload(b.data(), b.size());
      pstlx::merge(pol, da.begin(), da.begin() + a.size(), db.begin(),
                   db.begin() + b.size(), dout.begin());
      std::vector<int> got(total);
      dout.download(got.data(), total);

      std::vector<int> expected(total);
      std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
      ASSERT_EQ(got, expected);
    }
  }
}

TEST(PstlxDifferential, DeviceInclusiveScanMatchesStd) {
  for (const std::size_t n : kSizes) {
    for (const Shape shape : kAllShapes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " shape="
                                        << testing::to_string(shape));
      const std::vector<long> input =
          make_data<long>(shape, n, kSeed ^ 4);
      const auto pol = device_policy();
      stdparx::device_vector<long> d(pol, n == 0 ? 1 : n);
      stdparx::device_vector<long> dout(pol, n == 0 ? 1 : n);
      if (n != 0) d.upload(input.data(), n);
      pstlx::inclusive_scan(pol, d.begin(), d.begin() + n, dout.begin());
      std::vector<long> got(n);
      if (n != 0) dout.download(got.data(), n);

      std::vector<long> expected(n);
      std::inclusive_scan(input.begin(), input.end(), expected.begin());
      ASSERT_EQ(got, expected);
    }
  }
}

TEST(PstlxDifferential, DeviceExclusiveScanMatchesStd) {
  for (const std::size_t n : kSizes) {
    for (const Shape shape : kAllShapes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " shape="
                                        << testing::to_string(shape));
      const std::vector<long> input =
          make_data<long>(shape, n, kSeed ^ 5);
      const auto pol = device_policy();
      stdparx::device_vector<long> d(pol, n == 0 ? 1 : n);
      stdparx::device_vector<long> dout(pol, n == 0 ? 1 : n);
      if (n != 0) d.upload(input.data(), n);
      pstlx::exclusive_scan(pol, d.begin(), d.begin() + n, dout.begin(),
                            7L);
      std::vector<long> got(n);
      if (n != 0) dout.download(got.data(), n);

      std::vector<long> expected(n);
      std::exclusive_scan(input.begin(), input.end(), expected.begin(), 7L);
      ASSERT_EQ(got, expected);
    }
  }
}

TEST(PstlxDifferential, DeviceReduceMatchesStdReduce) {
  for (const std::size_t n : kSizes) {
    for (const Shape shape : kAllShapes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " shape="
                                        << testing::to_string(shape));
      const std::vector<int> input = make_data<int>(shape, n, kSeed ^ 6);
      const auto pol = device_policy();
      stdparx::device_vector<int> d(pol, n == 0 ? 1 : n);
      if (n != 0) d.upload(input.data(), n);
      const long got = pstlx::reduce(pol, d.begin(), d.begin() + n, 5L);
      const long expected = std::reduce(input.begin(), input.end(), 5L);
      ASSERT_EQ(got, expected);
    }
  }
}

TEST(PstlxDifferential, DeviceTransformReduceMatchesStdInnerProduct) {
  for (const std::size_t n : kSizes) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    const std::vector<int> a = make_data<int>(Shape::Random, n, kSeed ^ 7);
    const std::vector<int> b =
        make_data<int>(Shape::DuplicateHeavy, n, kSeed ^ 8);
    const auto pol = device_policy();
    stdparx::device_vector<int> da(pol, n == 0 ? 1 : n);
    stdparx::device_vector<int> db(pol, n == 0 ? 1 : n);
    if (n != 0) {
      da.upload(a.data(), n);
      db.upload(b.data(), n);
    }
    const long got = pstlx::transform_reduce(pol, da.begin(),
                                             da.begin() + n, db.begin(), 0L);
    const long expected =
        std::inner_product(a.begin(), a.end(), b.begin(), 0L);
    ASSERT_EQ(got, expected);
  }
}

/// The FP contract the perfport dogfood relies on: pstlx device reduce
/// uses the same 64-chunk decomposition and combine order as stdparx, so
/// double sums are bitwise identical between the two (not merely close).
TEST(PstlxDifferential, DeviceDoubleReduceBitwiseMatchesStdparx) {
  for (const std::size_t n : {std::size_t{1000}, std::size_t{1} << 20}) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    testing::rng r(kSeed ^ 9);
    std::vector<double> input(n);
    for (auto& x : input) x = r.unit() * 2.0 - 1.0;
    const auto pol = device_policy();
    stdparx::device_vector<double> d(pol, n);
    d.upload(input.data(), n);
    const double via_pstlx =
        pstlx::transform_reduce(pol, d.begin(), d.end(), d.begin(), 0.0);
    const double via_stdparx =
        stdparx::transform_reduce(pol, d.begin(), d.end(), d.begin(), 0.0);
    ASSERT_EQ(via_pstlx, via_stdparx);  // bitwise, not EXPECT_DOUBLE_EQ
  }
}

TEST(PstlxDifferential, DeviceForEachAndTransformMatchStd) {
  for (const std::size_t n : kSizes) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    std::vector<int> expected = make_data<int>(Shape::Random, n, kSeed ^ 10);
    const std::vector<int> got = on_device(
        expected, [](const auto& pol, int* d, std::size_t m) {
          pstlx::for_each(pol, d, d + m, [](int& x) { x = x * 3 + 1; });
        });
    std::for_each(expected.begin(), expected.end(),
                  [](int& x) { x = x * 3 + 1; });
    ASSERT_EQ(got, expected);

    const auto pol = device_policy();
    stdparx::device_vector<int> din(pol, n == 0 ? 1 : n);
    stdparx::device_vector<int> dout(pol, n == 0 ? 1 : n);
    if (n != 0) din.upload(got.data(), n);
    pstlx::transform(pol, din.begin(), din.begin() + n, dout.begin(),
                     [](int x) { return x - 7; });
    std::vector<int> got2(n);
    if (n != 0) dout.download(got2.data(), n);
    std::vector<int> expected2(n);
    std::transform(expected.begin(), expected.end(), expected2.begin(),
                   [](int x) { return x - 7; });
    ASSERT_EQ(got2, expected2);
  }
}

// --- Host fallback ------------------------------------------------------

TEST(PstlxHostDifferential, HostSortMatchesStdSort) {
  const pstlx::host_policy pol;
  for (const std::size_t n : kSizes) {
    for (const Shape shape : kAllShapes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " shape="
                                        << testing::to_string(shape));
      std::vector<int> got = make_data<int>(shape, n, kSeed ^ 11);
      std::vector<int> expected = got;
      pstlx::sort(pol, got.begin(), got.end());
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(got, expected);
    }
  }
}

TEST(PstlxHostDifferential, HostStableSortMatchesStdStableSort) {
  const pstlx::host_policy pol;
  for (const std::size_t n : kSizes) {
    for (const Shape shape : kAllShapes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " shape="
                                        << testing::to_string(shape));
      const std::vector<int> keys = make_data<int>(shape, n, kSeed ^ 12);
      std::vector<long> got;
      got.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        got.push_back(static_cast<long>(keys[i]) * 1048576 +
                      static_cast<long>(i % 1048576));
      }
      std::vector<long> expected = got;
      const auto by_key = [](long a, long b) {
        return a / 1048576 < b / 1048576;
      };
      pstlx::stable_sort(pol, got.begin(), got.end(), by_key);
      std::stable_sort(expected.begin(), expected.end(), by_key);
      ASSERT_EQ(got, expected);
    }
  }
}

TEST(PstlxHostDifferential, HostMergeMatchesStdMerge) {
  const pstlx::host_policy pol;
  for (const std::size_t n : kSizes) {
    for (const Shape shape : kAllShapes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " shape="
                                        << testing::to_string(shape));
      std::vector<int> a = make_data<int>(shape, n, kSeed ^ 13);
      std::vector<int> b = make_data<int>(shape, n / 3 + 1, kSeed ^ 14);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      std::vector<int> got(a.size() + b.size());
      std::vector<int> expected(a.size() + b.size());
      pstlx::merge(pol, a.begin(), a.end(), b.begin(), b.end(),
                   got.begin());
      std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
      ASSERT_EQ(got, expected);
    }
  }
}

TEST(PstlxHostDifferential, HostScansMatchStd) {
  const pstlx::host_policy pol;
  for (const std::size_t n : kSizes) {
    for (const Shape shape : kAllShapes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " shape="
                                        << testing::to_string(shape));
      const std::vector<long> input = make_data<long>(shape, n, kSeed ^ 15);
      std::vector<long> got(n);
      std::vector<long> expected(n);
      pstlx::inclusive_scan(pol, input.begin(), input.end(), got.begin());
      std::inclusive_scan(input.begin(), input.end(), expected.begin());
      ASSERT_EQ(got, expected);
      pstlx::exclusive_scan(pol, input.begin(), input.end(), got.begin(),
                            -3L);
      std::exclusive_scan(input.begin(), input.end(), expected.begin(),
                          -3L);
      ASSERT_EQ(got, expected);
    }
  }
}

TEST(PstlxHostDifferential, HostReductionsMatchStd) {
  const pstlx::host_policy pol;
  for (const std::size_t n : kSizes) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    const std::vector<int> input = make_data<int>(Shape::Random, n, kSeed);
    ASSERT_EQ(pstlx::reduce(pol, input.begin(), input.end(), 2L),
              std::reduce(input.begin(), input.end(), 2L));
    ASSERT_EQ(pstlx::transform_reduce(
                  pol, input.begin(), input.end(), 0L,
                  [](int x) { return static_cast<long>(x) * x; }),
              std::transform_reduce(
                  input.begin(), input.end(), 0L, std::plus<>{},
                  [](int x) { return static_cast<long>(x) * x; }));

    std::vector<int> got = input;
    std::vector<int> expected = input;
    pstlx::for_each(pol, got.begin(), got.end(), [](int& x) { x ^= 0x55; });
    std::for_each(expected.begin(), expected.end(),
                  [](int& x) { x ^= 0x55; });
    ASSERT_EQ(got, expected);
  }
}

}  // namespace
}  // namespace mcmm
