// pstlx determinism regression test: every algorithm's output — and the
// simulated clock it produces — must be byte-identical across
// MCMM_NUM_THREADS = 1, 4, and hardware_concurrency, under both launch
// schedules. The worker count is pinned per process (the global pool is
// a process-wide singleton), so each leg re-executes this binary via
// /proc/self/exe with `--emit-fingerprint`, which prints a full dump of
// every result buffer plus the simulated time consumed.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "models/stdparx/stdparx.hpp"
#include "pstlx/host.hpp"
#include "pstlx/pstlx.hpp"
#include "support/rng.hpp"

namespace {

using mcmm::Vendor;
using mcmm::stdparx::Runtime;
namespace pstlx = mcmm::pstlx;
namespace mtest = mcmm::testing;

constexpr std::size_t kN = 12289;  // prime: short tail tiles everywhere

void dump(std::ostream& os, const char* tag, const auto& v) {
  os << tag << ':';
  for (const auto& x : v) os << ' ' << x;
  os << '\n';
}

/// One schedule's worth of device + host algorithm runs, streamed as
/// text. Any thread-count dependence shows up as a byte diff.
void fingerprint_schedule(std::ostream& os, mcmm::gpusim::Schedule s) {
  pstlx::schedule_guard guard(s);
  const auto pol = mcmm::stdparx::par_gpu(Vendor::NVIDIA, Runtime::NVHPC);

  const std::vector<int> in =
      mtest::make_data<int>(mtest::Shape::Random, kN, 0xf1bceed5ull);

  mcmm::stdparx::device_vector<int> a(pol, kN);
  mcmm::stdparx::device_vector<int> b(pol, kN);
  mcmm::stdparx::device_vector<int> merged(pol, 2 * kN);
  mcmm::stdparx::device_vector<long> scanned(pol, kN);
  a.upload(in.data(), kN);
  b.upload(in.data(), kN);

  pstlx::for_each(pol, a.begin(), a.end(), [](int& x) { x = x * 3 + 1; });
  pstlx::sort(pol, a.begin(), a.end());
  pstlx::stable_sort(pol, b.begin(), b.end());
  pstlx::merge(pol, a.begin(), a.end(), b.begin(), b.end(),
               merged.begin());
  pstlx::inclusive_scan(pol, b.begin(), b.end(), scanned.begin());
  const long sum = pstlx::reduce(pol, a.begin(), a.end(), 0L);
  const long dot =
      pstlx::transform_reduce(pol, a.begin(), a.end(), b.begin(), 0L);
  pol.queue().synchronize();

  std::vector<int> sorted(kN), merged_h(2 * kN);
  std::vector<long> scanned_h(kN);
  a.download(sorted.data(), kN);
  merged.download(merged_h.data(), 2 * kN);
  scanned.download(scanned_h.data(), kN);

  os << "schedule " << (s == mcmm::gpusim::Schedule::Static ? "static"
                                                            : "dynamic")
     << '\n';
  dump(os, "sorted", sorted);
  dump(os, "merged", merged_h);
  dump(os, "scanned", scanned_h);
  os << "sum: " << sum << "\ndot: " << dot
     << "\nsim_us: " << pol.queue().simulated_time_us() << '\n';

  // Host fallback over the thread pool: same invariants, no queue.
  const pstlx::host_policy host{.schedule = s, .serial_cutoff = 64};
  std::vector<int> hsorted = in;
  std::vector<long> hscanned(kN);
  pstlx::sort(host, hsorted.begin(), hsorted.end());
  pstlx::inclusive_scan(host, hsorted.begin(), hsorted.end(),
                        hscanned.begin());
  const long hsum = pstlx::reduce(host, in.begin(), in.end(), 0L);
  dump(os, "host_sorted", hsorted);
  dump(os, "host_scanned", hscanned);
  os << "host_sum: " << hsum << '\n';
}

int emit_fingerprint() {
  std::ostringstream os;
  fingerprint_schedule(os, mcmm::gpusim::Schedule::Static);
  fingerprint_schedule(os, mcmm::gpusim::Schedule::Dynamic);
  const std::string text = os.str();
  std::fputs(text.c_str(), stdout);
  return text.empty() ? 1 : 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// This binary's path, resolved in-process (inside std::system's shell,
/// /proc/self/exe would name the shell).
std::string self_exe() {
  char buffer[4096];
  const ssize_t len =
      ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (len <= 0) return {};
  buffer[len] = '\0';
  return buffer;
}

/// Re-executes this binary with MCMM_NUM_THREADS pinned and returns the
/// child's fingerprint bytes.
std::string fingerprint_with_threads(unsigned threads,
                                     const std::string& tag) {
  const std::string exe = self_exe();
  if (exe.empty()) {
    ADD_FAILURE() << "cannot resolve /proc/self/exe";
    return {};
  }
  const std::string out_path = "pstlx_determinism_" + tag + ".txt";
  const std::string cmd = "MCMM_NUM_THREADS=" + std::to_string(threads) +
                          " '" + exe + "' --emit-fingerprint > '" +
                          out_path + "' 2>/dev/null";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << "child re-exec failed for " << threads << " threads";
  const std::string fp = read_file(out_path);
  std::remove(out_path.c_str());
  return fp;
}

TEST(PstlxDeterminism, FingerprintIdenticalAcrossWorkerCounts) {
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  const std::string f1 = fingerprint_with_threads(1, "t1");
  const std::string f4 = fingerprint_with_threads(4, "t4");
  const std::string fhw = fingerprint_with_threads(hw, "thw");
  ASSERT_FALSE(f1.empty());
  EXPECT_EQ(f1, f4) << "pstlx results depend on the worker count";
  EXPECT_EQ(f1, fhw) << "pstlx results depend on the worker count";
}

TEST(PstlxDeterminism, BackToBackRunsInOneProcessMatch) {
  std::ostringstream first, second;
  fingerprint_schedule(first, mcmm::gpusim::Schedule::Dynamic);
  fingerprint_schedule(second, mcmm::gpusim::Schedule::Dynamic);
  ASSERT_FALSE(first.str().empty());
  EXPECT_EQ(first.str(), second.str());
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--emit-fingerprint") == 0) {
      return emit_fingerprint();
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
