// gpusan pass over the pstlx fixture suite: every algorithm's device
// kernels run under the sanitizer, under both launch schedules, and
// must come back with zero findings — the race-freedom proof for the
// blocked decompositions. The counters are asserted too: a "clean"
// report that checked nothing would prove nothing.

#include <gtest/gtest.h>

#include "gpusan/fixtures.hpp"
#include "gpusan/gpusan.hpp"
#include "gpusan/gpusan_test_util.hpp"

namespace mcmm::gpusan {
namespace {

using testing::GpusanTest;

class PstlxSanitize : public GpusanTest {};

TEST_F(PstlxSanitize, SuiteIsCleanUnderStaticSchedule) {
  fixtures::pstlx_suite(gpusim::Schedule::Static);
  const Report report = current_report();
  EXPECT_EQ(report.total_findings, 0u) << "pstlx kernels raced or "
                                          "touched memory out of bounds";
  EXPECT_GT(report.launches_checked, 0u);
  EXPECT_GT(report.accesses_checked, 0u);
}

TEST_F(PstlxSanitize, SuiteIsCleanUnderDynamicSchedule) {
  fixtures::pstlx_suite(gpusim::Schedule::Dynamic);
  const Report report = current_report();
  EXPECT_EQ(report.total_findings, 0u) << "pstlx kernels raced or "
                                          "touched memory out of bounds";
  EXPECT_GT(report.launches_checked, 0u);
  EXPECT_GT(report.accesses_checked, 0u);
}

/// Both schedules check the same amount of work: the schedule moves
/// tiles between workers but never changes what executes.
TEST_F(PstlxSanitize, SchedulesCheckIdenticalWork) {
  fixtures::pstlx_suite(gpusim::Schedule::Static);
  const Report stat = current_report();
  reset();
  enable();
  fixtures::pstlx_suite(gpusim::Schedule::Dynamic);
  const Report dyn = current_report();
  EXPECT_EQ(stat.launches_checked, dyn.launches_checked);
  EXPECT_EQ(stat.accesses_checked, dyn.accesses_checked);
  EXPECT_EQ(stat.total_findings, 0u);
  EXPECT_EQ(dyn.total_findings, 0u);
}

}  // namespace
}  // namespace mcmm::gpusan
