// Tests of the V&V mini-suites (the SOLLVE / OpenACC V&V analogues).

#include "validate/validate.hpp"

#include <gtest/gtest.h>

namespace mcmm::validate {
namespace {

using ompx::Compiler;
using ompx::Feature;

TEST(OmpSuite, NoFunctionalFailuresAnywhere) {
  // Every claimed feature must pass its functional check on every
  // (compiler, vendor) pairing the compiler targets.
  for (const ComplianceRow& row : openmp_compliance_rows()) {
    EXPECT_EQ(row.failed, 0)
        << ompx::to_string(row.compiler) << "/" << to_string(row.vendor);
    EXPECT_EQ(row.passed + row.failed + row.unsupported, 8);
  }
}

TEST(OmpSuite, SuiteHasEightCases) {
  const auto results = run_openmp_suite(Vendor::NVIDIA, Compiler::NVHPC);
  EXPECT_EQ(results.size(), 8u);
}

TEST(OmpSuite, NvhpcShowsItsSubsetGaps) {
  // NVHPC claims only a subset of 5.0 (item 9): USM, declare mapper, and
  // metadirective come back 'unsupported'.
  const auto results = run_openmp_suite(Vendor::NVIDIA, Compiler::NVHPC);
  for (const CaseResult& r : results) {
    if (r.feature == Feature::UnifiedSharedMemory ||
        r.feature == Feature::DeclareMapper ||
        r.feature == Feature::Metadirective) {
      EXPECT_EQ(r.verdict, Verdict::Unsupported) << r.name;
      EXPECT_NE(r.detail.find("NVHPC"), std::string::npos);
    }
  }
}

TEST(OmpSuite, IcpxPassesMostFeatures) {
  // Intel claims all 4.5 and most 5.0/5.1 (item 38).
  int pass = 0;
  for (const CaseResult& r :
       run_openmp_suite(Vendor::Intel, Compiler::ICPX)) {
    if (r.verdict == Verdict::Pass) ++pass;
  }
  EXPECT_EQ(pass, 7);  // everything but metadirective
}

TEST(OmpSuite, GccIs45Complete) {
  // GCC: OpenMP 4.5 complete, no 5.0 features yet (item 9).
  const auto results = run_openmp_suite(Vendor::AMD, Compiler::GCC);
  for (const CaseResult& r : results) {
    const bool is45 =
        r.feature == Feature::TargetOffload ||
        r.feature == Feature::TeamsReduction ||
        r.feature == Feature::Collapse || r.feature == Feature::TargetUpdate;
    EXPECT_EQ(r.verdict, is45 ? Verdict::Pass : Verdict::Unsupported)
        << r.name;
  }
}

TEST(OmpSuite, InvalidPairingThrows) {
  EXPECT_THROW((void)run_openmp_suite(Vendor::Intel, Compiler::NVHPC),
               UnsupportedCombination);
}

TEST(OmpSuite, ComplianceRowsCoverTenPairings) {
  // NVHPC(1) + GCC(2) + Clang(2) + Cray(2) + AOMP(2) + ICPX(1) = 10.
  EXPECT_EQ(openmp_compliance_rows().size(), 10u);
}

TEST(OmpSuite, ComplianceTableShape) {
  const std::string table = openmp_compliance_table();
  EXPECT_NE(table.find("NVHPC/NVIDIA"), std::string::npos);
  EXPECT_NE(table.find("AOMP/AMD"), std::string::npos);
  EXPECT_NE(table.find("ICPX/Intel"), std::string::npos);
  EXPECT_EQ(table.find("ICPX/NVIDIA"), std::string::npos);
  EXPECT_NE(table.find("unsupported"), std::string::npos);
  EXPECT_EQ(table.find("FAIL"), std::string::npos);
}

TEST(AccSuite, AllPassOnSupportedPairings) {
  for (const auto& [vendor, compiler] :
       {std::pair{Vendor::NVIDIA, accx::Compiler::NVHPC},
        std::pair{Vendor::AMD, accx::Compiler::GCC},
        std::pair{Vendor::AMD, accx::Compiler::Clacc}}) {
    const auto results = run_openacc_suite(vendor, compiler);
    EXPECT_EQ(results.size(), 3u);
    for (const AccCaseResult& r : results) {
      EXPECT_EQ(r.verdict, Verdict::Pass)
          << r.name << " on " << to_string(vendor);
    }
  }
}

TEST(AccSuite, IntelThrows) {
  EXPECT_THROW((void)run_openacc_suite(Vendor::Intel, accx::Compiler::GCC),
               UnsupportedCombination);
}

}  // namespace
}  // namespace mcmm::validate
