#include <gtest/gtest.h>

#include "translate/translate.hpp"

namespace mcmm::translate {
namespace {

TEST(Acc2Omp, ParallelLoopDirective) {
  const TranslationResult r = acc2omp("#pragma acc parallel loop\n");
  EXPECT_NE(
      r.code.find("#pragma omp target teams distribute parallel for"),
      std::string::npos);
}

TEST(Acc2Omp, ReductionClausePreserved) {
  const TranslationResult r =
      acc2omp("#pragma acc parallel loop reduction(+:sum)\n");
  EXPECT_NE(r.code.find("#pragma omp target teams distribute parallel for "
                        "reduction(+:sum)"),
            std::string::npos);
}

TEST(Acc2Omp, DataDirectivesAndClauses) {
  const TranslationResult r =
      acc2omp("#pragma acc data copyin(a[0:n]) copyout(c[0:n])\n");
  EXPECT_NE(r.code.find("#pragma omp target data"), std::string::npos);
  EXPECT_NE(r.code.find("map(to: a[0:n])"), std::string::npos);
  EXPECT_NE(r.code.find("map(from: c[0:n])"), std::string::npos);
}

TEST(Acc2Omp, EnterExitData) {
  const TranslationResult r = acc2omp(
      "#pragma acc enter data copyin(x[0:n])\n"
      "#pragma acc exit data copyout(x[0:n])\n");
  EXPECT_NE(r.code.find("#pragma omp target enter data"), std::string::npos);
  EXPECT_NE(r.code.find("#pragma omp target exit data"), std::string::npos);
}

TEST(Acc2Omp, UpdateDirectives) {
  const TranslationResult r = acc2omp(
      "#pragma acc update self(x[0:n])\n"
      "#pragma acc update device(x[0:n])\n");
  EXPECT_NE(r.code.find("#pragma omp target update from(x[0:n])"),
            std::string::npos);
  EXPECT_NE(r.code.find("#pragma omp target update to(x[0:n])"),
            std::string::npos);
}

TEST(Acc2Omp, GangVectorVocabulary) {
  const TranslationResult r =
      acc2omp("#pragma acc parallel loop num_gangs(128) vector_length(256)\n");
  EXPECT_NE(r.code.find("num_teams(128)"), std::string::npos);
  EXPECT_NE(r.code.find("thread_limit(256)"), std::string::npos);
}

TEST(Acc2Omp, EmbeddingApiIsRewritten) {
  const TranslationResult r = acc2omp(
      "accx::Accelerator acc(vendor, compiler);\n"
      "accx::data_region data(acc);\n"
      "acc.parallel_loop(n, costs, body);\n");
  EXPECT_NE(r.code.find("ompx::TargetDevice"), std::string::npos);
  EXPECT_NE(r.code.find("ompx::target_data"), std::string::npos);
  EXPECT_NE(r.code.find("ompx::target_teams_distribute_parallel_for"),
            std::string::npos);
}

TEST(Acc2Omp, RuntimeApiIsFlagged) {
  const TranslationResult r =
      acc2omp("int t = acc_get_device_type();\n");
  EXPECT_FALSE(r.clean());
}

TEST(Acc2Omp, AsyncClausesAreFlagged) {
  const TranslationResult r =
      acc2omp("#pragma acc parallel loop async(1)\n");
  EXPECT_FALSE(r.clean());
}

TEST(Acc2Omp, CacheDirectiveFlagged) {
  const TranslationResult r = acc2omp("#pragma acc cache(a[0:64])\n");
  EXPECT_FALSE(r.clean());
  EXPECT_NE(r.code.find("#pragma acc cache"), std::string::npos)
      << "unconvertible directive must stay in place";
}

TEST(Acc2Omp, MixedRealWorldSnippet) {
  const std::string source =
      "void stream_triad(double* a, const double* b, const double* c,\n"
      "                  double scalar, int n) {\n"
      "#pragma acc data copyin(b[0:n], c[0:n]) copyout(a[0:n])\n"
      "  {\n"
      "#pragma acc parallel loop\n"
      "    for (int i = 0; i < n; ++i) a[i] = b[i] + scalar * c[i];\n"
      "  }\n"
      "}\n";
  const TranslationResult r = acc2omp(source);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.code.find("#pragma acc"), std::string::npos);
  EXPECT_NE(r.code.find("for (int i = 0; i < n; ++i)"), std::string::npos);
}

}  // namespace
}  // namespace mcmm::translate
