#include "translate/gpufort.hpp"

#include <gtest/gtest.h>

namespace mcmm::translate {
namespace {

const std::string kCufSource = R"(program saxpy_test
  use cudafor
  implicit none
  real, device :: d_x(N), d_y(N)
  integer :: istat
  istat = cudaMalloc(d_x, N)
  istat = cudaMemcpy(d_x, x, N, cudaMemcpyHostToDevice)
  call saxpy<<<grid, tBlock>>>(a, d_x, d_y, N)
  istat = cudaDeviceSynchronize()
  istat = cudaMemcpy(y, d_y, N, cudaMemcpyDeviceToHost)
  istat = cudaFree(d_x)
end program

attributes(global) subroutine saxpy(a, x, y, n)
  real, value :: a
  real :: x(*), y(*)
  integer, value :: n
  i = (blockIdx%x - 1) * blockDim%x + threadIdx%x
  if (i <= n) y(i) = a * x(i) + y(i)
end subroutine
)";

TEST(Gpufort, ToOpenMPReplacesModuleAndLaunch) {
  const GpufortResult r = gpufort(kCufSource, GpufortMode::ToOpenMP);
  EXPECT_NE(r.code.find("use omp_lib"), std::string::npos);
  EXPECT_EQ(r.code.find("use cudafor"), std::string::npos);
  EXPECT_NE(r.code.find("!$omp target teams distribute parallel do"),
            std::string::npos);
  EXPECT_NE(r.code.find("call saxpy(a, d_x, d_y, N)"), std::string::npos);
  EXPECT_EQ(r.code.find("<<<"), std::string::npos);
}

TEST(Gpufort, ToOpenMPCommentsOutExplicitMemoryManagement) {
  const GpufortResult r = gpufort(kCufSource, GpufortMode::ToOpenMP);
  EXPECT_NE(r.code.find("! gpufort: device data now managed by OpenMP"),
            std::string::npos);
  // Any surviving mention of the CUDA memory API must sit on a Fortran
  // comment line ('!'), never as an executable statement.
  std::istringstream in(r.code);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("cudaMalloc") != std::string::npos ||
        line.find("cudaMemcpy") != std::string::npos ||
        line.find("cudaFree") != std::string::npos) {
      const std::size_t first = line.find_first_not_of(" \t");
      ASSERT_NE(first, std::string::npos);
      EXPECT_EQ(line[first], '!') << line;
    }
  }
}

TEST(Gpufort, ToOpenMPDemotesKernelToHostSubroutine) {
  const GpufortResult r = gpufort(kCufSource, GpufortMode::ToOpenMP);
  EXPECT_EQ(r.code.find("attributes(global)"), std::string::npos);
  EXPECT_NE(r.code.find("subroutine saxpy(a, x, y, n)"), std::string::npos);
  EXPECT_TRUE(r.extracted_kernels.empty());
}

TEST(Gpufort, ToOpenMPStripsDeviceAttribute) {
  const GpufortResult r = gpufort(kCufSource, GpufortMode::ToOpenMP);
  EXPECT_EQ(r.code.find(", device ::"), std::string::npos);
}

TEST(Gpufort, ToHipfortRenamesApiAndModule) {
  const GpufortResult r = gpufort(kCufSource, GpufortMode::ToHipfort);
  EXPECT_NE(r.code.find("use hipfort"), std::string::npos);
  EXPECT_NE(r.code.find("istat = hipMalloc(d_x, N)"), std::string::npos);
  EXPECT_NE(r.code.find("hipMemcpyHostToDevice"), std::string::npos);
  EXPECT_NE(r.code.find("hipDeviceSynchronize"), std::string::npos);
  EXPECT_NE(r.code.find("istat = hipFree(d_x)"), std::string::npos);
  EXPECT_EQ(r.code.find("cudaMalloc"), std::string::npos);
}

TEST(Gpufort, ToHipfortExtractsKernels) {
  const GpufortResult r = gpufort(kCufSource, GpufortMode::ToHipfort);
  ASSERT_EQ(r.extracted_kernels.size(), 1u);
  EXPECT_NE(r.extracted_kernels[0].find("__global__ void saxpy"),
            std::string::npos);
  // The Fortran source keeps a marker comment, not the kernel body.
  EXPECT_NE(r.code.find("! kernel 'saxpy' extracted to HIP C++"),
            std::string::npos);
  EXPECT_EQ(r.code.find("attributes(global)"), std::string::npos);
}

TEST(Gpufort, ToHipfortRewritesLaunchToHipLaunchKernel) {
  const GpufortResult r = gpufort(kCufSource, GpufortMode::ToHipfort);
  EXPECT_NE(r.code.find("call hipLaunchKernel(c_funloc(saxpy), grid, "
                        "tBlock, a, d_x, d_y, N)"),
            std::string::npos);
}

TEST(Gpufort, CleanSourceIsClean) {
  EXPECT_TRUE(gpufort(kCufSource, GpufortMode::ToOpenMP).clean());
  EXPECT_TRUE(gpufort(kCufSource, GpufortMode::ToHipfort).clean());
}

TEST(Gpufort, DiagnosesUncoveredFunctionality) {
  // "The covered functionality is driven by use-case requirements."
  const std::string bad =
      "use cudafor\n"
      "istat = cudaMallocManaged(p, n)\n"
      "!$cuf kernel do <<<*, *>>>\n";
  const GpufortResult r = gpufort(bad, GpufortMode::ToHipfort);
  EXPECT_FALSE(r.clean());
  EXPECT_GE(r.diagnostics.size(), 2u);
}

TEST(Gpufort, StreamsAreOutsideTheSubset) {
  const GpufortResult r = gpufort("istat = cudaStreamCreate(s)\n",
                                  GpufortMode::ToHipfort);
  EXPECT_FALSE(r.clean());
}

TEST(Gpufort, CaseInsensitiveFortran) {
  const GpufortResult r = gpufort(
      "USE CUDAFOR\nISTAT = CUDAMALLOC(D_X, N)\n", GpufortMode::ToHipfort);
  EXPECT_NE(r.code.find("use hipfort"), std::string::npos);
  EXPECT_NE(r.code.find("hipMalloc"), std::string::npos);
}

TEST(Gpufort, EmptySource) {
  const GpufortResult r = gpufort("", GpufortMode::ToOpenMP);
  EXPECT_TRUE(r.code.empty());
  EXPECT_TRUE(r.clean());
}

}  // namespace
}  // namespace mcmm::translate
