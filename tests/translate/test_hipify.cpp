#include <gtest/gtest.h>

#include "translate/translate.hpp"

namespace mcmm::translate {
namespace {

TEST(Hipify, RenamesRuntimeApi) {
  const TranslationResult r = hipify(
      "cudaMalloc(&p, n);\n"
      "cudaMemcpy(d, h, n, cudaMemcpyHostToDevice);\n"
      "cudaDeviceSynchronize();\n"
      "cudaFree(p);\n");
  EXPECT_NE(r.code.find("hipMalloc(&p, n);"), std::string::npos);
  EXPECT_NE(r.code.find("hipMemcpy(d, h, n, hipMemcpyHostToDevice);"),
            std::string::npos);
  EXPECT_NE(r.code.find("hipDeviceSynchronize();"), std::string::npos);
  EXPECT_NE(r.code.find("hipFree(p);"), std::string::npos);
  EXPECT_EQ(r.code.find("cuda"), std::string::npos);
  EXPECT_TRUE(r.clean());
}

TEST(Hipify, AsyncVariantWinsOverPrefix) {
  // Longest-match: cudaMemcpyAsync must not become hipMemcpyAsync via
  // cudaMemcpy + "Async".
  const TranslationResult r = hipify("cudaMemcpyAsync(d, h, n, k, s);");
  EXPECT_NE(r.code.find("hipMemcpyAsync"), std::string::npos);
}

TEST(Hipify, LibraryCallsBecomeHipLibraries) {
  // The paper, item 3: hipblasSaxpy() instead of cublasSaxpy().
  const TranslationResult r = hipify("cublasSaxpy(handle, n, &a, x, 1, y, 1);");
  EXPECT_NE(r.code.find("hipblasSaxpy"), std::string::npos);
}

TEST(Hipify, LeavesStringsAndCommentsAlone) {
  const TranslationResult r = hipify(
      "// cudaMalloc in a comment stays\n"
      "const char* s = \"cudaMalloc\";\n"
      "cudaMalloc(&p, n);\n");
  EXPECT_NE(r.code.find("// cudaMalloc in a comment stays"),
            std::string::npos);
  EXPECT_NE(r.code.find("\"cudaMalloc\""), std::string::npos);
  EXPECT_NE(r.code.find("hipMalloc(&p, n);"), std::string::npos);
}

TEST(Hipify, DoesNotTouchIdentifierSubstrings) {
  const TranslationResult r = hipify("int my_cudaMalloc_count = 0;");
  EXPECT_EQ(r.code, "int my_cudaMalloc_count = 0;");
}

TEST(Hipify, FlagsUnconvertibleConstructs) {
  const TranslationResult r = hipify(
      "cudaMallocManaged(&p, n);\n"
      "cooperative_groups::this_grid().sync();\n");
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.unconverted_count(), 2u);
}

TEST(Hipify, ErrorEnumMapping) {
  const TranslationResult r =
      hipify("if (err == cudaErrorMemoryAllocation) return;");
  EXPECT_NE(r.code.find("hipErrorOutOfMemory"), std::string::npos);
}

TEST(Hipify, EmbeddingNamespaceAndLaunch) {
  const TranslationResult r = hipify(
      "cudax::cudaLaunch(grid, block, kernel, a, b);\n");
  EXPECT_NE(r.code.find("hipx::hipLaunchKernelGGL"), std::string::npos);
}

TEST(Hipify, EmptyInput) {
  const TranslationResult r = hipify("");
  EXPECT_TRUE(r.code.empty());
  EXPECT_TRUE(r.clean());
}

TEST(Hipify, DiagnosticsNameFiredRules) {
  const TranslationResult r = hipify("cudaMalloc(&p, n);");
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_EQ(r.diagnostics[0].token, "cudaMalloc");
  EXPECT_EQ(r.diagnostics[0].severity, Severity::Info);
}

TEST(Hipify, CoverageIsHigh) {
  // HIPIFY is the mature near-1:1 route (rated 'indirect good support').
  EXPECT_GT(hipify_coverage().ratio(), 0.8);
}

}  // namespace
}  // namespace mcmm::translate
