#include <gtest/gtest.h>

#include "translate/translate.hpp"

namespace mcmm::translate {
namespace {

TEST(Cuda2Sycl, MemoryBecomesUsm) {
  const TranslationResult r = cuda2sycl(
      "cudaMalloc(&p, n);\n"
      "cudaMemcpy(d, h, n, cudaMemcpyHostToDevice);\n"
      "cudaFree(p);\n");
  EXPECT_NE(r.code.find("q.malloc_device"), std::string::npos);
  EXPECT_NE(r.code.find("q.memcpy(d, h, n, /*host-to-device*/);"),
            std::string::npos);
  EXPECT_NE(r.code.find("q.free(p);"), std::string::npos);
}

TEST(Cuda2Sycl, SynchronizationBecomesWait) {
  const TranslationResult r = cuda2sycl("cudaDeviceSynchronize();");
  EXPECT_NE(r.code.find("q.wait();"), std::string::npos);
}

TEST(Cuda2Sycl, LaunchBecomesParallelFor) {
  const TranslationResult r =
      cuda2sycl("cudax::cudaLaunch(grid, block, kernel, a);");
  EXPECT_NE(r.code.find("syclx::q.parallel_for"), std::string::npos);
}

TEST(Cuda2Sycl, WarpIntrinsicsAreFlagged) {
  const TranslationResult r = cuda2sycl(
      "float v = __shfl_down_sync(mask, x, 1);\n"
      "__syncwarp();\n");
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.unconverted_count(), 2u);
  bool mentions_subgroup = false;
  for (const Diagnostic& d : r.diagnostics) {
    if (d.message.find("sub-group") != std::string::npos) {
      mentions_subgroup = true;
    }
  }
  EXPECT_TRUE(mentions_subgroup);
}

TEST(Cuda2Sycl, BlasIsFlaggedNotSilentlyDropped) {
  const TranslationResult r = cuda2sycl("cublasSgemm(h, a, b, c);");
  EXPECT_FALSE(r.clean());
}

TEST(Cuda2Sycl, MoreManualWorkThanHipify) {
  // The paper's framing: HIP is CUDA-shaped, SYCL is "an entirely
  // different programming model". The translators reflect this: the same
  // warp-level CUDA code converts cleanly under hipify but not under
  // cuda2sycl.
  const std::string source =
      "cudaMalloc(&p, n);\n"
      "float v = __shfl_down_sync(mask, x, 1);\n";
  EXPECT_TRUE(hipify(source).clean());
  EXPECT_FALSE(cuda2sycl(source).clean());
}

TEST(Cuda2Sycl, AtomicsAreFlaggedForReview) {
  const TranslationResult r = cuda2sycl("atomicAdd(&x, 1.0f);");
  EXPECT_FALSE(r.clean());
}

TEST(Cuda2Sycl, CoverageBelowHipify) {
  EXPECT_LT(cuda2sycl_coverage().ratio(), hipify_coverage().ratio());
}

}  // namespace
}  // namespace mcmm::translate
