#include <gtest/gtest.h>

#include "translate/rewriter.hpp"

namespace mcmm::translate::detail {
namespace {

TEST(Rewriter, SimpleReplacement) {
  const TranslationResult r =
      rewrite("foo(x); foo(y);", {{"foo", "bar", ""}}, {});
  EXPECT_EQ(r.code, "bar(x); bar(y);");
  // One diagnostic per distinct rule, not per occurrence.
  EXPECT_EQ(r.diagnostics.size(), 1u);
}

TEST(Rewriter, LongestMatchWins) {
  const TranslationResult r = rewrite(
      "fooBar(); foo();",
      {{"foo", "X", ""}, {"fooBar", "Y", ""}}, {});
  EXPECT_EQ(r.code, "Y(); X();");
}

TEST(Rewriter, IdentifierBoundariesRespected) {
  const TranslationResult r =
      rewrite("myfoo foo foo2 _foo", {{"foo", "bar", ""}}, {});
  EXPECT_EQ(r.code, "myfoo bar foo2 _foo");
}

TEST(Rewriter, SkipsLineComments) {
  const TranslationResult r =
      rewrite("// foo here\nfoo();", {{"foo", "bar", ""}}, {});
  EXPECT_EQ(r.code, "// foo here\nbar();");
}

TEST(Rewriter, SkipsBlockComments) {
  const TranslationResult r =
      rewrite("/* foo */ foo(); /* more foo */", {{"foo", "bar", ""}}, {});
  EXPECT_EQ(r.code, "/* foo */ bar(); /* more foo */");
}

TEST(Rewriter, SkipsStringAndCharLiterals) {
  const TranslationResult r = rewrite(
      "s = \"foo\"; c = 'f'; foo();", {{"foo", "bar", ""}}, {});
  EXPECT_EQ(r.code, "s = \"foo\"; c = 'f'; bar();");
}

TEST(Rewriter, EscapedQuotesInsideStrings) {
  const TranslationResult r = rewrite(
      "s = \"a \\\" foo\"; foo();", {{"foo", "bar", ""}}, {});
  EXPECT_EQ(r.code, "s = \"a \\\" foo\"; bar();");
}

TEST(Rewriter, BlockersReportButKeepCode) {
  const TranslationResult r =
      rewrite("dangerous();", {}, {{"dangerous", "needs manual work"}});
  EXPECT_EQ(r.code, "dangerous();");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].severity, Severity::Unconverted);
  EXPECT_FALSE(r.clean());
}

TEST(Rewriter, BlockerInCommentDoesNotFire) {
  const TranslationResult r =
      rewrite("// dangerous\nok();", {}, {{"dangerous", "x"}});
  EXPECT_TRUE(r.clean());
}

TEST(Rewriter, ContainsToken) {
  EXPECT_TRUE(contains_token("a foo b", "foo"));
  EXPECT_FALSE(contains_token("a myfoo b", "foo"));
  EXPECT_FALSE(contains_token("\"foo\"", "foo"));
  EXPECT_FALSE(contains_token("// foo", "foo"));
  EXPECT_TRUE(contains_token("foo", "foo"));
}

TEST(Rewriter, PragmaRulesWithSpaces) {
  // Multi-word 'from' strings (directives) work because matching is
  // positional, not tokenizing.
  const TranslationResult r = rewrite(
      "#pragma acc parallel loop\nbody();",
      {{"#pragma acc parallel loop", "#pragma omp target", ""}}, {});
  EXPECT_EQ(r.code, "#pragma omp target\nbody();");
}

TEST(Rewriter, UnterminatedStringDoesNotCrash) {
  const TranslationResult r =
      rewrite("s = \"unterminated foo", {{"foo", "bar", ""}}, {});
  EXPECT_EQ(r.code, "s = \"unterminated foo");
}

}  // namespace
}  // namespace mcmm::translate::detail
