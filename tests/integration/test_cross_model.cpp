// Cross-model integration tests: the same numerical workload produces
// bitwise-identical results through every programming-model embedding —
// the "same source, many models" property behind the paper's portability
// narrative.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "models/accx/accx.hpp"
#include "models/alpakax/alpakax.hpp"
#include "models/cudax/cudax.hpp"
#include "models/hipx/hipx.hpp"
#include "models/kokkosx/kokkosx.hpp"
#include "models/ompx/ompx.hpp"
#include "models/stdparx/stdparx.hpp"
#include "models/syclx/syclx.hpp"

namespace mcmm {
namespace {

constexpr std::size_t kN = 4096;

/// The reference computation on the host: y = a*x + y, then sum(y).
double reference_result() {
  std::vector<double> x(kN), y(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    x[i] = static_cast<double>(i % 97) * 0.5;
    y[i] = static_cast<double>(i % 31) * 0.25;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    y[i] = 1.5 * x[i] + y[i];
    sum += y[i];
  }
  return sum;
}

void make_inputs(std::vector<double>& x, std::vector<double>& y) {
  x.resize(kN);
  y.resize(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    x[i] = static_cast<double>(i % 97) * 0.5;
    y[i] = static_cast<double>(i % 31) * 0.25;
  }
}

double via_cudax() {
  std::vector<double> x, y;
  make_inputs(x, y);
  double *dx = nullptr, *dy = nullptr;
  EXPECT_EQ(cudax::cudaMalloc(reinterpret_cast<void**>(&dx), kN * 8),
            cudax::cudaError_t::cudaSuccess);
  EXPECT_EQ(cudax::cudaMalloc(reinterpret_cast<void**>(&dy), kN * 8),
            cudax::cudaError_t::cudaSuccess);
  (void)cudax::cudaMemcpy(dx, x.data(), kN * 8,
                          cudax::cudaMemcpyHostToDevice);
  (void)cudax::cudaMemcpy(dy, y.data(), kN * 8,
                          cudax::cudaMemcpyHostToDevice);
  (void)cudax::cudaLaunch(
      cudax::dim3{(kN + 255) / 256, 1, 1}, cudax::dim3{256, 1, 1},
      [](const cudax::KernelCtx& ctx, const double* px, double* py,
         std::size_t n) {
        const std::size_t i = ctx.global_x();
        if (i < n) py[i] = 1.5 * px[i] + py[i];
      },
      static_cast<const double*>(dx), dy, kN);
  (void)cudax::cudaMemcpy(y.data(), dy, kN * 8,
                          cudax::cudaMemcpyDeviceToHost);
  (void)cudax::cudaFree(dx);
  (void)cudax::cudaFree(dy);
  return std::accumulate(y.begin(), y.end(), 0.0);
}

double via_hipx(hipx::Platform platform) {
  hipx::set_platform(platform);
  std::vector<double> x, y;
  make_inputs(x, y);
  double *dx = nullptr, *dy = nullptr;
  EXPECT_EQ(hipx::hipMalloc(reinterpret_cast<void**>(&dx), kN * 8),
            hipx::hipError_t::hipSuccess);
  EXPECT_EQ(hipx::hipMalloc(reinterpret_cast<void**>(&dy), kN * 8),
            hipx::hipError_t::hipSuccess);
  (void)hipx::hipMemcpy(dx, x.data(), kN * 8, hipx::hipMemcpyHostToDevice);
  (void)hipx::hipMemcpy(dy, y.data(), kN * 8, hipx::hipMemcpyHostToDevice);
  (void)hipx::hipLaunchKernelGGL(
      [](const hipx::KernelCtx& ctx, const double* px, double* py,
         std::size_t n) {
        const std::size_t i = ctx.global_x();
        if (i < n) py[i] = 1.5 * px[i] + py[i];
      },
      hipx::dim3{(kN + 255) / 256, 1, 1}, hipx::dim3{256, 1, 1},
      static_cast<const double*>(dx), dy, kN);
  (void)hipx::hipMemcpy(y.data(), dy, kN * 8, hipx::hipMemcpyDeviceToHost);
  (void)hipx::hipFree(dx);
  (void)hipx::hipFree(dy);
  return std::accumulate(y.begin(), y.end(), 0.0);
}

double via_syclx(Vendor vendor) {
  syclx::queue q(vendor, syclx::Implementation::DPCpp);
  std::vector<double> x, y;
  make_inputs(x, y);
  double* dx = q.malloc_device<double>(kN);
  double* dy = q.malloc_device<double>(kN);
  q.memcpy(dx, x.data(), kN * 8);
  q.memcpy(dy, y.data(), kN * 8);
  q.parallel_for(syclx::range{kN},
                 [dx, dy](syclx::id i) { dy[i] = 1.5 * dx[i] + dy[i]; });
  q.memcpy(y.data(), dy, kN * 8);
  q.free(dx);
  q.free(dy);
  return std::accumulate(y.begin(), y.end(), 0.0);
}

double via_ompx(Vendor vendor, ompx::Compiler compiler) {
  ompx::TargetDevice dev(vendor, compiler);
  std::vector<double> x, y;
  make_inputs(x, y);
  ompx::target_data data(dev);
  const double* dx = data.map_to(x.data(), kN);
  double* dy = data.map_tofrom(y.data(), kN);
  ompx::target_teams_distribute_parallel_for(
      dev, kN, gpusim::KernelCosts{},
      [dx, dy](std::size_t i) { dy[i] = 1.5 * dx[i] + dy[i]; });
  data.update_from(y.data());
  return std::accumulate(y.begin(), y.end(), 0.0);
}

double via_accx(Vendor vendor, accx::Compiler compiler) {
  accx::Accelerator acc(vendor, compiler);
  std::vector<double> x, y;
  make_inputs(x, y);
  double sum = 0.0;
  {
    accx::data_region data(acc);
    const double* dx = data.copyin(x.data(), kN);
    double* dy = data.copy(y.data(), kN);
    acc.parallel_loop(kN, gpusim::KernelCosts{},
                      [dx, dy](std::size_t i) {
                        dy[i] = 1.5 * dx[i] + dy[i];
                      });
    sum = acc.parallel_loop_reduce(kN, 0.0, gpusim::KernelCosts{},
                                   [dy](std::size_t i) { return dy[i]; });
  }
  return sum;
}

double via_stdparx(Vendor vendor, stdparx::Runtime runtime) {
  const auto pol = stdparx::par_gpu(vendor, runtime);
  std::vector<double> x, y;
  make_inputs(x, y);
  stdparx::device_vector<double> dx(pol, kN);
  stdparx::device_vector<double> dy(pol, kN);
  dx.upload(x.data(), kN);
  dy.upload(y.data(), kN);
  stdparx::transform(pol, dx.begin(), dx.end(), dy.begin(), dy.begin(),
                     [](double a, double b) { return 1.5 * a + b; });
  return stdparx::reduce(pol, dy.begin(), dy.end(), 0.0);
}

double via_kokkosx(kokkosx::ExecSpace space, Vendor vendor) {
  kokkosx::Execution exec(space, vendor);
  std::vector<double> x, y;
  make_inputs(x, y);
  kokkosx::View<double> dx(exec, "x", kN);
  kokkosx::View<double> dy(exec, "y", kN);
  kokkosx::deep_copy_to_device(dx, x.data());
  kokkosx::deep_copy_to_device(dy, y.data());
  kokkosx::parallel_for(exec, kokkosx::RangePolicy{0, kN},
                        gpusim::KernelCosts{}, [dx, dy](std::size_t i) {
                          dy(i) = 1.5 * dx(i) + dy(i);
                        });
  double sum = 0.0;
  kokkosx::parallel_reduce(
      exec, kokkosx::RangePolicy{0, kN}, gpusim::KernelCosts{},
      [dy](std::size_t i, double& update) { update += dy(i); }, sum);
  return sum;
}

template <typename TAcc>
double via_alpakax() {
  alpakax::Queue<TAcc> queue;
  std::vector<double> x, y;
  make_inputs(x, y);
  auto dx = alpakax::alloc_buf<double>(queue, kN);
  auto dy = alpakax::alloc_buf<double>(queue, kN);
  alpakax::memcpy_to_device(queue, dx, x.data(), kN);
  alpakax::memcpy_to_device(queue, dy, y.data(), kN);
  alpakax::exec(queue, alpakax::work_div_for(kN), gpusim::KernelCosts{},
                [](const alpakax::AccCtx& ctx, const double* px, double* py,
                   std::size_t n) {
                  const std::size_t i = ctx.global_thread_idx;
                  if (i < n) py[i] = 1.5 * px[i] + py[i];
                },
                static_cast<const double*>(dx.data()), dy.data(), kN);
  alpakax::memcpy_to_host(queue, y.data(), dy, kN);
  return std::accumulate(y.begin(), y.end(), 0.0);
}

TEST(CrossModel, EveryRouteMatchesTheReferenceBitwise) {
  const double reference = reference_result();
  EXPECT_EQ(via_cudax(), reference);
  EXPECT_EQ(via_hipx(hipx::Platform::amd), reference);
  EXPECT_EQ(via_hipx(hipx::Platform::nvidia), reference);
  EXPECT_EQ(via_syclx(Vendor::Intel), reference);
  EXPECT_EQ(via_syclx(Vendor::NVIDIA), reference);
  EXPECT_EQ(via_syclx(Vendor::AMD), reference);
  EXPECT_EQ(via_ompx(Vendor::NVIDIA, ompx::Compiler::NVHPC), reference);
  EXPECT_EQ(via_ompx(Vendor::AMD, ompx::Compiler::AOMP), reference);
  EXPECT_EQ(via_ompx(Vendor::Intel, ompx::Compiler::ICPX), reference);
  EXPECT_EQ(via_accx(Vendor::NVIDIA, accx::Compiler::NVHPC), reference);
  EXPECT_EQ(via_accx(Vendor::AMD, accx::Compiler::Clacc), reference);
  EXPECT_EQ(via_stdparx(Vendor::NVIDIA, stdparx::Runtime::NVHPC),
            reference);
  EXPECT_EQ(via_stdparx(Vendor::Intel, stdparx::Runtime::OneDPL),
            reference);
  EXPECT_EQ(via_kokkosx(kokkosx::ExecSpace::Cuda, Vendor::NVIDIA),
            reference);
  EXPECT_EQ(via_kokkosx(kokkosx::ExecSpace::HIP, Vendor::AMD), reference);
  EXPECT_EQ(via_kokkosx(kokkosx::ExecSpace::SYCL, Vendor::Intel),
            reference);
  EXPECT_EQ(via_alpakax<alpakax::AccGpuCudaRt>(), reference);
  EXPECT_EQ(via_alpakax<alpakax::AccGpuHipRt>(), reference);
  EXPECT_EQ(via_alpakax<alpakax::AccGpuSyclIntel>(), reference);
}

TEST(CrossModel, NoDeviceMemoryLeaksAcrossTheSweep) {
  // Run one full route sweep and verify allocation counts return to the
  // baseline on each simulated device.
  std::map<Vendor, std::size_t> before;
  for (const Vendor v : kAllVendors) {
    before[v] =
        gpusim::Platform::instance().device(v).allocator().live_allocations();
  }
  (void)via_cudax();
  (void)via_hipx(hipx::Platform::amd);
  (void)via_syclx(Vendor::Intel);
  (void)via_ompx(Vendor::AMD, ompx::Compiler::AOMP);
  (void)via_accx(Vendor::NVIDIA, accx::Compiler::NVHPC);
  (void)via_stdparx(Vendor::Intel, stdparx::Runtime::OneDPL);
  (void)via_kokkosx(kokkosx::ExecSpace::Cuda, Vendor::NVIDIA);
  (void)via_alpakax<alpakax::AccGpuHipRt>();
  for (const Vendor v : kAllVendors) {
    EXPECT_EQ(gpusim::Platform::instance()
                  .device(v)
                  .allocator()
                  .live_allocations(),
              before[v])
        << to_string(v);
  }
}

}  // namespace
}  // namespace mcmm
