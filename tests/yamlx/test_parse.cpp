#include "yamlx/parse.hpp"

#include <gtest/gtest.h>

namespace mcmm::yamlx {
namespace {

TEST(Parse, EmptyDocumentIsEmptyMapping) {
  const Node n = parse("");
  EXPECT_TRUE(n.is_mapping());
  EXPECT_EQ(n.size(), 0u);
}

TEST(Parse, SimpleMapping) {
  const Node n = parse("key: value\nother: 17\n");
  EXPECT_EQ(n.at("key").as_string(), "value");
  EXPECT_EQ(n.at("other").as_int(), 17);
}

TEST(Parse, LeadingDocumentMarker) {
  const Node n = parse("---\nkey: value\n");
  EXPECT_EQ(n.at("key").as_string(), "value");
}

TEST(Parse, SimpleSequence) {
  const Node n = parse("- a\n- b\n- c\n");
  ASSERT_TRUE(n.is_sequence());
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n.as_sequence()[2].as_string(), "c");
}

TEST(Parse, NestedMapping) {
  const Node n = parse(
      "outer:\n"
      "  inner: 1\n"
      "  deeper:\n"
      "    leaf: x\n");
  EXPECT_EQ(n.at("outer").at("inner").as_int(), 1);
  EXPECT_EQ(n.at("outer").at("deeper").at("leaf").as_string(), "x");
}

TEST(Parse, SequenceOfMappings) {
  const Node n = parse(
      "items:\n"
      "  - name: first\n"
      "    value: 1\n"
      "  - name: second\n"
      "    value: 2\n");
  const Sequence& items = n.at("items").as_sequence();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].at("name").as_string(), "first");
  EXPECT_EQ(items[1].at("value").as_int(), 2);
}

TEST(Parse, SequenceAtKeyIndentation) {
  // Sequences indented at the same level as their key are valid YAML.
  const Node n = parse(
      "flags:\n"
      "- -O2\n"
      "- -g\n");
  ASSERT_EQ(n.at("flags").size(), 2u);
  EXPECT_EQ(n.at("flags").as_sequence()[0].as_string(), "-O2");
}

TEST(Parse, CommentsAndBlankLines) {
  const Node n = parse(
      "# full-line comment\n"
      "\n"
      "key: value  # trailing comment\n"
      "   \n"
      "other: v2\n");
  EXPECT_EQ(n.at("key").as_string(), "value");
  EXPECT_EQ(n.at("other").as_string(), "v2");
}

TEST(Parse, HashInsideScalarIsNotComment) {
  const Node n = parse("key: a#b\n");
  EXPECT_EQ(n.at("key").as_string(), "a#b");
}

TEST(Parse, DoubleQuotedScalars) {
  const Node n = parse("key: \"a: b # c\"\n");
  EXPECT_EQ(n.at("key").as_string(), "a: b # c");
}

TEST(Parse, DoubleQuotedEscapes) {
  const Node n = parse("key: \"line\\nbreak\\t\\\"q\\\\\"\n");
  EXPECT_EQ(n.at("key").as_string(), "line\nbreak\t\"q\\");
}

TEST(Parse, SingleQuotedScalars) {
  const Node n = parse("key: 'it''s #fine'\n");
  EXPECT_EQ(n.at("key").as_string(), "it's #fine");
}

TEST(Parse, EmptyValueIsEmptyScalar) {
  const Node n = parse("key:\nother: x\n");
  EXPECT_TRUE(n.at("key").is_scalar());
  EXPECT_EQ(n.at("key").as_string(), "");
}

TEST(Parse, ColonInsideValueIsAllowed) {
  const Node n = parse("url: https://example.com/x\n");
  EXPECT_EQ(n.at("url").as_string(), "https://example.com/x");
}

TEST(Parse, DeepNesting) {
  const Node n = parse(
      "a:\n"
      "  - b:\n"
      "      - c: 1\n"
      "        d: 2\n");
  const Node& b = n.at("a").as_sequence()[0].at("b");
  EXPECT_EQ(b.as_sequence()[0].at("d").as_int(), 2);
}

// --- Error cases ---

TEST(ParseError, DuplicateKey) {
  EXPECT_THROW((void)parse("k: 1\nk: 2\n"), ParseError);
}

TEST(ParseError, TabIndentation) {
  EXPECT_THROW((void)parse("k:\n\tv: 1\n"), ParseError);
}

TEST(ParseError, UnterminatedQuote) {
  EXPECT_THROW((void)parse("k: \"oops\n"), ParseError);
}

TEST(ParseError, FlowCollectionsRejected) {
  EXPECT_THROW((void)parse("k: [1, 2]\n"), ParseError);
  EXPECT_THROW((void)parse("k: {a: 1}\n"), ParseError);
}

TEST(ParseError, AnchorsRejected) {
  EXPECT_THROW((void)parse("k: &anchor v\n"), ParseError);
  EXPECT_THROW((void)parse("k: *ref\n"), ParseError);
}

TEST(ParseError, BlockScalarsRejected) {
  EXPECT_THROW((void)parse("k: |\n  text\n"), ParseError);
  EXPECT_THROW((void)parse("k: >\n  text\n"), ParseError);
}

TEST(ParseError, MultiDocumentRejected) {
  EXPECT_THROW((void)parse("a: 1\n---\nb: 2\n"), ParseError);
}

TEST(ParseError, NonMappingLineInsideMapping) {
  EXPECT_THROW((void)parse("a: 1\njust a scalar\n"), ParseError);
}

TEST(ParseError, ReportsLineNumber) {
  try {
    (void)parse("a: 1\nb: 2\nc: [x]\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

}  // namespace
}  // namespace mcmm::yamlx
