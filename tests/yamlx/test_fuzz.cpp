// Fuzz-lite robustness tests for the YAML parser: deterministic mutations
// of a valid document must either parse or throw ParseError/TypeError —
// never crash, hang, or corrupt memory (run under ASan in CI setups).

#include <gtest/gtest.h>

#include <random>

#include "yamlx/emit.hpp"
#include "yamlx/matrix_yaml.hpp"
#include "yamlx/parse.hpp"

#include "core/error.hpp"
#include "data/dataset.hpp"
#include "support/rng.hpp"

namespace mcmm::yamlx {
namespace {

/// Deterministic seeded generator (shared test helper) so failures
/// reproduce.
using Rng = mcmm::testing::rng;

[[nodiscard]] std::string base_document() {
  Node root = Node::mapping();
  root.set("title", Node::scalar("fuzz target"));
  Node seq = Node::sequence();
  for (int i = 0; i < 4; ++i) {
    Node item = Node::mapping();
    item.set("id", Node::scalar(std::to_string(i)));
    item.set("label", Node::scalar("value: with colon #" + std::to_string(i)));
    Node nested = Node::sequence();
    nested.push_back(Node::scalar("a"));
    nested.push_back(Node::scalar("b"));
    item.set("tags", std::move(nested));
    seq.push_back(std::move(item));
  }
  root.set("items", std::move(seq));
  return emit(root);
}

void expect_parse_or_clean_error(const std::string& doc) {
  try {
    const Node n = parse(doc);
    (void)n.size();
  } catch (const ParseError&) {
    // acceptable
  } catch (const TypeError&) {
    // acceptable
  }
}

TEST(YamlFuzz, SingleCharacterMutations) {
  const std::string base = base_document();
  Rng rng(0x9E3779B97F4A7C15ull);
  const char charset[] = ":-#\"' \n\tabz[]{}&*|>%@";
  for (int round = 0; round < 500; ++round) {
    std::string doc = base;
    const std::size_t pos = rng.below(doc.size());
    doc[pos] = charset[rng.below(sizeof(charset) - 1)];
    expect_parse_or_clean_error(doc);
  }
}

TEST(YamlFuzz, TruncationsAtEveryBoundary) {
  const std::string base = base_document();
  for (std::size_t len = 0; len <= base.size(); ++len) {
    expect_parse_or_clean_error(base.substr(0, len));
  }
}

TEST(YamlFuzz, RandomInsertions) {
  const std::string base = base_document();
  Rng rng(0xDEADBEEFCAFEBABEull);
  const char charset[] = ":-#\"'\n  ";
  for (int round = 0; round < 300; ++round) {
    std::string doc = base;
    const std::size_t pos = rng.below(doc.size());
    doc.insert(pos, 1, charset[rng.below(sizeof(charset) - 1)]);
    expect_parse_or_clean_error(doc);
  }
}

TEST(YamlFuzz, LineShuffles) {
  // Reordering lines produces structurally odd but crash-free inputs.
  const std::string base = base_document();
  std::vector<std::string> lines;
  std::istringstream in(base);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  Rng rng(42);
  for (int round = 0; round < 100; ++round) {
    std::vector<std::string> shuffled = lines;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
    }
    std::string doc;
    for (const std::string& l : shuffled) doc += l + "\n";
    expect_parse_or_clean_error(doc);
  }
}

TEST(YamlFuzz, MatrixDocumentMutations) {
  // Mutating the real dataset document must never crash the full
  // from-YAML pipeline either.
  const std::string base =
      matrix_to_yaml_text(data::paper_matrix()).substr(0, 4000);
  Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    std::string doc = base;
    doc[rng.below(doc.size())] = static_cast<char>('!' + rng.below(90));
    try {
      (void)matrix_from_yaml_text(doc);
    } catch (const ParseError&) {
    } catch (const TypeError&) {
    } catch (const mcmm::Error&) {  // IntegrityError from validation
    }
  }
}

TEST(YamlFuzz, DeepNestingDoesNotOverflow) {
  // 2000 levels of nesting: the recursive-descent parser must survive
  // (each level is one stack frame; keep depth bounded but significant).
  std::string doc;
  std::string pad;
  for (int depth = 0; depth < 500; ++depth) {
    doc += pad + "k:\n";
    pad += "  ";
  }
  doc += pad + "leaf: 1\n";
  const Node n = parse(doc);
  const Node* cursor = &n;
  for (int depth = 0; depth < 500; ++depth) {
    cursor = &cursor->at("k");
  }
  EXPECT_EQ(cursor->at("leaf").as_int(), 1);
}

}  // namespace
}  // namespace mcmm::yamlx
