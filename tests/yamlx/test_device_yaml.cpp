#include "yamlx/device_yaml.hpp"

#include <gtest/gtest.h>

#include "gpusim/device.hpp"

namespace mcmm::yamlx {
namespace {

TEST(DeviceYaml, RoundTripPreservesAllPresets) {
  for (const Vendor v : kAllVendors) {
    const gpusim::DeviceDescriptor original = gpusim::descriptor_for(v);
    const gpusim::DeviceDescriptor round =
        descriptor_from_yaml_text(descriptor_to_yaml_text(original));
    EXPECT_EQ(round.vendor, original.vendor);
    EXPECT_EQ(round.name, original.name);
    EXPECT_EQ(round.compute_units, original.compute_units);
    EXPECT_DOUBLE_EQ(round.clock_ghz, original.clock_ghz);
    EXPECT_EQ(round.memory_bytes, original.memory_bytes);
    EXPECT_DOUBLE_EQ(round.mem_bandwidth_gbps, original.mem_bandwidth_gbps);
    EXPECT_DOUBLE_EQ(round.kernel_launch_latency_us,
                     original.kernel_launch_latency_us);
    EXPECT_EQ(round.warp_size, original.warp_size);
  }
}

TEST(DeviceYaml, HandWrittenConfigWithDefaults) {
  // A minimal config: unspecified keys fall back to the vendor preset.
  const gpusim::DeviceDescriptor d = descriptor_from_yaml_text(
      "vendor: AMD\n"
      "name: hypothetical MI400\n"
      "mem_bandwidth_gbps: 6000\n");
  EXPECT_EQ(d.vendor, Vendor::AMD);
  EXPECT_EQ(d.name, "hypothetical MI400");
  EXPECT_DOUBLE_EQ(d.mem_bandwidth_gbps, 6000.0);
  // Defaults from the MI250X-like preset.
  EXPECT_EQ(d.warp_size, 64u);
  EXPECT_EQ(d.memory_bytes, gpusim::mi250x_like().memory_bytes);
}

TEST(DeviceYaml, UnknownKeyIsATypo) {
  EXPECT_THROW((void)descriptor_from_yaml_text(
                   "vendor: AMD\nmem_bandwith_gbps: 6000\n"),
               TypeError);
}

TEST(DeviceYaml, BadVendorThrows) {
  EXPECT_THROW((void)descriptor_from_yaml_text("vendor: Imagination\n"),
               TypeError);
}

TEST(DeviceYaml, MissingVendorThrows) {
  EXPECT_THROW((void)descriptor_from_yaml_text("name: no vendor\n"),
               TypeError);
}

TEST(DeviceYaml, CustomDeviceDrivesTheSimulator) {
  // The point of the feature: benchmark a GPU that does not exist yet.
  const gpusim::DeviceDescriptor next_gen = descriptor_from_yaml_text(
      "vendor: NVIDIA\n"
      "name: hypothetical R100\n"
      "mem_bandwidth_gbps: 8000\n"
      "kernel_launch_latency_us: 2\n");
  gpusim::Device dev(next_gen);
  gpusim::KernelCosts costs;
  costs.bytes_read = 1e9;
  const gpusim::Event e = dev.default_queue().launch(
      gpusim::launch_1d(1024, 256), costs, [](const gpusim::WorkItem&) {});
  // ~8 TB/s at 88 % stream efficiency: 1 GB in ~142 us + 2 us launch.
  EXPECT_GT(e.duration_us(), 130.0);
  EXPECT_LT(e.duration_us(), 160.0);
}

}  // namespace
}  // namespace mcmm::yamlx
