#include "yamlx/node.hpp"

#include <gtest/gtest.h>

namespace mcmm::yamlx {
namespace {

TEST(Node, DefaultIsEmptyScalar) {
  const Node n;
  EXPECT_TRUE(n.is_scalar());
  EXPECT_EQ(n.as_string(), "");
}

TEST(Node, ScalarAccessors) {
  EXPECT_EQ(Node::scalar("42").as_int(), 42);
  EXPECT_EQ(Node::scalar("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(Node::scalar("2.5").as_double(), 2.5);
  EXPECT_TRUE(Node::scalar("true").as_bool());
  EXPECT_TRUE(Node::scalar("Yes").as_bool());
  EXPECT_FALSE(Node::scalar("off").as_bool());
}

TEST(Node, ScalarAccessorErrors) {
  EXPECT_THROW((void)Node::scalar("x").as_int(), TypeError);
  EXPECT_THROW((void)Node::scalar("1.5").as_int(), TypeError);
  EXPECT_THROW((void)Node::scalar("abc").as_double(), TypeError);
  EXPECT_THROW((void)Node::scalar("2.5x").as_double(), TypeError);
  EXPECT_THROW((void)Node::scalar("maybe").as_bool(), TypeError);
}

TEST(Node, KindMismatchThrows) {
  const Node s = Node::scalar("x");
  EXPECT_THROW((void)s.as_sequence(), TypeError);
  EXPECT_THROW((void)s.as_mapping(), TypeError);
  const Node m = Node::mapping();
  EXPECT_THROW((void)m.as_string(), TypeError);
}

TEST(Node, MappingPreservesInsertionOrder) {
  Node m = Node::mapping();
  m.set("zebra", Node::scalar("1"));
  m.set("alpha", Node::scalar("2"));
  m.set("mid", Node::scalar("3"));
  const Mapping& entries = m.as_mapping();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, "zebra");
  EXPECT_EQ(entries[1].first, "alpha");
  EXPECT_EQ(entries[2].first, "mid");
}

TEST(Node, SetOverwritesExistingKey) {
  Node m = Node::mapping();
  m.set("k", Node::scalar("1"));
  m.set("k", Node::scalar("2"));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at("k").as_string(), "2");
}

TEST(Node, FindAndAt) {
  Node m = Node::mapping();
  m.set("k", Node::scalar("v"));
  EXPECT_NE(m.find("k"), nullptr);
  EXPECT_EQ(m.find("missing"), nullptr);
  EXPECT_EQ(m.at("k").as_string(), "v");
  EXPECT_THROW((void)m.at("missing"), TypeError);
}

TEST(Node, SequenceBuilder) {
  Node s = Node::sequence();
  s.push_back(Node::scalar("a"));
  s.push_back(Node::scalar("b"));
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.as_sequence()[1].as_string(), "b");
}

TEST(Node, Equality) {
  Node a = Node::mapping();
  a.set("k", Node::scalar("v"));
  Node b = Node::mapping();
  b.set("k", Node::scalar("v"));
  EXPECT_EQ(a, b);
  b.set("k2", Node::scalar("v2"));
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mcmm::yamlx
