// Full-pipeline test: the paper dataset survives the YAML round trip — the
// reproduction of the author's YAML source-data workflow.

#include "yamlx/matrix_yaml.hpp"

#include <gtest/gtest.h>

#include "core/claims.hpp"
#include "core/error.hpp"
#include "data/dataset.hpp"

namespace mcmm::yamlx {
namespace {

TEST(MatrixYaml, RoundTripPreservesEverything) {
  const CompatibilityMatrix& original = data::paper_matrix();
  const std::string text = matrix_to_yaml_text(original);
  const CompatibilityMatrix round = matrix_from_yaml_text(text);

  ASSERT_EQ(round.entry_count(), original.entry_count());
  ASSERT_EQ(round.description_count(), original.description_count());
  for (const SupportEntry* e : original.entries()) {
    const SupportEntry* r = round.find(e->combo);
    ASSERT_NE(r, nullptr) << to_string(e->combo);
    EXPECT_EQ(r->ratings, e->ratings) << to_string(e->combo);
    EXPECT_EQ(r->routes, e->routes) << to_string(e->combo);
    EXPECT_EQ(r->description_id, e->description_id);
    EXPECT_EQ(r->inferred, e->inferred);
  }
  for (const Description* d : original.descriptions()) {
    const Description& r = round.description(d->id);
    EXPECT_EQ(r.title, d->title);
    EXPECT_EQ(r.text, d->text);
    EXPECT_EQ(r.references, d->references);
  }
}

TEST(MatrixYaml, EmittedTextIsStable) {
  const std::string once = matrix_to_yaml_text(data::paper_matrix());
  const std::string twice =
      matrix_to_yaml_text(matrix_from_yaml_text(once));
  EXPECT_EQ(once, twice);
}

TEST(MatrixYaml, ClaimsHoldOnRoundTrippedMatrix) {
  const CompatibilityMatrix round =
      matrix_from_yaml_text(matrix_to_yaml_text(data::paper_matrix()));
  for (const ClaimResult& r : Claims(round).evaluate_all()) {
    EXPECT_TRUE(r.holds) << r.id;
  }
}

TEST(MatrixYaml, RejectsBadCategory) {
  std::string text = matrix_to_yaml_text(data::paper_matrix());
  const std::string needle = "category: full support";
  text.replace(text.find(needle), needle.size(), "category: superb");
  EXPECT_THROW((void)matrix_from_yaml_text(text), TypeError);
}

TEST(MatrixYaml, RejectsBadVendor) {
  std::string text = matrix_to_yaml_text(data::paper_matrix());
  const std::string needle = "vendor: NVIDIA";
  text.replace(text.find(needle), needle.size(), "vendor: ARM");
  EXPECT_THROW((void)matrix_from_yaml_text(text), TypeError);
}

TEST(MatrixYaml, ValidationCatchesRemovedCell) {
  // Drop one cell from the YAML and the rebuilt matrix must fail
  // validation (wrong cell count).
  Node root = matrix_to_yaml(data::paper_matrix());
  Node& cells = const_cast<Node&>(root.at("cells"));
  cells.as_sequence().pop_back();
  EXPECT_THROW((void)matrix_from_yaml(root), IntegrityError);
}

TEST(MatrixYaml, YamlTextLooksReasonable) {
  const std::string text = matrix_to_yaml_text(data::paper_matrix());
  EXPECT_NE(text.find("descriptions:"), std::string::npos);
  EXPECT_NE(text.find("cells:"), std::string::npos);
  EXPECT_NE(text.find("vendor: NVIDIA"), std::string::npos);
  EXPECT_NE(text.find("category: full support"), std::string::npos);
  // 51 cells -> 51 vendor lines.
  std::size_t count = 0;
  for (std::size_t pos = text.find("- vendor:"); pos != std::string::npos;
       pos = text.find("- vendor:", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 51u);
}

}  // namespace
}  // namespace mcmm::yamlx
