// Emitter tests including the parse/emit round-trip property over generated
// node trees.

#include "yamlx/emit.hpp"

#include <gtest/gtest.h>

#include "yamlx/parse.hpp"

namespace mcmm::yamlx {
namespace {

TEST(Emit, ScalarDocument) {
  EXPECT_EQ(emit(Node::scalar("hello")), "hello\n");
}

TEST(Emit, QuotesWhenNecessary) {
  EXPECT_EQ(emit(Node::scalar("a: b")), "\"a: b\"\n");
  EXPECT_EQ(emit(Node::scalar("#x")), "\"#x\"\n");
  EXPECT_EQ(emit(Node::scalar("- dash")), "\"- dash\"\n");
  EXPECT_EQ(emit(Node::scalar("")), "\"\"\n");
  EXPECT_EQ(emit(Node::scalar(" pad")), "\" pad\"\n");
}

TEST(Emit, PlainSafePredicates) {
  EXPECT_TRUE(plain_safe("simple"));
  EXPECT_TRUE(plain_safe("a#b"));       // hash not after space
  EXPECT_TRUE(plain_safe("http://x"));  // colon not before space/end
  EXPECT_FALSE(plain_safe("ends:"));
  EXPECT_FALSE(plain_safe("a #comment"));
  EXPECT_FALSE(plain_safe("line\nbreak"));
}

TEST(Emit, MappingOutput) {
  Node m = Node::mapping();
  m.set("a", Node::scalar("1"));
  m.set("b", Node::scalar("two words"));
  EXPECT_EQ(emit(m), "a: 1\nb: two words\n");
}

TEST(Emit, SequenceOutput) {
  Node s = Node::sequence();
  s.push_back(Node::scalar("x"));
  s.push_back(Node::scalar("y"));
  EXPECT_EQ(emit(s), "- x\n- y\n");
}

TEST(Emit, NestedStructures) {
  Node root = Node::mapping();
  Node inner = Node::mapping();
  inner.set("k", Node::scalar("v"));
  root.set("outer", std::move(inner));
  EXPECT_EQ(emit(root), "outer:\n  k: v\n");
}

TEST(Emit, SequenceOfMappingsInlinesFirstKey) {
  Node root = Node::mapping();
  Node seq = Node::sequence();
  Node item = Node::mapping();
  item.set("name", Node::scalar("n"));
  item.set("value", Node::scalar("v"));
  seq.push_back(std::move(item));
  root.set("items", std::move(seq));
  EXPECT_EQ(emit(root), "items:\n  - name: n\n    value: v\n");
}

// --- Round-trip property ---

Node sample_tree(int variant) {
  Node root = Node::mapping();
  root.set("title", Node::scalar("doc " + std::to_string(variant)));
  root.set("tricky", Node::scalar("needs: quoting #" + std::to_string(variant)));
  Node seq = Node::sequence();
  for (int i = 0; i < variant + 1; ++i) {
    Node item = Node::mapping();
    item.set("id", Node::scalar(std::to_string(i)));
    item.set("label", Node::scalar("item " + std::to_string(i)));
    Node tags = Node::sequence();
    tags.push_back(Node::scalar("tag-a"));
    tags.push_back(Node::scalar("x: y"));
    item.set("tags", std::move(tags));
    Node nested = Node::mapping();
    nested.set("depth", Node::scalar("2"));
    item.set("nested", std::move(nested));
    seq.push_back(std::move(item));
  }
  root.set("items", std::move(seq));
  return root;
}

class RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripTest, ParseOfEmitYieldsSameTree) {
  const Node original = sample_tree(GetParam());
  const std::string text = emit(original);
  const Node reparsed = parse(text);
  EXPECT_EQ(reparsed, original) << text;
}

TEST_P(RoundTripTest, EmitIsIdempotent) {
  const Node original = sample_tree(GetParam());
  const std::string once = emit(original);
  const std::string twice = emit(parse(once));
  EXPECT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(Variants, RoundTripTest, ::testing::Range(0, 8));

TEST(Emit, RoundTripSpecialScalars) {
  for (const std::string s :
       {"plain", "with spaces", "it's", "\"quoted\"", "multi\nline",
        "trailing ", "-starts-with-dash", "ends:", "# hash",
        "tab\there"}) {
    Node m = Node::mapping();
    m.set("k", Node::scalar(s));
    const Node round = parse(emit(m));
    EXPECT_EQ(round.at("k").as_string(), s) << "scalar: " << s;
  }
}

}  // namespace
}  // namespace mcmm::yamlx
