// Chrome-trace writer validation: chrome_json() must emit JSON that a
// strict parser accepts, with well-formed ph/ts/dur/pid/tid/name fields and
// non-negative durations — fuzzed over adversarial kernel names (embedded
// quotes, backslashes, newlines, control characters, UTF-8) so a hostile
// label can never corrupt the trace file chrome://tracing loads.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gpuprof/gpuprof.hpp"
#include "gpusim/device.hpp"

namespace mcmm::gpuprof {
namespace {

using gpusim::Device;
using gpusim::KernelCosts;
using gpusim::Queue;
using gpusim::WorkItem;
using gpusim::launch_1d;

// --- a deliberately strict recursive-descent JSON parser ------------------
// Small on purpose: it accepts exactly RFC 8259 (no trailing commas, no
// comments, \uXXXX required for control characters), so anything the
// writer gets away with here a real trace viewer will accept too.

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type{Type::Null};
  bool boolean{false};
  double number{0};
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  [[nodiscard]] bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == s_.size();  // no trailing garbage
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool parse_value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.type = JsonValue::Type::String;
        return parse_string(out.string);
      case 't':
        out.type = JsonValue::Type::Bool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.type = JsonValue::Type::Bool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.type = JsonValue::Type::Null;
        return literal("null");
      default:
        out.type = JsonValue::Type::Number;
        return parse_number(out.number);
    }
  }

  [[nodiscard]] bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!eat(*p)) return false;
    }
    return true;
  }

  [[nodiscard]] bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::Object;
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace(std::move(key), std::move(value));
      skip_ws();
      if (eat(',')) continue;
      return eat('}');
    }
  }

  [[nodiscard]] bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::Array;
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (eat(',')) continue;
      return eat(']');
    }
  }

  [[nodiscard]] bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control char: invalid JSON
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            out += static_cast<char>(code & 0x7F);  // enough for the tests
            break;
          }
          default:
            return false;  // invalid escape
        }
        continue;
      }
      out += static_cast<char>(c);
      ++pos_;
    }
    return false;  // unterminated
  }

  [[nodiscard]] bool parse_number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      out = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    return true;
  }

  const std::string& s_;
  std::size_t pos_{0};
};

class ChromeTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    enable();
  }
  void TearDown() override {
    (void)finalize();
    reset();
  }
};

/// Checks one required field's presence and type; returns it (or null,
/// after recording a failure).
const JsonValue* require(const JsonValue& event, const char* key,
                         JsonValue::Type type) {
  const JsonValue* v = event.find(key);
  if (v == nullptr) {
    ADD_FAILURE() << "trace event missing required field " << key;
    return nullptr;
  }
  if (v->type != type) {
    ADD_FAILURE() << "trace event field " << key << " has the wrong type";
    return nullptr;
  }
  return v;
}

/// Parses the writer's output into `doc` and checks the chrome://tracing
/// schema on every emitted event.
void parse_and_validate(const Trace& trace, JsonValue& doc) {
  const std::string json = trace.chrome_json();
  ASSERT_TRUE(JsonParser(json).parse(doc)) << "chrome_json is not valid JSON";
  ASSERT_EQ(doc.type, JsonValue::Type::Object);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr) << "missing traceEvents";
  ASSERT_EQ(events->type, JsonValue::Type::Array);
  for (const JsonValue& e : events->array) {
    ASSERT_EQ(e.type, JsonValue::Type::Object);
    const JsonValue* ph = require(e, "ph", JsonValue::Type::String);
    if (ph == nullptr) continue;
    EXPECT_TRUE(ph->string == "X" || ph->string == "i" || ph->string == "M")
        << "unexpected phase " << ph->string;
    (void)require(e, "pid", JsonValue::Type::Number);
    if (const JsonValue* name = require(e, "name", JsonValue::Type::String)) {
      EXPECT_FALSE(name->string.empty());
    }
    if (ph->string == "M") continue;  // metadata: no timestamp fields
    (void)require(e, "tid", JsonValue::Type::Number);
    if (const JsonValue* ts = require(e, "ts", JsonValue::Type::Number)) {
      EXPECT_GE(ts->number, 0.0);
    }
    if (ph->string == "X") {
      if (const JsonValue* dur = require(e, "dur", JsonValue::Type::Number)) {
        EXPECT_GE(dur->number, 0.0) << "negative duration in chrome trace";
      }
    }
  }
}

TEST_F(ChromeTrace, WellFormedForATypicalWorkload) {
  Device dev(gpusim::descriptor_for(Vendor::NVIDIA));
  Queue& q = dev.default_queue();
  constexpr std::uint64_t n = 4096;
  auto* d = static_cast<double*>(dev.allocate(n * sizeof(double)));
  std::vector<double> h(n, 1.0);
  q.memcpy(d, h.data(), n * sizeof(double), gpusim::CopyKind::HostToDevice);
  KernelCosts costs;
  costs.bytes_read = 1.0 * n * sizeof(double);
  costs.bytes_written = 1.0 * n * sizeof(double);
  {
    gpusim::KernelLabelScope label("scale");
    q.launch(launch_1d(n, 256), costs,
             [d](const WorkItem& item) { d[item.global_x()] *= 2.0; });
  }
  (void)q.record();
  q.synchronize();
  dev.deallocate(d);

  const Trace trace = snapshot();
  JsonValue doc;
  ASSERT_NO_FATAL_FAILURE(parse_and_validate(trace, doc));

  // One X event per timed op, one i event per marker, plus M metadata
  // naming the process (vendor/device) and thread (queue) lanes.
  std::size_t x = 0, i = 0, m = 0;
  bool saw_scale = false;
  for (const JsonValue& e : doc.find("traceEvents")->array) {
    const std::string& ph = e.find("ph")->string;
    x += (ph == "X") ? 1 : 0;
    i += (ph == "i") ? 1 : 0;
    m += (ph == "M") ? 1 : 0;
    if (e.find("name")->string == "scale") saw_scale = true;
  }
  EXPECT_EQ(x, 2u);  // memcpy + kernel
  EXPECT_EQ(i, 2u);  // record + sync
  EXPECT_GE(m, 2u);  // at least process_name + thread_name
  EXPECT_TRUE(saw_scale);
}

TEST_F(ChromeTrace, AdversarialKernelNamesNeverBreakTheJson) {
  const std::vector<std::string> hostile = {
      "quoted \"kernel\"",
      "back\\slash\\path",
      "newline\nin\nname",
      "tab\tand\rcarriage",
      std::string("nul\0byte", 8),
      "ctrl-\x01\x02\x1f-chars",
      "日本語カーネル",             // UTF-8 multibyte
      "emoji 🚀 kernel",            // 4-byte UTF-8
      "mixed \"x\\y\nz\" ütf",
      "</script><b>html</b>",
      "{\"fake\":\"json\"}",
      "trailing backslash \\",
  };

  Device dev(gpusim::tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  constexpr std::uint64_t n = 128;
  auto* d = static_cast<std::uint32_t*>(dev.allocate(n * sizeof(std::uint32_t)));
  for (const std::string& name : hostile) {
    gpusim::KernelLabelScope label(name.c_str());
    q.launch(launch_1d(n, 64), KernelCosts{},
             [d](const WorkItem& item) { d[item.global_x()] = 1; });
  }
  dev.deallocate(d);

  const Trace trace = snapshot();
  // The NUL-byte label is truncated at the NUL by the C-string channel —
  // that is the seam's contract, not the writer's concern. Every event
  // still made it onto the timeline.
  ASSERT_EQ(trace.events.size(), hostile.size());

  JsonValue doc;
  ASSERT_NO_FATAL_FAILURE(parse_and_validate(trace, doc));
  // Quotes and backslashes must round-trip exactly through the escaper.
  std::size_t found = 0;
  for (const JsonValue& e : doc.find("traceEvents")->array) {
    if (e.find("ph")->string != "X") continue;
    const std::string& name = e.find("name")->string;
    for (const std::string& h : hostile) {
      const std::string expected = h.substr(0, h.find('\0'));
      if (name == expected) {
        ++found;
        break;
      }
    }
  }
  EXPECT_EQ(found, hostile.size());
}

TEST_F(ChromeTrace, EmptyTraceIsStillValidJson) {
  const Trace trace = snapshot();
  EXPECT_TRUE(trace.empty());
  JsonValue doc;
  EXPECT_TRUE(JsonParser(trace.chrome_json()).parse(doc));
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->array.empty());
}

}  // namespace
}  // namespace mcmm::gpuprof
