// Derived-counter tests: the per-kernel roofline attribution (achieved
// simulated GB/s, % of the owning device's peak bandwidth, launch-overhead
// share) must agree exactly with recomputation from the raw timeline, and
// traffic must be billed the way the analytic cost model bills it (H2D
// writes device DRAM, D2H reads it, D2D does both).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "gpuprof/gpuprof.hpp"
#include "gpusim/device.hpp"

namespace mcmm::gpuprof {
namespace {

using gpusim::Device;
using gpusim::KernelCosts;
using gpusim::Queue;
using gpusim::WorkItem;
using gpusim::launch_1d;

class ProfilerCounters : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    enable();
  }
  void TearDown() override {
    (void)finalize();
    reset();
  }
};

TEST_F(ProfilerCounters, KernelEventCarriesDeclaredCostsAndRoofline) {
  Device dev(gpusim::descriptor_for(Vendor::NVIDIA));
  Queue& q = dev.default_queue();
  constexpr std::uint64_t n = 1 << 16;
  auto* d = static_cast<double*>(dev.allocate(n * sizeof(double)));
  KernelCosts costs;
  costs.bytes_read = 2.0 * n * sizeof(double);
  costs.bytes_written = 1.0 * n * sizeof(double);
  costs.flops = 2.0 * n;
  {
    gpusim::KernelLabelScope label("triad");
    q.launch(launch_1d(n, 256), costs,
             [d](const WorkItem& item) { d[item.global_x()] = 1.0; });
  }
  dev.deallocate(d);

  const Trace trace = snapshot();
  ASSERT_EQ(trace.events.size(), 1u);
  const TraceEvent& e = trace.events[0];
  EXPECT_EQ(e.kind, OpKind::Kernel);
  EXPECT_EQ(e.name, "triad");
  EXPECT_EQ(e.vendor, Vendor::NVIDIA);
  EXPECT_EQ(e.items, n);
  EXPECT_DOUBLE_EQ(e.bytes_read, costs.bytes_read);
  EXPECT_DOUBLE_EQ(e.bytes_written, costs.bytes_written);
  EXPECT_DOUBLE_EQ(e.flops, costs.flops);
  // The roofline reference captured at trace time is the owning device's.
  EXPECT_DOUBLE_EQ(e.peak_gbps, dev.descriptor().mem_bandwidth_gbps);
  EXPECT_GT(e.launch_latency_us, 0.0);
  EXPECT_GT(e.sim_duration_us(), 0.0);
}

TEST_F(ProfilerCounters, CopyTrafficBilledPerDirection) {
  Device dev(gpusim::tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  constexpr std::size_t bytes = 4096;
  auto* d0 = static_cast<std::byte*>(dev.allocate(bytes));
  auto* d1 = static_cast<std::byte*>(dev.allocate(bytes));
  std::vector<std::byte> h(bytes);

  q.memcpy(d0, h.data(), bytes, gpusim::CopyKind::HostToDevice);
  q.memcpy(h.data(), d0, bytes, gpusim::CopyKind::DeviceToHost);
  q.memcpy(d1, d0, bytes, gpusim::CopyKind::DeviceToDevice);
  q.memset(d0, 0, bytes);
  dev.deallocate(d0);
  dev.deallocate(d1);

  const Trace trace = snapshot();
  ASSERT_EQ(trace.events.size(), 4u);
  const double b = static_cast<double>(bytes);

  EXPECT_EQ(trace.events[0].kind, OpKind::MemcpyH2D);
  EXPECT_DOUBLE_EQ(trace.events[0].bytes_read, 0.0);
  EXPECT_DOUBLE_EQ(trace.events[0].bytes_written, b);

  EXPECT_EQ(trace.events[1].kind, OpKind::MemcpyD2H);
  EXPECT_DOUBLE_EQ(trace.events[1].bytes_read, b);
  EXPECT_DOUBLE_EQ(trace.events[1].bytes_written, 0.0);

  EXPECT_EQ(trace.events[2].kind, OpKind::MemcpyD2D);
  EXPECT_DOUBLE_EQ(trace.events[2].bytes_read, b);
  EXPECT_DOUBLE_EQ(trace.events[2].bytes_written, b);

  EXPECT_EQ(trace.events[3].kind, OpKind::Memset);
  EXPECT_DOUBLE_EQ(trace.events[3].bytes_written, b);
}

TEST_F(ProfilerCounters, SummariesAgreeWithRawTimeline) {
  // Two labelled kernels, several launches each, on two vendors. Each
  // summary row must equal an independent recomputation from the events it
  // aggregates.
  constexpr std::uint64_t n = 1 << 14;
  for (const Vendor v : {Vendor::AMD, Vendor::Intel}) {
    Device dev(gpusim::descriptor_for(v));
    Queue& q = dev.default_queue();
    auto* d = static_cast<double*>(dev.allocate(n * sizeof(double)));
    KernelCosts copy_costs;
    copy_costs.bytes_read = 1.0 * n * sizeof(double);
    copy_costs.bytes_written = 1.0 * n * sizeof(double);
    for (int rep = 0; rep < 3; ++rep) {
      gpusim::KernelLabelScope label("copy");
      q.launch(launch_1d(n, 256), copy_costs,
               [d](const WorkItem& item) { d[item.global_x()] = 2.0; });
    }
    KernelCosts dot_costs;
    dot_costs.bytes_read = 2.0 * n * sizeof(double);
    dot_costs.flops = 2.0 * n;
    for (int rep = 0; rep < 2; ++rep) {
      gpusim::KernelLabelScope label("dot");
      q.launch(launch_1d(n, 256), dot_costs,
               [d](const WorkItem& item) { d[item.global_x()] += 1.0; });
    }
    dev.deallocate(d);
  }

  const Trace trace = snapshot();
  const std::vector<KernelSummary> summaries = trace.kernel_summaries();
  ASSERT_EQ(summaries.size(), 4u);  // {AMD,Intel} x {copy,dot}

  for (const KernelSummary& s : summaries) {
    std::uint64_t launches = 0;
    std::uint64_t items = 0;
    double bytes = 0;
    double sim_us = 0;
    double host_us = 0;
    double latency_us = 0;
    double peak = 0;
    for (const TraceEvent& e : trace.events) {
      if (e.device != s.device || e.name != s.name || e.model != s.model) {
        continue;
      }
      ++launches;
      items += e.items;
      bytes += e.total_bytes();
      sim_us += e.sim_duration_us();
      host_us += e.host_duration_us();
      latency_us += e.launch_latency_us;
      peak = e.peak_gbps;
    }
    EXPECT_EQ(s.launches, launches);
    EXPECT_EQ(s.items, items);
    EXPECT_DOUBLE_EQ(s.bytes, bytes);
    EXPECT_DOUBLE_EQ(s.sim_us, sim_us);
    EXPECT_DOUBLE_EQ(s.host_us, host_us);
    EXPECT_DOUBLE_EQ(s.achieved_gbps, bytes / (sim_us * 1e3));
    EXPECT_DOUBLE_EQ(s.pct_of_peak, 100.0 * s.achieved_gbps / peak);
    EXPECT_DOUBLE_EQ(s.launch_overhead_pct, 100.0 * latency_us / sim_us);
    EXPECT_GT(s.pct_of_peak, 0.0);
    EXPECT_LT(s.pct_of_peak, 100.0);
    EXPECT_GT(s.launch_overhead_pct, 0.0);
    EXPECT_LT(s.launch_overhead_pct, 100.0);
  }

  // The two copy rows moved identical bytes in identical sim formulas up
  // to vendor efficiency: the faster device must show the higher GB/s.
  const KernelSummary* amd_copy = nullptr;
  const KernelSummary* intel_copy = nullptr;
  for (const KernelSummary& s : summaries) {
    if (s.name != "copy") continue;
    (s.vendor == Vendor::AMD ? amd_copy : intel_copy) = &s;
  }
  ASSERT_NE(amd_copy, nullptr);
  ASSERT_NE(intel_copy, nullptr);
  EXPECT_NE(amd_copy->achieved_gbps, intel_copy->achieved_gbps);
}

TEST_F(ProfilerCounters, UnlabelledLaunchGetsGenericName) {
  Device dev(gpusim::tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  constexpr std::uint64_t n = 256;
  auto* d = static_cast<std::uint32_t*>(dev.allocate(n * sizeof(std::uint32_t)));
  q.launch(launch_1d(n, 64), KernelCosts{},
           [d](const WorkItem& item) { d[item.global_x()] = 1; });
  dev.deallocate(d);

  const Trace trace = snapshot();
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_EQ(trace.events[0].name, "kernel");
}

TEST_F(ProfilerCounters, ExportsContainTheSummaryRows) {
  Device dev(gpusim::descriptor_for(Vendor::AMD));
  Queue& q = dev.default_queue();
  constexpr std::uint64_t n = 1 << 12;
  auto* d = static_cast<double*>(dev.allocate(n * sizeof(double)));
  KernelCosts costs;
  costs.bytes_read = 1.0 * n * sizeof(double);
  {
    gpusim::KernelLabelScope label("sweep");
    q.launch(launch_1d(n, 128), costs,
             [d](const WorkItem& item) { d[item.global_x()] = 3.0; });
  }
  dev.deallocate(d);

  const Trace trace = snapshot();
  const std::string csv = trace.summary_csv();
  EXPECT_NE(csv.find("achieved_gbps"), std::string::npos);
  EXPECT_NE(csv.find("pct_of_peak"), std::string::npos);
  EXPECT_NE(csv.find("sweep"), std::string::npos);
  const std::string report = trace.text_report();
  EXPECT_NE(report.find("sweep"), std::string::npos);
  EXPECT_NE(report.find("%peak"), std::string::npos);
  const std::string json = trace.summary_json();
  EXPECT_NE(json.find("mcmm-gpuprof-v1"), std::string::npos);
  EXPECT_NE(json.find("\"sweep\""), std::string::npos);
}

}  // namespace
}  // namespace mcmm::gpuprof
