// Simulated-time determinism regression test: the traced simulated
// timestamps must be BIT-identical (not approximately equal) across
// MCMM_NUM_THREADS = 1, 4, and hardware_concurrency, and identical with
// the profiler on or off. The worker count is pinned per process (the
// global pool is a process-wide singleton), so the cross-thread-count leg
// re-executes this binary via /proc/self/exe with `--emit-trace`, which
// prints every simulated timestamp as raw IEEE-754 bits.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gpuprof/gpuprof.hpp"
#include "gpusim/device.hpp"

namespace {

using mcmm::Vendor;
using mcmm::gpusim::Device;
using mcmm::gpusim::KernelCosts;
using mcmm::gpusim::LaunchPolicy;
using mcmm::gpusim::Queue;
using mcmm::gpusim::Schedule;
using mcmm::gpusim::WorkItem;
using mcmm::gpusim::launch_1d;

/// A deterministic mixed workload touching every traced op kind, both
/// schedules, and all three vendor descriptors.
void run_workload() {
  constexpr std::uint64_t n = 1 << 14;
  for (const Vendor v : {Vendor::AMD, Vendor::Intel, Vendor::NVIDIA}) {
    Device dev(mcmm::gpusim::descriptor_for(v));
    Queue& q = dev.default_queue();
    auto* d = static_cast<double*>(dev.allocate(n * sizeof(double)));
    std::vector<double> h(n, 1.0);
    q.memcpy(d, h.data(), n * sizeof(double),
             mcmm::gpusim::CopyKind::HostToDevice);
    KernelCosts costs;
    costs.bytes_read = 2.0 * n * sizeof(double);
    costs.bytes_written = 1.0 * n * sizeof(double);
    costs.flops = 2.0 * n;
    for (int rep = 0; rep < 4; ++rep) {
      mcmm::gpusim::KernelLabelScope label("det-kernel");
      q.launch(
          launch_1d(n, 256), costs,
          [d](const WorkItem& item) { d[item.global_x()] *= 1.5; },
          LaunchPolicy{rep % 2 == 0 ? Schedule::Static : Schedule::Dynamic,
                       0});
    }
    q.memset(d, 0, n * sizeof(double));
    q.memcpy(h.data(), d, n * sizeof(double),
             mcmm::gpusim::CopyKind::DeviceToHost);
    (void)q.record();
    q.synchronize();
    dev.deallocate(d);
  }
}

/// Hex bit pattern of a double: bit-identical comparison, immune to
/// printf rounding.
std::string bits(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(u));
  return buffer;
}

/// The canonical text form of a trace's simulated timeline: one line per
/// event with everything the cost model determines. Host wall times are
/// intentionally excluded — they are allowed to vary.
std::string sim_fingerprint(const mcmm::gpuprof::Trace& trace) {
  std::ostringstream out;
  for (const mcmm::gpuprof::TraceEvent& e : trace.events) {
    out << e.queue_id << ' ' << static_cast<int>(e.kind) << ' ' << e.name
        << ' ' << e.items << ' ' << bits(e.total_bytes()) << ' '
        << bits(e.sim_begin_us) << ' ' << bits(e.sim_end_us) << '\n';
  }
  return out.str();
}

/// Child mode: run the workload under the profiler, print the fingerprint.
int emit_trace() {
  mcmm::gpuprof::reset();
  mcmm::gpuprof::enable();
  run_workload();
  const mcmm::gpuprof::Trace trace = mcmm::gpuprof::finalize();
  std::fputs(sim_fingerprint(trace).c_str(), stdout);
  return trace.empty() ? 1 : 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// This binary's path, resolved in-process (inside std::system's shell,
/// /proc/self/exe would name the shell).
std::string self_exe() {
  char buffer[4096];
  const ssize_t len =
      ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (len <= 0) return {};
  buffer[len] = '\0';
  return buffer;
}

/// Re-executes this binary with MCMM_NUM_THREADS pinned and returns the
/// child's fingerprint.
std::string fingerprint_with_threads(unsigned threads,
                                     const std::string& tag) {
  const std::string exe = self_exe();
  if (exe.empty()) {
    ADD_FAILURE() << "cannot resolve /proc/self/exe";
    return {};
  }
  const std::string out_path =
      "gpuprof_determinism_" + tag + ".out";
  const std::string cmd = "MCMM_NUM_THREADS=" + std::to_string(threads) +
                          " '" + exe + "' --emit-trace > '" + out_path +
                          "' 2>/dev/null";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << "child re-exec failed for " << threads << " threads";
  const std::string fp = read_file(out_path);
  std::remove(out_path.c_str());
  return fp;
}

TEST(Determinism, SimTimestampsBitIdenticalAcrossWorkerCounts) {
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  const std::string fp1 = fingerprint_with_threads(1, "t1");
  const std::string fp4 = fingerprint_with_threads(4, "t4");
  const std::string fphw = fingerprint_with_threads(hw, "thw");
  ASSERT_FALSE(fp1.empty());
  EXPECT_EQ(fp1, fp4) << "simulated timeline depends on the worker count";
  EXPECT_EQ(fp1, fphw) << "simulated timeline depends on the worker count";
}

TEST(Determinism, SimTimestampsUnaffectedByProfilerOnOff) {
  // The profiler must observe, never perturb: the queue's simulated clock
  // trajectory with hooks installed is bit-identical to hooks absent.
  // (Same process, same pool — only the hook table differs.)
  const auto clock_trajectory = [] {
    std::vector<std::string> samples;
    constexpr std::uint64_t n = 1 << 12;
    Device dev(mcmm::gpusim::descriptor_for(Vendor::AMD));
    Queue& q = dev.default_queue();
    auto* d = static_cast<double*>(dev.allocate(n * sizeof(double)));
    KernelCosts costs;
    costs.bytes_read = 1.0 * n * sizeof(double);
    costs.bytes_written = 1.0 * n * sizeof(double);
    for (int rep = 0; rep < 8; ++rep) {
      q.launch(launch_1d(n, 128), costs,
               [d](const WorkItem& item) { d[item.global_x()] += 0.5; });
      samples.push_back(bits(q.simulated_time_us()));
    }
    q.memset(d, 0, n * sizeof(double));
    samples.push_back(bits(q.simulated_time_us()));
    dev.deallocate(d);
    return samples;
  };

  mcmm::gpuprof::disable();
  mcmm::gpuprof::reset();
  const std::vector<std::string> off = clock_trajectory();

  mcmm::gpuprof::enable();
  const std::vector<std::string> on = clock_trajectory();
  const mcmm::gpuprof::Trace trace = mcmm::gpuprof::finalize();

  EXPECT_EQ(off, on) << "installing the profiler changed simulated time";
  EXPECT_EQ(trace.events.size(), 9u);  // 8 launches + 1 memset, on-leg only
  mcmm::gpuprof::reset();
}

TEST(Determinism, BackToBackRunsInOneProcessMatch) {
  mcmm::gpuprof::reset();
  mcmm::gpuprof::enable();
  run_workload();
  const std::string first = sim_fingerprint(mcmm::gpuprof::finalize());
  mcmm::gpuprof::reset();
  mcmm::gpuprof::enable();
  run_workload();
  const std::string second = sim_fingerprint(mcmm::gpuprof::finalize());
  mcmm::gpuprof::reset();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--emit-trace") == 0) return emit_trace();
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
