// Profiler completeness property tests: every Queue::launch / memcpy /
// memset that runs while gpuprof is enabled must produce exactly one
// completed trace event (one begin/end pair) with begin <= end on both the
// simulated and the host clock — including under concurrent multi-queue
// submission from several host threads, nested (kernel-launches-kernel)
// submission from a worker thread, and both launch schedules.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "gpuprof/gpuprof.hpp"
#include "gpusim/device.hpp"

namespace mcmm::gpuprof {
namespace {

using gpusim::Device;
using gpusim::KernelCosts;
using gpusim::LaunchPolicy;
using gpusim::Queue;
using gpusim::Schedule;
using gpusim::WorkItem;
using gpusim::launch_1d;
using gpusim::tiny_test_device;

class ProfilerEvents : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    enable();
  }
  void TearDown() override {
    (void)finalize();
    reset();
  }
};

/// Structural invariants every trace must satisfy: all ops paired
/// (nothing left open), unique correlation ids, begin <= end on both
/// clocks, and markers zero-length on the simulated clock.
void expect_well_formed(const Trace& trace) {
  EXPECT_EQ(trace.incomplete, 0u);
  std::set<std::uint64_t> ids;
  for (const TraceEvent& e : trace.events) {
    EXPECT_TRUE(ids.insert(e.id).second) << "duplicate correlation id "
                                         << e.id;
    EXPECT_GE(e.id, 1u);
    EXPECT_LE(e.sim_begin_us, e.sim_end_us);
    EXPECT_LE(e.host_begin_us, e.host_end_us);
    if (e.kind == OpKind::EventRecord || e.kind == OpKind::Sync) {
      EXPECT_EQ(e.sim_begin_us, e.sim_end_us);
    }
  }
}

std::size_t count_kind(const Trace& trace, OpKind kind) {
  std::size_t n = 0;
  for (const TraceEvent& e : trace.events) n += (e.kind == kind) ? 1 : 0;
  return n;
}

TEST_F(ProfilerEvents, EveryOpKindProducesExactlyOnePair) {
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  constexpr std::uint64_t n = 1024;
  auto* d = static_cast<std::uint32_t*>(dev.allocate(n * sizeof(std::uint32_t)));
  std::vector<std::uint32_t> h(n, 7);

  q.memcpy(d, h.data(), n * sizeof(std::uint32_t),
           gpusim::CopyKind::HostToDevice);
  q.launch(launch_1d(n, 128), KernelCosts{}, [d](const WorkItem& item) {
    d[item.global_x()] *= 2;
  });
  q.memset(d, 0, n * sizeof(std::uint32_t));
  q.memcpy(h.data(), d, n * sizeof(std::uint32_t),
           gpusim::CopyKind::DeviceToHost);
  (void)q.record();
  q.synchronize();
  dev.deallocate(d);

  const Trace trace = snapshot();
  expect_well_formed(trace);
  EXPECT_EQ(trace.dropped, 0u);
  EXPECT_EQ(trace.events.size(), 6u);
  EXPECT_EQ(count_kind(trace, OpKind::MemcpyH2D), 1u);
  EXPECT_EQ(count_kind(trace, OpKind::Kernel), 1u);
  EXPECT_EQ(count_kind(trace, OpKind::Memset), 1u);
  EXPECT_EQ(count_kind(trace, OpKind::MemcpyD2H), 1u);
  EXPECT_EQ(count_kind(trace, OpKind::EventRecord), 1u);
  EXPECT_EQ(count_kind(trace, OpKind::Sync), 1u);
}

TEST_F(ProfilerEvents, BothSchedulesTraceIdentically) {
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  constexpr std::uint64_t n = 4096;
  auto* d = static_cast<std::uint32_t*>(dev.allocate(n * sizeof(std::uint32_t)));
  for (const Schedule s : {Schedule::Static, Schedule::Dynamic}) {
    q.launch(
        launch_1d(n, 256), KernelCosts{},
        [d](const WorkItem& item) { d[item.global_x()] = 1; },
        LaunchPolicy{s, 0});
  }
  dev.deallocate(d);

  const Trace trace = snapshot();
  expect_well_formed(trace);
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_NE(trace.events[0].launch.find("static"), std::string::npos);
  EXPECT_NE(trace.events[1].launch.find("dynamic"), std::string::npos);
  // The schedule is a host-side execution knob only: identical simulated
  // spans for the identical launch.
  EXPECT_EQ(trace.events[0].sim_duration_us(), trace.events[1].sim_duration_us());
}

TEST_F(ProfilerEvents, ConcurrentMultiQueueSubmission) {
  // Several host threads, each with its own device and two queues, all
  // tracing into the shared timeline. Every submitted op must come back as
  // exactly one completed event on the right per-queue lane.
  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  constexpr std::uint64_t n = 2048;
  // Devices (and so queues) outlive every thread: queue identity is
  // stable for the whole test, no address reuse across lanes.
  std::vector<std::unique_ptr<Device>> devices;
  std::vector<std::unique_ptr<Queue>> second_queues;
  for (int t = 0; t < kThreads; ++t) {
    devices.push_back(std::make_unique<Device>(tiny_test_device(1 << 20)));
    second_queues.push_back(devices.back()->create_queue());
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Device& dev = *devices[static_cast<std::size_t>(t)];
      Queue& q0 = dev.default_queue();
      Queue& q1 = *second_queues[static_cast<std::size_t>(t)];
      auto* d =
          static_cast<std::uint32_t*>(dev.allocate(n * sizeof(std::uint32_t)));
      for (int round = 0; round < kRounds; ++round) {
        q0.launch(launch_1d(n, 128), KernelCosts{},
                  [d](const WorkItem& item) { d[item.global_x()] += 1; });
        q1.memset(d, 0, n * sizeof(std::uint32_t));
      }
      dev.deallocate(d);
    });
  }
  for (std::thread& t : threads) t.join();

  const Trace trace = snapshot();
  expect_well_formed(trace);
  EXPECT_EQ(count_kind(trace, OpKind::Kernel),
            static_cast<std::size_t>(kThreads) * kRounds);
  EXPECT_EQ(count_kind(trace, OpKind::Memset),
            static_cast<std::size_t>(kThreads) * kRounds);
  // Kernels and memsets came from distinct queues: their tid lanes differ.
  std::set<std::uint32_t> kernel_lanes;
  std::set<std::uint32_t> memset_lanes;
  for (const TraceEvent& e : trace.events) {
    (e.kind == OpKind::Kernel ? kernel_lanes : memset_lanes).insert(e.queue_id);
  }
  EXPECT_EQ(kernel_lanes.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(memset_lanes.size(), static_cast<std::size_t>(kThreads));
  for (const std::uint32_t lane : kernel_lanes) {
    EXPECT_EQ(memset_lanes.count(lane), 0u);
  }
}

TEST_F(ProfilerEvents, NestedKernelLaunchesKernel) {
  // A kernel body submits an inner launch onto a *different* queue from a
  // worker thread (the engine supports nested submission). Both the outer
  // and the inner launch must trace as complete, distinct events.
  Device dev(tiny_test_device(1 << 20));
  Queue& outer = dev.default_queue();
  const auto inner = dev.create_queue();
  constexpr std::uint64_t n = 512;
  auto* d = static_cast<std::uint32_t*>(dev.allocate(n * sizeof(std::uint32_t)));
  std::atomic<int> inner_launches{0};

  outer.launch(launch_1d(n, 64), KernelCosts{},
               [&, d](const WorkItem& item) {
                 if (item.global_x() == 0) {
                   gpusim::KernelLabelScope label("inner");
                   inner->launch(launch_1d(n, 64), KernelCosts{},
                                 [d](const WorkItem& it) {
                                   d[it.global_x()] = 9;
                                 });
                   inner_launches.fetch_add(1);
                 }
               });
  dev.deallocate(d);

  ASSERT_EQ(inner_launches.load(), 1);
  const Trace trace = snapshot();
  expect_well_formed(trace);
  ASSERT_EQ(count_kind(trace, OpKind::Kernel), 2u);
  bool saw_inner = false;
  for (const TraceEvent& e : trace.events) {
    if (e.name == "inner") saw_inner = true;
  }
  EXPECT_TRUE(saw_inner) << "worker-thread launch lost its label";
}

TEST_F(ProfilerEvents, DisableStopsRecordingAndKeepsTimeline) {
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  constexpr std::uint64_t n = 256;
  auto* d = static_cast<std::uint32_t*>(dev.allocate(n * sizeof(std::uint32_t)));
  q.launch(launch_1d(n, 64), KernelCosts{},
           [d](const WorkItem& item) { d[item.global_x()] = 1; });
  disable();
  EXPECT_FALSE(enabled());
  q.launch(launch_1d(n, 64), KernelCosts{},
           [d](const WorkItem& item) { d[item.global_x()] = 2; });
  dev.deallocate(d);

  const Trace trace = snapshot();
  EXPECT_EQ(count_kind(trace, OpKind::Kernel), 1u);
}

TEST_F(ProfilerEvents, EventCapCountsDropsInsteadOfGrowing) {
  (void)finalize();
  reset();
  Config cfg;
  cfg.max_events = 3;
  enable(cfg);

  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  constexpr std::uint64_t n = 128;
  auto* d = static_cast<std::uint32_t*>(dev.allocate(n * sizeof(std::uint32_t)));
  for (int i = 0; i < 5; ++i) {
    q.launch(launch_1d(n, 64), KernelCosts{},
             [d](const WorkItem& item) { d[item.global_x()] = 1; });
  }
  dev.deallocate(d);

  const Trace trace = snapshot();
  EXPECT_EQ(trace.events.size(), 3u);
  EXPECT_EQ(trace.dropped, 2u);
  expect_well_formed(trace);
}

}  // namespace
}  // namespace mcmm::gpuprof
