#include "core/support.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mcmm {
namespace {

TEST(Support, CategoryNamesMatchPaper) {
  EXPECT_EQ(category_name(SupportCategory::Full), "full support");
  EXPECT_EQ(category_name(SupportCategory::IndirectGood),
            "indirect good support");
  EXPECT_EQ(category_name(SupportCategory::Some), "some support");
  EXPECT_EQ(category_name(SupportCategory::NonVendorGood),
            "non-vendor good support");
  EXPECT_EQ(category_name(SupportCategory::Limited), "limited support");
  EXPECT_EQ(category_name(SupportCategory::None), "no support");
}

TEST(Support, SixCategories) {
  EXPECT_EQ(kAllCategories.size(), 6u);
  std::set<SupportCategory> unique(kAllCategories.begin(),
                                   kAllCategories.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(Support, SymbolsAreUniquePerCategory) {
  std::set<std::string_view> symbols;
  std::set<std::string_view> ascii;
  for (const SupportCategory c : kAllCategories) {
    EXPECT_TRUE(symbols.insert(category_symbol(c)).second);
    EXPECT_TRUE(ascii.insert(category_symbol_ascii(c)).second);
  }
}

TEST(Support, ScoreOrdering) {
  EXPECT_GT(score(SupportCategory::Full), score(SupportCategory::IndirectGood));
  EXPECT_GT(score(SupportCategory::IndirectGood),
            score(SupportCategory::Some));
  // Some and NonVendorGood are the deliberate tie (see support.hpp).
  EXPECT_EQ(score(SupportCategory::Some), score(SupportCategory::NonVendorGood));
  EXPECT_GT(score(SupportCategory::Some), score(SupportCategory::Limited));
  EXPECT_GT(score(SupportCategory::Limited), score(SupportCategory::None));
  EXPECT_EQ(score(SupportCategory::None), 0);
}

TEST(Support, UsablePredicate) {
  for (const SupportCategory c : kAllCategories) {
    EXPECT_EQ(usable(c), c != SupportCategory::None);
  }
}

TEST(Support, ComprehensivePredicate) {
  EXPECT_TRUE(comprehensive(SupportCategory::Full));
  EXPECT_TRUE(comprehensive(SupportCategory::IndirectGood));
  EXPECT_TRUE(comprehensive(SupportCategory::NonVendorGood));
  EXPECT_FALSE(comprehensive(SupportCategory::Some));
  EXPECT_FALSE(comprehensive(SupportCategory::Limited));
  EXPECT_FALSE(comprehensive(SupportCategory::None));
}

TEST(Support, VendorProvidedPredicate) {
  EXPECT_TRUE(vendor_provided(SupportCategory::Full));
  EXPECT_TRUE(vendor_provided(SupportCategory::IndirectGood));
  EXPECT_TRUE(vendor_provided(SupportCategory::Some));
  EXPECT_FALSE(vendor_provided(SupportCategory::NonVendorGood));
  EXPECT_FALSE(vendor_provided(SupportCategory::Limited));
  EXPECT_FALSE(vendor_provided(SupportCategory::None));
}

TEST(Support, CategoryParseRoundTrip) {
  for (const SupportCategory c : kAllCategories) {
    const auto parsed = parse_category(category_name(c));
    ASSERT_TRUE(parsed.has_value()) << category_name(c);
    EXPECT_EQ(*parsed, c);
  }
}

TEST(Support, CategoryParseShortForms) {
  EXPECT_EQ(parse_category("full"), SupportCategory::Full);
  EXPECT_EQ(parse_category("limited"), SupportCategory::Limited);
  EXPECT_EQ(parse_category("nonvendor"), SupportCategory::NonVendorGood);
  EXPECT_FALSE(parse_category("great").has_value());
}

TEST(Support, ProviderParseRoundTrip) {
  for (const Provider p : {Provider::PlatformVendor, Provider::OtherVendor,
                           Provider::Community, Provider::Nobody}) {
    const auto parsed = parse_provider(to_string(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
}

TEST(Support, RatingEquality) {
  const Rating a{SupportCategory::Full, Provider::PlatformVendor, "x"};
  const Rating b{SupportCategory::Full, Provider::PlatformVendor, "x"};
  const Rating c{SupportCategory::Full, Provider::Community, "x"};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace mcmm
