#include "core/types.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mcmm {
namespace {

TEST(Types, VendorRoundTrip) {
  for (const Vendor v : kAllVendors) {
    const auto parsed = parse_vendor(to_string(v));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, v);
  }
}

TEST(Types, ModelRoundTrip) {
  for (const Model m : kAllModels) {
    const auto parsed = parse_model(to_string(m));
    ASSERT_TRUE(parsed.has_value()) << to_string(m);
    EXPECT_EQ(*parsed, m);
  }
}

TEST(Types, LanguageRoundTrip) {
  for (const Language l : {Language::Cpp, Language::Fortran, Language::Python}) {
    const auto parsed = parse_language(to_string(l));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, l);
  }
}

TEST(Types, ParseIsCaseInsensitive) {
  EXPECT_EQ(parse_vendor("nvidia"), Vendor::NVIDIA);
  EXPECT_EQ(parse_vendor("NVIDIA"), Vendor::NVIDIA);
  EXPECT_EQ(parse_model("sycl"), Model::SYCL);
  EXPECT_EQ(parse_model("OPENACC"), Model::OpenACC);
  EXPECT_EQ(parse_language("CPP"), Language::Cpp);
}

TEST(Types, ParseAliases) {
  EXPECT_EQ(parse_model("stdpar"), Model::Standard);
  EXPECT_EQ(parse_model("pstl"), Model::Standard);
  EXPECT_EQ(parse_model("omp"), Model::OpenMP);
  EXPECT_EQ(parse_model("acc"), Model::OpenACC);
  EXPECT_EQ(parse_language("f90"), Language::Fortran);
}

TEST(Types, ParseRejectsUnknown) {
  EXPECT_FALSE(parse_vendor("ARM").has_value());
  EXPECT_FALSE(parse_model("Raja").has_value());
  EXPECT_FALSE(parse_language("Rust").has_value());
}

TEST(Types, LanguageAppliesMatchesFigureStructure) {
  for (const Model m : kAllModels) {
    if (m == Model::Python) {
      EXPECT_TRUE(language_applies(m, Language::Python));
      EXPECT_FALSE(language_applies(m, Language::Cpp));
      EXPECT_FALSE(language_applies(m, Language::Fortran));
    } else {
      EXPECT_TRUE(language_applies(m, Language::Cpp));
      EXPECT_TRUE(language_applies(m, Language::Fortran));
      EXPECT_FALSE(language_applies(m, Language::Python));
    }
  }
}

TEST(Types, FigureHas51Cells) {
  int cells = 0;
  for (const Vendor v : kAllVendors) {
    for (const Model m : kAllModels) {
      for (const Language l :
           {Language::Cpp, Language::Fortran, Language::Python}) {
        if (language_applies(m, l)) {
          (void)v;
          ++cells;
        }
      }
    }
  }
  EXPECT_EQ(cells, kCombinationCount);
}

TEST(Types, CombinationIndexIsABijection) {
  std::set<int> seen;
  for (const Vendor v : kAllVendors) {
    for (const Model m : kAllModels) {
      for (const Language l :
           {Language::Cpp, Language::Fortran, Language::Python}) {
        if (!language_applies(m, l)) continue;
        const int idx = combination_index(Combination{v, m, l});
        EXPECT_GE(idx, 0);
        EXPECT_LT(idx, kCombinationCount);
        EXPECT_TRUE(seen.insert(idx).second)
            << "duplicate index " << idx << " for "
            << to_string(Combination{v, m, l});
      }
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kCombinationCount));
}

TEST(Types, CombinationIndexFollowsFigureOrder) {
  // First cell of the figure: NVIDIA / CUDA / C++.
  EXPECT_EQ(combination_index(
                Combination{Vendor::NVIDIA, Model::CUDA, Language::Cpp}),
            0);
  // Fortran sub-column directly follows the C++ sub-column.
  EXPECT_EQ(combination_index(
                Combination{Vendor::NVIDIA, Model::CUDA, Language::Fortran}),
            1);
  // Python is the last column of a row.
  EXPECT_EQ(combination_index(
                Combination{Vendor::NVIDIA, Model::Python, Language::Python}),
            16);
  // Second row starts with AMD.
  EXPECT_EQ(combination_index(
                Combination{Vendor::AMD, Model::CUDA, Language::Cpp}),
            17);
}

TEST(Types, CombinationToString) {
  EXPECT_EQ(to_string(Combination{Vendor::AMD, Model::HIP, Language::Cpp}),
            "AMD / HIP / C++");
}

TEST(Types, CombinationOrdering) {
  const Combination a{Vendor::AMD, Model::CUDA, Language::Cpp};
  const Combination b{Vendor::AMD, Model::CUDA, Language::Fortran};
  EXPECT_LT(a, b);
  EXPECT_EQ(a, a);
}

}  // namespace
}  // namespace mcmm
