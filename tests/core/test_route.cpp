#include "core/route.hpp"

#include <gtest/gtest.h>

namespace mcmm {
namespace {

Route make_route(Maturity mat, Provider p, RouteKind k) {
  Route r;
  r.name = "r";
  r.maturity = mat;
  r.provider = p;
  r.kind = k;
  return r;
}

TEST(Route, MaturityDominatesRank) {
  // A production community compiler outranks an experimental vendor one.
  const Route prod = make_route(Maturity::Production, Provider::Community,
                                RouteKind::Compiler);
  const Route exp = make_route(Maturity::Experimental,
                               Provider::PlatformVendor, RouteKind::Compiler);
  EXPECT_GT(route_rank(prod), route_rank(exp));
}

TEST(Route, VendorBreaksTiesAtSameMaturity) {
  const Route vendor = make_route(Maturity::Stable, Provider::PlatformVendor,
                                  RouteKind::Compiler);
  const Route community =
      make_route(Maturity::Stable, Provider::Community, RouteKind::Compiler);
  EXPECT_GT(route_rank(vendor), route_rank(community));
}

TEST(Route, CompilerBeatsTranslatorAtSameMaturityAndProvider) {
  const Route compiler = make_route(Maturity::Stable, Provider::Community,
                                    RouteKind::Compiler);
  const Route translator = make_route(Maturity::Stable, Provider::Community,
                                      RouteKind::Translator);
  EXPECT_GT(route_rank(compiler), route_rank(translator));
}

TEST(Route, RetiredRanksLowest) {
  const Route retired = make_route(Maturity::Retired, Provider::PlatformVendor,
                                   RouteKind::Compiler);
  for (const Maturity m :
       {Maturity::Production, Maturity::Stable, Maturity::Experimental,
        Maturity::Unmaintained}) {
    const Route other = make_route(m, Provider::Community, RouteKind::Translator);
    EXPECT_GT(route_rank(other), route_rank(retired))
        << to_string(m) << " should outrank retired";
  }
}

TEST(Route, UnmaintainedBelowExperimental) {
  const Route unmaintained = make_route(
      Maturity::Unmaintained, Provider::PlatformVendor, RouteKind::Compiler);
  const Route experimental = make_route(Maturity::Experimental,
                                        Provider::Community,
                                        RouteKind::Translator);
  EXPECT_GT(route_rank(experimental), route_rank(unmaintained));
}

TEST(Route, ToStringCoverage) {
  EXPECT_EQ(to_string(RouteKind::Compiler), "compiler");
  EXPECT_EQ(to_string(RouteKind::Translator), "translator");
  EXPECT_EQ(to_string(RouteKind::Bindings), "bindings");
  EXPECT_EQ(to_string(RouteKind::Library), "library");
  EXPECT_EQ(to_string(RouteKind::Runtime), "runtime");
  EXPECT_EQ(to_string(Maturity::Production), "production");
  EXPECT_EQ(to_string(Maturity::Retired), "retired");
}

TEST(Route, Equality) {
  Route a = make_route(Maturity::Stable, Provider::Community,
                       RouteKind::Compiler);
  Route b = a;
  EXPECT_EQ(a, b);
  b.flags.push_back("-O3");
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mcmm
