// Tests of the living-overview diff facility.

#include "core/diff.hpp"

#include <gtest/gtest.h>

#include "data/dataset.hpp"

namespace mcmm {
namespace {

TEST(Diff, IdenticalSnapshotsAreEmpty) {
  const CompatibilityMatrix a = data::build_paper_matrix();
  const CompatibilityMatrix b = data::build_paper_matrix();
  const MatrixDiff d = diff_matrices(a, b);
  EXPECT_TRUE(d.empty());
  EXPECT_NE(format_diff(d).find("No changes"), std::string::npos);
}

CompatibilityMatrix snapshot_with_amd_stdpar_promoted() {
  // The change the paper anticipates: roc-stdpar becomes a vendor-
  // supported production route, lifting AMD / Standard / C++ from
  // 'limited' to 'some support'.
  CompatibilityMatrix m;
  const CompatibilityMatrix& base = data::paper_matrix();
  for (const Description* d : base.descriptions()) m.add_description(*d);
  for (const SupportEntry* e : base.entries()) {
    SupportEntry copy = *e;
    if (copy.combo ==
        Combination{Vendor::AMD, Model::Standard, Language::Cpp}) {
      copy.ratings = {Rating{SupportCategory::Some,
                             Provider::PlatformVendor,
                             "roc-stdpar graduated to production"}};
      Route graduated;
      graduated.name = "roc-stdpar (upstream LLVM)";
      graduated.kind = RouteKind::Compiler;
      graduated.provider = Provider::PlatformVendor;
      graduated.maturity = Maturity::Production;
      graduated.toolchain = "clang++";
      copy.routes.push_back(graduated);
    }
    m.add_entry(copy);
  }
  m.validate();
  return m;
}

TEST(Diff, DetectsRatingImprovement) {
  const CompatibilityMatrix& before = data::paper_matrix();
  const CompatibilityMatrix after = snapshot_with_amd_stdpar_promoted();
  const MatrixDiff d = diff_matrices(before, after);
  ASSERT_EQ(d.rating_changes.size(), 1u);
  EXPECT_EQ(d.rating_changes[0].combo,
            (Combination{Vendor::AMD, Model::Standard, Language::Cpp}));
  EXPECT_EQ(d.rating_changes[0].before, SupportCategory::Limited);
  EXPECT_EQ(d.rating_changes[0].after, SupportCategory::Some);
  EXPECT_GT(d.rating_changes[0].delta(), 0);
  EXPECT_EQ(d.improvements(), 1);
  EXPECT_EQ(d.regressions(), 0);
}

TEST(Diff, DetectsRouteAddition) {
  const CompatibilityMatrix after = snapshot_with_amd_stdpar_promoted();
  const MatrixDiff d = diff_matrices(data::paper_matrix(), after);
  ASSERT_EQ(d.route_changes.size(), 1u);
  EXPECT_TRUE(d.route_changes[0].added);
  EXPECT_EQ(d.route_changes[0].route_name, "roc-stdpar (upstream LLVM)");
}

TEST(Diff, ReverseDiffShowsRegression) {
  const CompatibilityMatrix after = snapshot_with_amd_stdpar_promoted();
  const MatrixDiff d = diff_matrices(after, data::paper_matrix());
  EXPECT_EQ(d.improvements(), 0);
  EXPECT_EQ(d.regressions(), 1);
  ASSERT_EQ(d.route_changes.size(), 1u);
  EXPECT_FALSE(d.route_changes[0].added);
}

TEST(Diff, FormatNamesTheCellAndDirection) {
  const CompatibilityMatrix after = snapshot_with_amd_stdpar_promoted();
  const std::string text =
      format_diff(diff_matrices(data::paper_matrix(), after));
  EXPECT_NE(text.find("AMD / Standard / C++"), std::string::npos);
  EXPECT_NE(text.find("(improved)"), std::string::npos);
  EXPECT_NE(text.find("+ AMD / Standard / C++: roc-stdpar"),
            std::string::npos);
  EXPECT_NE(text.find("1 improvement(s), 0 regression(s)"),
            std::string::npos);
}

}  // namespace
}  // namespace mcmm
