#include "core/matrix.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace mcmm {
namespace {

SupportEntry minimal_entry(Vendor v, Model m, Language l, int desc_id,
                           SupportCategory cat = SupportCategory::None,
                           Provider p = Provider::Nobody) {
  SupportEntry e;
  e.combo = Combination{v, m, l};
  e.ratings.push_back(Rating{cat, p, "test"});
  e.description_id = desc_id;
  if (usable(cat)) {
    Route r;
    r.name = "test route";
    e.routes.push_back(r);
  }
  return e;
}

TEST(Matrix, RejectsDuplicateEntries) {
  CompatibilityMatrix m;
  m.add_entry(minimal_entry(Vendor::AMD, Model::HIP, Language::Cpp, 1));
  EXPECT_THROW(
      m.add_entry(minimal_entry(Vendor::AMD, Model::HIP, Language::Cpp, 1)),
      IntegrityError);
}

TEST(Matrix, RejectsInapplicableLanguage) {
  CompatibilityMatrix m;
  EXPECT_THROW(
      m.add_entry(minimal_entry(Vendor::AMD, Model::Python, Language::Cpp, 1)),
      IntegrityError);
  EXPECT_THROW(
      m.add_entry(minimal_entry(Vendor::AMD, Model::HIP, Language::Python, 1)),
      IntegrityError);
}

TEST(Matrix, RejectsEntryWithoutRatings) {
  CompatibilityMatrix m;
  SupportEntry e;
  e.combo = Combination{Vendor::AMD, Model::HIP, Language::Cpp};
  e.description_id = 1;
  EXPECT_THROW(m.add_entry(e), IntegrityError);
}

TEST(Matrix, RejectsMoreThanTwoRatings) {
  CompatibilityMatrix m;
  SupportEntry e = minimal_entry(Vendor::AMD, Model::HIP, Language::Cpp, 1);
  e.ratings.push_back(Rating{SupportCategory::Limited, Provider::Community, ""});
  e.ratings.push_back(Rating{SupportCategory::Limited, Provider::Community, ""});
  EXPECT_THROW(m.add_entry(e), IntegrityError);
}

TEST(Matrix, RejectsDuplicateDescriptions) {
  CompatibilityMatrix m;
  m.add_description(Description{1, "t", "x", {}});
  EXPECT_THROW(m.add_description(Description{1, "t2", "y", {}}),
               IntegrityError);
}

TEST(Matrix, RejectsNonPositiveDescriptionId) {
  CompatibilityMatrix m;
  EXPECT_THROW(m.add_description(Description{0, "t", "x", {}}),
               IntegrityError);
  EXPECT_THROW(m.add_description(Description{-3, "t", "x", {}}),
               IntegrityError);
}

TEST(Matrix, ValidateRejectsWrongCellCount) {
  CompatibilityMatrix m;
  m.add_description(Description{1, "t", "x", {}});
  m.add_entry(minimal_entry(Vendor::AMD, Model::HIP, Language::Cpp, 1));
  EXPECT_THROW(m.validate(), IntegrityError);
}

TEST(Matrix, AtThrowsForMissingCell) {
  CompatibilityMatrix m;
  EXPECT_THROW(
      (void)m.at(Combination{Vendor::AMD, Model::HIP, Language::Cpp}),
      LookupError);
}

TEST(Matrix, FindReturnsNullForMissingCell) {
  CompatibilityMatrix m;
  EXPECT_EQ(m.find(Combination{Vendor::AMD, Model::HIP, Language::Cpp}),
            nullptr);
}

TEST(Matrix, DescriptionThrowsForMissingId) {
  CompatibilityMatrix m;
  EXPECT_THROW((void)m.description(7), LookupError);
}

TEST(Matrix, LookupAfterInsert) {
  CompatibilityMatrix m;
  m.add_entry(minimal_entry(Vendor::Intel, Model::SYCL, Language::Cpp, 3,
                            SupportCategory::Full, Provider::PlatformVendor));
  const SupportEntry& e =
      m.at(Vendor::Intel, Model::SYCL, Language::Cpp);
  EXPECT_EQ(e.description_id, 3);
  EXPECT_EQ(e.primary().category, SupportCategory::Full);
  EXPECT_NE(m.find(e.combo), nullptr);
}

TEST(Matrix, EntriesSortedInFigureOrder) {
  CompatibilityMatrix m;
  m.add_entry(minimal_entry(Vendor::Intel, Model::SYCL, Language::Cpp, 1));
  m.add_entry(minimal_entry(Vendor::NVIDIA, Model::CUDA, Language::Cpp, 1));
  m.add_entry(minimal_entry(Vendor::AMD, Model::HIP, Language::Cpp, 1));
  const auto entries = m.entries();
  ASSERT_EQ(entries.size(), 3u);
  // Figure row order: NVIDIA, AMD, Intel.
  EXPECT_EQ(entries[0]->combo.vendor, Vendor::NVIDIA);
  EXPECT_EQ(entries[1]->combo.vendor, Vendor::AMD);
  EXPECT_EQ(entries[2]->combo.vendor, Vendor::Intel);
}

TEST(Matrix, EnforcesVendorTierProviderConsistency) {
  // "some support" is a vendor category; a community provider must be
  // rejected by validate().
  CompatibilityMatrix m;
  m.add_description(Description{1, "t", "x", {}});
  SupportEntry e = minimal_entry(Vendor::AMD, Model::HIP, Language::Cpp, 1,
                                 SupportCategory::Some, Provider::Community);
  m.add_entry(e);
  EXPECT_THROW(m.validate(), IntegrityError);
}

TEST(Matrix, BestCategoryPicksStrongerRating) {
  SupportEntry e;
  e.combo = Combination{Vendor::Intel, Model::CUDA, Language::Cpp};
  e.ratings.push_back(
      Rating{SupportCategory::Limited, Provider::Community, ""});
  e.ratings.push_back(
      Rating{SupportCategory::IndirectGood, Provider::PlatformVendor, ""});
  EXPECT_EQ(e.best_category(), SupportCategory::IndirectGood);
  EXPECT_TRUE(e.usable());
}

TEST(Matrix, BestRouteRank) {
  SupportEntry e;
  Route weak;
  weak.maturity = Maturity::Retired;
  Route strong;
  strong.maturity = Maturity::Production;
  strong.provider = Provider::PlatformVendor;
  e.routes = {weak, strong};
  EXPECT_EQ(e.best_route_rank(), route_rank(strong));
}

TEST(Matrix, WhereFilters) {
  CompatibilityMatrix m;
  m.add_entry(minimal_entry(Vendor::AMD, Model::HIP, Language::Cpp, 1,
                            SupportCategory::Full, Provider::PlatformVendor));
  m.add_entry(minimal_entry(Vendor::AMD, Model::SYCL, Language::Cpp, 1));
  const auto usable_cells =
      m.where([](const SupportEntry& e) { return e.usable(); });
  ASSERT_EQ(usable_cells.size(), 1u);
  EXPECT_EQ(usable_cells[0]->combo.model, Model::HIP);
}

}  // namespace
}  // namespace mcmm
