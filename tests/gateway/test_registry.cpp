// Replica-registry health tests. The eject/readmit state machine is a pure
// function of probe outcomes (record_probe), so most tests run without a
// prober thread; one integration test drives the real prober against a
// live serve::Server.
#include "gateway/registry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "serve/server.hpp"

namespace {

using mcmm::gateway::RegistryConfig;
using mcmm::gateway::ReplicaEndpoint;
using mcmm::gateway::ReplicaHealth;
using mcmm::gateway::ReplicaRegistry;

RegistryConfig no_probing() {
  RegistryConfig config;  // start_probing() is simply never called
  config.eject_after = 3;
  config.readmit_after = 2;
  return config;
}

std::vector<ReplicaEndpoint> endpoints(std::size_t n) {
  std::vector<ReplicaEndpoint> eps(n);
  for (std::size_t i = 0; i < n; ++i) {
    eps[i].port = static_cast<std::uint16_t>(9000 + i);
  }
  return eps;
}

TEST(ReplicaRegistry, StartsHealthy) {
  ReplicaRegistry registry(endpoints(3), no_probing());
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.healthy_count(), 3u);
  std::vector<std::size_t> out;
  registry.eligible(out);
  EXPECT_EQ(out, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ReplicaRegistry, EjectsAfterConsecutiveFailures) {
  ReplicaRegistry registry(endpoints(2), no_probing());
  registry.record_probe(0, false, 0, -1);
  registry.record_probe(0, false, 0, -1);
  EXPECT_EQ(registry.at(0).health.load(), ReplicaHealth::Healthy);
  registry.record_probe(0, false, 0, -1);
  EXPECT_EQ(registry.at(0).health.load(), ReplicaHealth::Ejected);
  EXPECT_EQ(registry.healthy_count(), 1u);
  EXPECT_EQ(registry.ejections_total(), 1u);
  std::vector<std::size_t> out;
  registry.eligible(out);
  EXPECT_EQ(out, (std::vector<std::size_t>{1}));
}

TEST(ReplicaRegistry, SuccessResetsTheFailureStreak) {
  ReplicaRegistry registry(endpoints(1), no_probing());
  registry.record_probe(0, false, 0, -1);
  registry.record_probe(0, false, 0, -1);
  registry.record_probe(0, true, 0, 42);
  registry.record_probe(0, false, 0, -1);
  registry.record_probe(0, false, 0, -1);
  EXPECT_EQ(registry.at(0).health.load(), ReplicaHealth::Healthy);
}

TEST(ReplicaRegistry, ReadmissionGoesThroughHalfOpen) {
  ReplicaRegistry registry(endpoints(1), no_probing());
  for (int i = 0; i < 3; ++i) registry.record_probe(0, false, 0, -1);
  ASSERT_EQ(registry.at(0).health.load(), ReplicaHealth::Ejected);

  registry.record_probe(0, true, 0, 42);
  EXPECT_EQ(registry.at(0).health.load(), ReplicaHealth::HalfOpen);
  EXPECT_EQ(registry.healthy_count(), 0u);  // half-open is not eligible

  registry.record_probe(0, true, 0, 42);
  EXPECT_EQ(registry.at(0).health.load(), ReplicaHealth::Healthy);
  EXPECT_EQ(registry.healthy_count(), 1u);
}

TEST(ReplicaRegistry, HalfOpenFailureEjectsAgain) {
  ReplicaRegistry registry(endpoints(1), no_probing());
  for (int i = 0; i < 3; ++i) registry.record_probe(0, false, 0, -1);
  registry.record_probe(0, true, 0, 42);
  ASSERT_EQ(registry.at(0).health.load(), ReplicaHealth::HalfOpen);

  registry.record_probe(0, false, 0, -1);
  EXPECT_EQ(registry.at(0).health.load(), ReplicaHealth::Ejected);
  EXPECT_EQ(registry.ejections_total(), 2u);

  // Readmission still works after the relapse.
  registry.record_probe(0, true, 0, 42);
  registry.record_probe(0, true, 0, 42);
  EXPECT_EQ(registry.at(0).health.load(), ReplicaHealth::Healthy);
}

TEST(ReplicaRegistry, SuccessfulProbeRefreshesLoadAndPid) {
  ReplicaRegistry registry(endpoints(1), no_probing());
  EXPECT_EQ(registry.at(0).pid.load(), -1);
  registry.record_probe(0, true, 7, 1234);
  EXPECT_EQ(registry.at(0).reported_in_flight.load(), 7u);
  EXPECT_EQ(registry.at(0).pid.load(), 1234);
  registry.at(0).in_flight.store(2);
  EXPECT_EQ(registry.at(0).load(), 9u);
}

TEST(ReplicaRegistry, LiveProberTracksAServer) {
  mcmm::serve::ServerConfig server_config;
  server_config.port = 0;
  server_config.threads = 2;
  auto server = std::make_unique<mcmm::serve::Server>(
      mcmm::data::paper_matrix(), server_config);
  server->start();

  RegistryConfig config;
  config.probe_interval_ms = 25;
  config.probe_timeout_ms = 250;
  config.eject_after = 2;
  config.readmit_after = 1;
  std::vector<ReplicaEndpoint> eps(1);
  eps[0].port = server->port();
  ReplicaRegistry registry(std::move(eps), config);
  registry.start_probing();

  // The prober should discover the replica's pid (our own, in-process).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (registry.at(0).pid.load() <= 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(registry.at(0).pid.load(), 0);
  EXPECT_EQ(registry.at(0).health.load(), ReplicaHealth::Healthy);

  // Kill the replica; the prober must eject it.
  server.reset();
  while (registry.at(0).health.load() != ReplicaHealth::Ejected &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(registry.at(0).health.load(), ReplicaHealth::Ejected);
  EXPECT_EQ(registry.healthy_count(), 0u);
  registry.stop_probing();
}

TEST(ReplicaHealthNames, ToString) {
  EXPECT_STREQ(mcmm::gateway::to_string(ReplicaHealth::Healthy), "healthy");
  EXPECT_STREQ(mcmm::gateway::to_string(ReplicaHealth::Ejected), "ejected");
  EXPECT_STREQ(mcmm::gateway::to_string(ReplicaHealth::HalfOpen),
               "half-open");
}

}  // namespace
