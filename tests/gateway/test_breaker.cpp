// State-machine tests for the circuit breaker and retry budget. Time is
// injected as milliseconds, so every transition — including cooldowns —
// runs without a single sleep.
#include "gateway/breaker.hpp"

#include <gtest/gtest.h>

namespace {

using mcmm::gateway::BreakerConfig;
using mcmm::gateway::CircuitBreaker;
using mcmm::gateway::RetryBudget;
using mcmm::gateway::RetryBudgetConfig;
using State = mcmm::gateway::CircuitBreaker::State;

BreakerConfig small_breaker() {
  BreakerConfig config;
  config.failure_threshold = 3;
  config.open_cooldown_ms = 100;
  return config;
}

TEST(CircuitBreaker, StartsClosedAndAllows) {
  CircuitBreaker breaker(small_breaker());
  EXPECT_EQ(breaker.state(0), State::Closed);
  EXPECT_TRUE(breaker.allow(0));
  EXPECT_TRUE(breaker.allow(0));  // closed admits everything
}

TEST(CircuitBreaker, OpensAfterConsecutiveFailures) {
  CircuitBreaker breaker(small_breaker());
  breaker.record_failure(10);
  breaker.record_failure(20);
  EXPECT_EQ(breaker.state(20), State::Closed);  // below threshold
  breaker.record_failure(30);
  EXPECT_EQ(breaker.state(30), State::Open);
  EXPECT_FALSE(breaker.allow(30));
  EXPECT_FALSE(breaker.allow(129));  // cooldown not yet elapsed
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak) {
  CircuitBreaker breaker(small_breaker());
  breaker.record_failure(0);
  breaker.record_failure(0);
  breaker.record_success(0);
  breaker.record_failure(0);
  breaker.record_failure(0);
  EXPECT_EQ(breaker.state(0), State::Closed);
}

TEST(CircuitBreaker, HalfOpenAdmitsExactlyOneTrial) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 3; ++i) breaker.record_failure(0);
  EXPECT_EQ(breaker.state(100), State::HalfOpen);
  EXPECT_TRUE(breaker.allow(100));    // claims the trial slot
  EXPECT_FALSE(breaker.allow(100));   // second request is refused
  EXPECT_FALSE(breaker.allow(1000));  // still only one trial outstanding
}

TEST(CircuitBreaker, TrialSuccessCloses) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 3; ++i) breaker.record_failure(0);
  ASSERT_TRUE(breaker.allow(100));
  breaker.record_success(110);
  EXPECT_EQ(breaker.state(110), State::Closed);
  EXPECT_TRUE(breaker.allow(110));
}

TEST(CircuitBreaker, TrialFailureReopensWithFreshCooldown) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 3; ++i) breaker.record_failure(0);
  ASSERT_TRUE(breaker.allow(100));
  breaker.record_failure(150);
  EXPECT_EQ(breaker.state(150), State::Open);
  EXPECT_FALSE(breaker.allow(249));  // new cooldown runs from the failure
  EXPECT_EQ(breaker.state(250), State::HalfOpen);
  EXPECT_TRUE(breaker.allow(250));
}

TEST(CircuitBreaker, AbandonedTrialReleasesTheSlot) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 3; ++i) breaker.record_failure(0);
  ASSERT_TRUE(breaker.allow(100));
  EXPECT_FALSE(breaker.allow(100));
  breaker.record_abandoned();  // e.g. a hedge won elsewhere
  EXPECT_TRUE(breaker.allow(100));
}

TEST(RetryBudget, StartsWithTheBurstAllowance) {
  RetryBudgetConfig config;
  config.ratio = 0.1;
  config.burst = 3;
  RetryBudget budget(config);
  EXPECT_EQ(budget.balance(), 3u);
  EXPECT_TRUE(budget.try_withdraw());
  EXPECT_TRUE(budget.try_withdraw());
  EXPECT_TRUE(budget.try_withdraw());
  EXPECT_FALSE(budget.try_withdraw());  // exhausted
  EXPECT_EQ(budget.balance(), 0u);
}

TEST(RetryBudget, RequestsEarnFractionalTokens) {
  RetryBudgetConfig config;
  config.ratio = 0.1;
  config.burst = 3;
  RetryBudget budget(config);
  while (budget.try_withdraw()) {
  }
  for (int i = 0; i < 9; ++i) budget.on_request();
  EXPECT_FALSE(budget.try_withdraw());  // 0.9 tokens is not a whole one
  budget.on_request();
  EXPECT_TRUE(budget.try_withdraw());  // the 10th request completes it
  EXPECT_FALSE(budget.try_withdraw());
}

TEST(RetryBudget, DepositsAreCappedAtTheBurst) {
  RetryBudgetConfig config;
  config.ratio = 0.1;
  config.burst = 2;
  RetryBudget budget(config);
  for (int i = 0; i < 1000; ++i) budget.on_request();
  EXPECT_EQ(budget.balance(), 2u);
  EXPECT_TRUE(budget.try_withdraw());
  EXPECT_TRUE(budget.try_withdraw());
  EXPECT_FALSE(budget.try_withdraw());
}

}  // namespace
