#pragma once
// Minimal blocking HTTP test client for gateway loopback tests (the same
// shape as the one in tests/serve/test_server.cpp, shared here across the
// gateway test files).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace mcmm::gateway::testing {

class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }

  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  [[nodiscard]] bool connected() const { return connected_; }

  bool send_raw(const std::string& wire) {
    std::size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  struct Reply {
    int status{-1};
    std::string headers;
    std::string body;
    [[nodiscard]] std::string header(const std::string& name) const {
      const std::string needle = "\r\n" + name + ": ";
      const std::size_t pos = headers.find(needle);
      if (pos == std::string::npos) return {};
      const std::size_t start = pos + needle.size();
      return headers.substr(start, headers.find('\r', start) - start);
    }
  };

  /// Reads exactly one response off the connection (keep-alive safe).
  Reply read_reply() {
    Reply reply;
    std::size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!fill()) return reply;
    }
    reply.headers = buffer_.substr(0, header_end + 4);
    buffer_.erase(0, header_end + 4);
    if (reply.headers.rfind("HTTP/1.1 ", 0) != 0) return reply;
    reply.status = std::atoi(reply.headers.c_str() + 9);
    std::size_t content_length = 0;
    const std::string cl = reply.header("Content-Length");
    if (!cl.empty()) content_length = std::strtoul(cl.c_str(), nullptr, 10);
    while (buffer_.size() < content_length) {
      if (!fill()) return reply;
    }
    reply.body = buffer_.substr(0, content_length);
    buffer_.erase(0, content_length);
    return reply;
  }

  Reply get(const std::string& target, const std::string& headers = "") {
    if (!send_raw("GET " + target + " HTTP/1.1\r\nHost: t\r\n" + headers +
                  "\r\n")) {
      return {};
    }
    return read_reply();
  }

  /// True when the peer closed the connection (clean EOF).
  bool at_eof() {
    if (!buffer_.empty()) return false;
    return !fill();
  }

 private:
  bool fill() {
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_{-1};
  bool connected_{false};
  std::string buffer_;
};

}  // namespace mcmm::gateway::testing
