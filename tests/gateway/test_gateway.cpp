// Loopback integration tests for the gateway: an in-process fleet of
// serve::Servers behind an in-process Gateway, driven over real sockets.
// Covers proxy correctness (byte-identical bodies, request-id and 304
// propagation), fault tolerance (kill a replica under load, zero client
// failures), overload retries, hedging (via a deliberately slow fake
// upstream), and graceful drain.
#include "gateway/gateway.hpp"

#include <dirent.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/dataset.hpp"
#include "loopback_client.hpp"
#include "serve/server.hpp"

namespace {

using mcmm::data::paper_matrix;
using mcmm::gateway::Gateway;
using mcmm::gateway::GatewayConfig;
using mcmm::gateway::Policy;
using mcmm::gateway::ReplicaEndpoint;
using mcmm::gateway::ReplicaHealth;
using mcmm::gateway::testing::TestClient;
using mcmm::serve::Server;
using mcmm::serve::ServerConfig;

bool is_hex_id(const std::string& id) {
  if (id.size() != 16) return false;
  for (const char c : id) {
    if (std::isxdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

class GatewayTest : public ::testing::Test {
 protected:
  void start_cluster(std::size_t replicas, GatewayConfig config = {},
                     unsigned max_in_flight = 0) {
    std::vector<ReplicaEndpoint> endpoints;
    for (std::size_t i = 0; i < replicas; ++i) {
      ServerConfig server_config;
      server_config.port = 0;
      server_config.threads = 2;
      server_config.max_in_flight = max_in_flight;
      servers_.push_back(
          std::make_unique<Server>(paper_matrix(), server_config));
      servers_.back()->start();
      ReplicaEndpoint ep;
      ep.port = servers_.back()->port();
      endpoints.push_back(ep);
    }
    config.port = 0;
    config.threads = 4;
    gateway_ = std::make_unique<Gateway>(std::move(endpoints),
                                         std::move(config));
    gateway_->start();
  }

  void TearDown() override {
    gateway_.reset();
    servers_.clear();
  }

  std::vector<std::unique_ptr<Server>> servers_;
  std::unique_ptr<Gateway> gateway_;
};

TEST_F(GatewayTest, ProxiedBodyIsByteIdenticalToTheReplica) {
  start_cluster(3);
  TestClient direct(servers_[0]->port());
  const auto want = direct.get("/v1/matrix?format=txt");
  ASSERT_EQ(want.status, 200);
  ASSERT_FALSE(want.body.empty());

  TestClient client(gateway_->port());
  const auto got = client.get("/v1/matrix?format=txt");
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(got.body, want.body);
  EXPECT_EQ(got.header("Content-Type"), want.header("Content-Type"));
  EXPECT_EQ(got.header("ETag"), want.header("ETag"));
}

TEST_F(GatewayTest, RequestIdIsEchoedEndToEnd) {
  start_cluster(2);
  TestClient client(gateway_->port());
  const auto reply =
      client.get("/v1/matrix", "X-Request-Id: gw-test-0042\r\n");
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.header("X-Request-Id"), "gw-test-0042");
}

TEST_F(GatewayTest, RequestIdIsMintedWhenAbsentOrInvalid) {
  start_cluster(2);
  TestClient client(gateway_->port());
  const auto minted = client.get("/v1/matrix");
  EXPECT_EQ(minted.status, 200);
  EXPECT_TRUE(is_hex_id(minted.header("X-Request-Id")))
      << "got: " << minted.header("X-Request-Id");

  const auto replaced =
      client.get("/v1/matrix", "X-Request-Id: bad id with spaces\r\n");
  EXPECT_EQ(replaced.status, 200);
  EXPECT_TRUE(is_hex_id(replaced.header("X-Request-Id")))
      << "got: " << replaced.header("X-Request-Id");
}

TEST_F(GatewayTest, WireLevelConditionalGetGets304ThroughTheProxy) {
  start_cluster(3);
  TestClient client(gateway_->port());
  const auto first = client.get("/v1/matrix");
  ASSERT_EQ(first.status, 200);
  const std::string etag = first.header("ETag");
  ASSERT_FALSE(etag.empty());

  const auto second =
      client.get("/v1/matrix", "If-None-Match: " + etag + "\r\n");
  EXPECT_EQ(second.status, 304);
  EXPECT_EQ(second.header("ETag"), etag);
  EXPECT_TRUE(second.body.empty());

  // The keep-alive connection must survive the bodiless 304.
  const auto third = client.get("/healthz");
  EXPECT_EQ(third.status, 200);
}

TEST_F(GatewayTest, GatewayHealthzAndReplicasReportTheFleet) {
  start_cluster(3);
  TestClient client(gateway_->port());
  const auto health = client.get("/gateway/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"replicas\":3"), std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("\"healthy\":3"), std::string::npos)
      << health.body;

  const auto replicas = client.get("/gateway/replicas");
  EXPECT_EQ(replicas.status, 200);
  std::size_t entries = 0;
  for (std::size_t pos = 0;
       (pos = replicas.body.find("\"host\"", pos)) != std::string::npos;
       ++pos) {
    ++entries;
  }
  EXPECT_EQ(entries, 3u) << replicas.body;
  EXPECT_NE(replicas.body.find("\"health\":\"healthy\""), std::string::npos);
}

TEST_F(GatewayTest, MetricsExposeGatewayFamilies) {
  start_cluster(2);
  TestClient client(gateway_->port());
  ASSERT_EQ(client.get("/v1/matrix").status, 200);
  const auto reply = client.get("/metrics");
  EXPECT_EQ(reply.status, 200);
  for (const char* family :
       {"mcmm_gateway_upstream_requests_total",
        "mcmm_gateway_upstream_duration_seconds_bucket",
        "mcmm_gateway_retries_total", "mcmm_gateway_hedges_total",
        "mcmm_gateway_replica_health", "mcmm_gateway_breaker_state",
        "mcmm_gateway_healthy_replicas", "mcmm_http_requests_total",
        "mcmm_eventloop_open_connections", "mcmm_eventloop_wakeups_total"}) {
    EXPECT_NE(reply.body.find(family), std::string::npos)
        << "missing family " << family;
  }
}

TEST_F(GatewayTest, KillingAReplicaUnderLoadLosesNoRequests) {
  GatewayConfig config;
  config.registry.probe_interval_ms = 50;
  config.registry.eject_after = 2;
  start_cluster(3, config);

  constexpr int kThreads = 4;
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<int> last_bad_status{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        TestClient client(gateway_->port());
        for (int i = 0; i < 20 && !stop.load(); ++i) {
          const auto reply = client.get("/v1/matrix");
          if (reply.status == 200) {
            ok.fetch_add(1);
          } else {
            failed.fetch_add(1);
            last_bad_status.store(reply.status);
          }
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // SIGKILL equivalent for an in-process replica: shut it down abruptly
  // while the gateway is mid-stream against it.
  servers_[0]->shutdown();
  servers_[0]->join();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& c : clients) c.join();

  EXPECT_GT(ok.load(), 0u);
  EXPECT_EQ(failed.load(), 0u)
      << "clients saw failures through the replica kill; last status: "
      << last_bad_status.load();
  EXPECT_EQ(servers_[0]->metrics().in_flight(), 0u);
}

TEST_F(GatewayTest, AllReplicasDownYields503WithRetryAfter) {
  GatewayConfig config;
  config.registry.probe_interval_ms = 25;
  config.registry.eject_after = 2;
  start_cluster(2, config);

  for (auto& server : servers_) {
    server->shutdown();
    server->join();
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (gateway_->registry().healthy_count() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(gateway_->registry().healthy_count(), 0u);

  TestClient client(gateway_->port());
  const auto reply = client.get("/v1/matrix");
  EXPECT_EQ(reply.status, 503);
  EXPECT_FALSE(reply.header("Retry-After").empty());

  TestClient health_client(gateway_->port());
  const auto health = health_client.get("/gateway/healthz");
  EXPECT_EQ(health.status, 503);
  EXPECT_EQ(health.header("Retry-After"), "1");
}

TEST_F(GatewayTest, OverloadedReplicaIsRetriedOnAnother) {
  GatewayConfig config;
  config.policy = Policy::RoundRobin;  // first pick is replica 0
  config.registry.probe_interval_ms = 60000;  // keep probes off the gauge
  start_cluster(2, config, /*max_in_flight=*/1);

  // Pin replica 0's in-flight gauge: its next real request sees gauge 2 > 1
  // and sheds with 503 + Retry-After.
  servers_[0]->metrics().begin_request();

  TestClient client(gateway_->port());
  const auto reply = client.get("/v1/matrix");
  EXPECT_EQ(reply.status, 200);  // transparently retried on replica 1
  EXPECT_GE(gateway_->gateway_metrics().retries_total(), 1u);

  servers_[0]->metrics().end_request();
}

TEST_F(GatewayTest, FullyOverloadedFleetForwardsThe503) {
  GatewayConfig config;
  config.registry.probe_interval_ms = 60000;
  start_cluster(2, config, /*max_in_flight=*/1);
  for (auto& server : servers_) server->metrics().begin_request();

  TestClient client(gateway_->port());
  const auto reply = client.get("/v1/matrix");
  EXPECT_EQ(reply.status, 503);
  EXPECT_EQ(reply.header("Retry-After"), "1");

  for (auto& server : servers_) server->metrics().end_request();
}

TEST_F(GatewayTest, DrainsCleanlyUnderLoad) {
  start_cluster(3);
  constexpr int kThreads = 4;
  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      while (true) {
        TestClient client(gateway_->port());
        if (!client.connected()) return;
        for (int i = 0; i < 50; ++i) {
          const auto reply = client.get("/v1/matrix");
          if (reply.status != 200) return;
          served.fetch_add(1);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gateway_->shutdown();
  gateway_->join();
  for (auto& c : clients) c.join();

  EXPECT_GT(served.load(), 0u);
  // Every in-flight request finished; nothing is stuck on the replicas.
  for (std::size_t i = 0; i < gateway_->registry().size(); ++i) {
    EXPECT_EQ(gateway_->registry().at(i).in_flight.load(), 0u);
  }
  TestClient late(gateway_->port());
  EXPECT_FALSE(late.connected() && late.get("/healthz").status == 200);
}

// --- Hedging -------------------------------------------------------------

/// A scriptable upstream: answers the prober's /healthz like a replica and
/// serves /v1/matrix after a configurable delay with a recognizable body.
/// Delays ride the listener's timer wheel via the async seam, so a slow
/// FakeUpstream holds any number of in-flight requests without occupying
/// a worker thread per request.
class FakeUpstream : public mcmm::serve::HttpListener {
 public:
  FakeUpstream(std::string tag, int delay_ms)
      : HttpListener(listener_config()),
        tag_(std::move(tag)),
        delay_ms_(delay_ms) {
    start();
  }
  ~FakeUpstream() override {
    shutdown();
    join();
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_.load(); }

 protected:
  mcmm::serve::Response handle_request(const mcmm::serve::Request& req,
                                       const std::string&) override {
    mcmm::serve::Response resp;
    if (req.path == "/healthz") {
      resp.body = "{\"status\":\"ok\",\"pid\":" + std::to_string(::getpid()) +
                  ",\"in_flight\":0,\"draining\":false}";
      return resp;
    }
    hits_.fetch_add(1);
    resp.content_type = "text/plain";
    resp.body = tag_;
    return resp;
  }

  bool dispatch_async(const mcmm::serve::Request& req, const std::string&,
                      mcmm::serve::ResponseToken token) override {
    if (req.path == "/healthz" || delay_ms_ <= 0) {
      return false;  // answer synchronously via handle_request
    }
    hits_.fetch_add(1);
    auto* pending = new Pending;
    pending->token = token;
    pending->resp.content_type = "text/plain";
    pending->resp.body = tag_;
    pending->timer.on_fire = [this, pending] {
      complete_async(pending->token, std::move(pending->resp));
      delete pending;
    };
    // The wheel is loop-thread-only; hop there to arm.
    const int delay = delay_ms_;
    loop().post([this, pending, delay] {
      loop().wheel().arm(pending->timer, loop().now_ms(), delay);
    });
    return true;
  }

 private:
  struct Pending {
    mcmm::serve::ResponseToken token;
    mcmm::serve::Response resp;
    mcmm::serve::Timer timer;
  };

  static mcmm::serve::ListenerConfig listener_config() {
    mcmm::serve::ListenerConfig config;
    config.port = 0;
    config.threads = 2;
    return config;
  }

  std::string tag_;
  int delay_ms_;
  std::atomic<std::uint64_t> hits_{0};
};

/// Threads currently alive in this process (reads /proc/self/task).
std::size_t task_count() {
  std::size_t n = 0;
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return 0;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++n;
  }
  ::closedir(dir);
  return n;
}

TEST(GatewayEventDriven, SlowUpstreamsDoNotBlockGatewayThreads) {
  // 16 concurrent requests against two 300ms upstreams through a gateway
  // with only 2 workers. On the old thread-per-upstream design the workers
  // would serialize this into >= 8 * 300ms; on the readiness loop every
  // upstream round-trip is parked on the gateway's epoll, so the batch
  // finishes in roughly one delay — and the gateway spawns no extra
  // threads to do it.
  FakeUpstream a("a", 300);
  FakeUpstream b("b", 300);

  GatewayConfig config;
  config.port = 0;
  config.threads = 2;
  config.policy = Policy::RoundRobin;
  config.hedge_after_ms = 0;  // a hedge would mask the serialization
  config.registry.probe_interval_ms = 60000;
  std::vector<ReplicaEndpoint> endpoints(2);
  endpoints[0].port = a.port();
  endpoints[1].port = b.port();
  Gateway gateway(std::move(endpoints), config);
  gateway.start();

  const std::size_t baseline = task_count();
  constexpr int kClients = 16;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      TestClient client(gateway.port());
      if (client.get("/v1/matrix").status == 200) ok.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // Mid-flight: every upstream exchange is pending. The only new threads
  // are the kClients we just spawned ourselves.
  const std::size_t during = task_count();
  for (auto& c : clients) c.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  EXPECT_EQ(ok.load(), kClients);
  EXPECT_LT(elapsed.count(), 1200)
      << "requests were serialized behind blocked gateway workers";
  EXPECT_LE(during, baseline + kClients)
      << "the gateway grew threads to wait on upstreams";
}

TEST(GatewayHedging, SlowPrimaryIsHedgedAndTheFastReplicaWins) {
  FakeUpstream slow("slow", 400);
  FakeUpstream fast("fast", 0);

  GatewayConfig config;
  config.port = 0;
  config.threads = 4;
  config.policy = Policy::RoundRobin;  // deterministic: primary is `slow`
  config.hedge_after_ms = 20;
  config.registry.probe_interval_ms = 60000;
  std::vector<ReplicaEndpoint> endpoints(2);
  endpoints[0].port = slow.port();
  endpoints[1].port = fast.port();
  Gateway gateway(std::move(endpoints), config);
  gateway.start();

  TestClient client(gateway.port());
  const auto start = std::chrono::steady_clock::now();
  const auto reply = client.get("/v1/matrix");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.body, "fast") << "the hedge should win";
  EXPECT_LT(elapsed.count(), 350) << "reply should not wait for the slow "
                                     "primary";
  EXPECT_EQ(gateway.gateway_metrics().hedges_total(), 1u);
  EXPECT_EQ(gateway.gateway_metrics().hedge_wins_total(), 1u);
  EXPECT_EQ(fast.hits(), 1u);
}

TEST(GatewayHedging, FastPrimaryNeverHedges) {
  FakeUpstream a("a", 0);
  FakeUpstream b("b", 0);

  GatewayConfig config;
  config.port = 0;
  config.threads = 2;
  config.policy = Policy::RoundRobin;
  config.hedge_after_ms = 200;
  config.registry.probe_interval_ms = 60000;
  std::vector<ReplicaEndpoint> endpoints(2);
  endpoints[0].port = a.port();
  endpoints[1].port = b.port();
  Gateway gateway(std::move(endpoints), config);
  gateway.start();

  TestClient client(gateway.port());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(client.get("/v1/matrix").status, 200);
  }
  EXPECT_EQ(gateway.gateway_metrics().hedges_total(), 0u);
}

TEST(GatewayHedging, PerfPathIsHedgeEligible) {
  // /v1/perf serves a cached idempotent render, so it sits in the default
  // hedge prefix list next to /v1/matrix.
  FakeUpstream slow("slow", 400);
  FakeUpstream fast("fast", 0);

  GatewayConfig config;
  config.port = 0;
  config.threads = 4;
  config.policy = Policy::RoundRobin;  // deterministic: primary is `slow`
  config.hedge_after_ms = 20;
  config.registry.probe_interval_ms = 60000;
  std::vector<ReplicaEndpoint> endpoints(2);
  endpoints[0].port = slow.port();
  endpoints[1].port = fast.port();
  Gateway gateway(std::move(endpoints), config);
  gateway.start();

  TestClient client(gateway.port());
  const auto reply = client.get("/v1/perf?format=txt");
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.body, "fast") << "the hedge should win";
  EXPECT_EQ(gateway.gateway_metrics().hedges_total(), 1u);
}

TEST(GatewayHedging, OffPrefixPathsAreNeverHedged) {
  // /v1/claims is not in the hedge prefix list: the request must ride out
  // the slow primary even though a hedge would have been faster.
  FakeUpstream slow("slow", 120);
  FakeUpstream fast("fast", 0);

  GatewayConfig config;
  config.port = 0;
  config.threads = 2;
  config.policy = Policy::RoundRobin;
  config.hedge_after_ms = 20;
  config.registry.probe_interval_ms = 60000;
  std::vector<ReplicaEndpoint> endpoints(2);
  endpoints[0].port = slow.port();
  endpoints[1].port = fast.port();
  Gateway gateway(std::move(endpoints), config);
  gateway.start();

  TestClient client(gateway.port());
  const auto reply = client.get("/v1/claims");
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.body, "slow") << "off-prefix paths must not hedge";
  EXPECT_EQ(gateway.gateway_metrics().hedges_total(), 0u);
}

}  // namespace
