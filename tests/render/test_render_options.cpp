// Renderer option-combination sweeps and escaping edge cases.

#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "render/render.hpp"

namespace mcmm::render {
namespace {

const CompatibilityMatrix& matrix() { return data::paper_matrix(); }

struct OptionCombo {
  bool unicode;
  bool legend;
  bool item_numbers;
};

class OptionSweep : public ::testing::TestWithParam<OptionCombo> {};

TEST_P(OptionSweep, TextRendererHonoursEveryCombination) {
  Options opts;
  opts.unicode = GetParam().unicode;
  opts.legend = GetParam().legend;
  opts.item_numbers = GetParam().item_numbers;
  const std::string t = figure1_text(matrix(), opts);
  ASSERT_FALSE(t.empty());
  EXPECT_EQ(t.find("Legend:") != std::string::npos, opts.legend);
  if (!opts.unicode) {
    for (const char c : t) {
      ASSERT_LT(static_cast<unsigned char>(c), 128u);
    }
  } else {
    EXPECT_NE(t.find("●"), std::string::npos);
  }
  // Item numbers: "44" (the Python/Intel item) appears iff enabled.
  EXPECT_EQ(t.find(" 44") != std::string::npos, opts.item_numbers);
}

TEST_P(OptionSweep, MarkdownRendererHonoursEveryCombination) {
  Options opts;
  opts.unicode = GetParam().unicode;
  opts.legend = GetParam().legend;
  opts.item_numbers = GetParam().item_numbers;
  const std::string t = figure1_markdown(matrix(), opts);
  EXPECT_EQ(t.find("full support") != std::string::npos, opts.legend);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, OptionSweep,
    ::testing::Values(OptionCombo{true, true, true},
                      OptionCombo{true, true, false},
                      OptionCombo{true, false, true},
                      OptionCombo{true, false, false},
                      OptionCombo{false, true, true},
                      OptionCombo{false, true, false},
                      OptionCombo{false, false, true},
                      OptionCombo{false, false, false}),
    [](const ::testing::TestParamInfo<OptionCombo>& info) {
      std::string name;
      name += info.param.unicode ? "uni" : "ascii";
      name += info.param.legend ? "_legend" : "_nolegend";
      name += info.param.item_numbers ? "_nums" : "_nonums";
      return name;
    });

TEST(RenderEscaping, HtmlEscapesSpecialCharacters) {
  // Build a matrix with hostile strings and ensure the HTML stays sane.
  CompatibilityMatrix m;
  m.add_description(Description{
      1, "NVIDIA <script> & \"quotes\"",
      "text with <tags> & ampersands and \"double quotes\" inside", {}});
  int id = 1;
  for (const Vendor v : kAllVendors) {
    for (const Model model : kAllModels) {
      for (const Language l :
           {Language::Cpp, Language::Fortran, Language::Python}) {
        if (!language_applies(model, l)) continue;
        SupportEntry e;
        e.combo = Combination{v, model, l};
        e.description_id = 1;
        e.ratings.push_back(Rating{SupportCategory::None, Provider::Nobody,
                                   "a <b> & \"c\""});
        m.add_entry(e);
        ++id;
      }
    }
  }
  const std::string html = figure1_html(m);
  EXPECT_EQ(html.find("<script>"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
  EXPECT_NE(html.find("&quot;"), std::string::npos);
  EXPECT_NE(html.find("&amp;"), std::string::npos);
}

TEST(RenderEscaping, LatexEscapesSpecialCharacters) {
  // The LaTeX legend must escape its category names safely; feed the
  // renderer the real matrix and check no bare specials leak from known
  // content.
  const std::string tex = figure1_latex(matrix());
  // No stray unescaped '&' outside tabular alignment: every line's '&'
  // count must be consistent with the 18 columns (17 separators + text).
  std::istringstream in(tex);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\\\\") == std::string::npos) continue;  // not a row
    // Header rows use \multicolumn spans; check the three data rows.
    const bool data_row = line.rfind("NVIDIA", 0) == 0 ||
                          line.rfind("AMD", 0) == 0 ||
                          line.rfind("Intel", 0) == 0;
    if (!data_row) continue;
    const auto count = std::count(line.begin(), line.end(), '&');
    EXPECT_EQ(count, 17) << line;
  }
}

TEST(RenderCsvEscaping, NoFieldContainsUnquotedComma) {
  const std::string csv = matrix_csv(matrix());
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);  // header
  const auto expected =
      std::count(line.begin(), line.end(), ',');
  while (std::getline(in, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), expected) << line;
  }
}

}  // namespace
}  // namespace mcmm::render
