#include "render/report.hpp"

#include <gtest/gtest.h>

#include "data/dataset.hpp"

namespace mcmm::render {
namespace {

const CompatibilityMatrix& matrix() { return data::paper_matrix(); }

TEST(Report, ClaimsReportAllPass) {
  const Claims claims(matrix());
  const std::string t = claims_report(claims);
  EXPECT_EQ(t.find("[FAIL]"), std::string::npos) << t;
  EXPECT_NE(t.find("[PASS] openmp-everywhere"), std::string::npos);
  EXPECT_NE(t.find("claims hold"), std::string::npos);
}

TEST(Report, StatisticsReportMentionsAllDimensions) {
  const Statistics stats(matrix());
  const std::string t = statistics_report(stats);
  EXPECT_NE(t.find("NVIDIA"), std::string::npos);
  EXPECT_NE(t.find("coverage="), std::string::npos);
  EXPECT_NE(t.find("Fortran"), std::string::npos);
  EXPECT_NE(t.find("Kokkos"), std::string::npos);
  EXPECT_NE(t.find("42/51 combinations usable"), std::string::npos);
  EXPECT_NE(t.find("2 dual-rated cells"), std::string::npos);
  EXPECT_NE(t.find("Primary-rating providers:"), std::string::npos);
}

TEST(Report, PlanReportEmpty) {
  const std::string t = plan_report({});
  EXPECT_NE(t.find("No programming model"), std::string::npos);
}

TEST(Report, PlanReportListsRoutes) {
  const RoutePlanner planner(matrix());
  PlannerQuery q;
  q.language = Language::Fortran;
  q.must_run_on = {Vendor::AMD, Vendor::Intel, Vendor::NVIDIA};
  q.minimum_category = SupportCategory::Some;
  q.require_vendor_support = true;
  const std::string t = plan_report(planner.plan(q));
  EXPECT_NE(t.find("OpenMP"), std::string::npos);
  EXPECT_NE(t.find("ifx"), std::string::npos);       // Intel route
  EXPECT_NE(t.find("nvfortran"), std::string::npos); // NVIDIA route
}

TEST(Report, DescriptionTextIncludesRoutesAndCells) {
  const std::string t = description_text(matrix(), 4);
  EXPECT_NE(t.find("hipfort"), std::string::npos);
  EXPECT_NE(t.find("NVIDIA / HIP / Fortran"), std::string::npos);
  EXPECT_NE(t.find("AMD / HIP / Fortran"), std::string::npos);
}

TEST(Report, DescriptionTextForAll44Items) {
  for (int id = 1; id <= 44; ++id) {
    const std::string t = description_text(matrix(), id);
    EXPECT_GT(t.size(), 50u) << "description " << id;
  }
}

}  // namespace
}  // namespace mcmm::render
