// Golden-file render tests: the Figure 1 text, Markdown, and CSV renders
// are compared byte-for-byte against checked-in expectations under
// tests/render/golden/.  Any drift — a column width, a legend tweak, a
// symbol substitution — fails loudly with the first differing byte.
// Accept an intentional change by regenerating:
//   MCMM_UPDATE_GOLDEN=1 ./test_render --gtest_filter='GoldenRender.*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "data/dataset.hpp"
#include "render/render.hpp"

#ifndef MCMM_GOLDEN_DIR
#error "MCMM_GOLDEN_DIR must point at tests/render/golden"
#endif

namespace {

using mcmm::data::paper_matrix;

std::string golden_path(const char* file) {
  return std::string(MCMM_GOLDEN_DIR) + "/" + file;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void check_golden(const char* file, const std::string& actual) {
  const std::string path = golden_path(file);
  if (std::getenv("MCMM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty()) << "missing golden file " << path;
  if (expected == actual) return;
  std::size_t i = 0;
  while (i < expected.size() && i < actual.size() && expected[i] == actual[i]) {
    ++i;
  }
  const std::size_t from = i > 40 ? i - 40 : 0;
  FAIL() << file << " drifted from its golden render at byte " << i
         << " (expected " << expected.size() << " bytes, got "
         << actual.size() << ")\n"
         << "got:      ..." << actual.substr(from, 80) << "...\n"
         << "expected: ..." << expected.substr(from, 80) << "...\n"
         << "If the change is intentional, rerun with MCMM_UPDATE_GOLDEN=1.";
}

TEST(GoldenRender, Figure1Text) {
  check_golden("figure1.txt", mcmm::render::figure1_text(paper_matrix()));
}

TEST(GoldenRender, Figure1TextAscii) {
  mcmm::render::Options opts;
  opts.unicode = false;
  check_golden("figure1_ascii.txt",
               mcmm::render::figure1_text(paper_matrix(), opts));
}

TEST(GoldenRender, Figure1Markdown) {
  check_golden("figure1.md", mcmm::render::figure1_markdown(paper_matrix()));
}

TEST(GoldenRender, MatrixCsv) {
  check_golden("figure1.csv", mcmm::render::matrix_csv(paper_matrix()));
}

}  // namespace
