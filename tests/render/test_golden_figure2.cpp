// Golden-file gate for Figure 2: the default perf-portability campaign's
// text render is compared byte-for-byte against the committed
// tests/render/golden/figure2.txt. The campaign records only
// simulated-clock quantities, so the bytes are machine- and
// thread-count-independent; any drift — a metric change, a column width,
// a new route — fails loudly. Accept an intentional change with
//   MCMM_UPDATE_GOLDEN=1 ./test_render --gtest_filter='GoldenFigure2.*'
// The same golden gates `mcmm perfbench --format txt` and the served
// GET /v1/perf?format=txt body in CI.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "perfport/perfport.hpp"
#include "render/perf.hpp"

#ifndef MCMM_GOLDEN_DIR
#error "MCMM_GOLDEN_DIR must point at tests/render/golden"
#endif

namespace {

std::string golden_path(const char* file) {
  return std::string(MCMM_GOLDEN_DIR) + "/" + file;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void check_golden(const char* file, const std::string& actual) {
  const std::string path = golden_path(file);
  if (std::getenv("MCMM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty()) << "missing golden file " << path;
  if (expected == actual) return;
  std::size_t i = 0;
  while (i < expected.size() && i < actual.size() && expected[i] == actual[i]) {
    ++i;
  }
  const std::size_t from = i > 40 ? i - 40 : 0;
  FAIL() << file << " drifted from its golden render at byte " << i
         << " (expected " << expected.size() << " bytes, got "
         << actual.size() << ")\n"
         << "got:      ..." << actual.substr(from, 80) << "...\n"
         << "expected: ..." << expected.substr(from, 80) << "...\n"
         << "If the change is intentional, rerun with MCMM_UPDATE_GOLDEN=1.";
}

TEST(GoldenFigure2, DefaultCampaignTextIsByteStable) {
  // The full default ladder (the same config `mcmm perfbench` and
  // GET /v1/perf use) — a few seconds of simulated kernels.
  const mcmm::perfport::PerfReport report = mcmm::perfport::run_campaign();
  check_golden("figure2.txt", mcmm::render::figure2_text(report));
}

}  // namespace
