// Renderer tests: the regenerated Fig. 1 must contain all 51 cells, the
// right symbols, and survive structural checks in every format.

#include "render/render.hpp"

#include <gtest/gtest.h>

#include "data/dataset.hpp"

namespace mcmm::render {
namespace {

const CompatibilityMatrix& matrix() { return data::paper_matrix(); }

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(RenderText, ContainsAllVendorsAndModels) {
  const std::string t = figure1_text(matrix());
  for (const Vendor v : kAllVendors) {
    EXPECT_NE(t.find(to_string(v)), std::string::npos) << to_string(v);
  }
  for (const Model m : kAllModels) {
    EXPECT_NE(t.find(to_string(m)), std::string::npos) << to_string(m);
  }
}

TEST(RenderText, HasThreeDataRowsAndLegend) {
  const std::string t = figure1_text(matrix());
  EXPECT_EQ(count_occurrences(t, "\nNVIDIA"), 1u);
  EXPECT_EQ(count_occurrences(t, "\nAMD"), 1u);
  EXPECT_EQ(count_occurrences(t, "\nIntel"), 1u);
  EXPECT_NE(t.find("Legend:"), std::string::npos);
  EXPECT_NE(t.find("full support"), std::string::npos);
  EXPECT_NE(t.find("no support"), std::string::npos);
}

TEST(RenderText, AsciiModeHasNoUnicode) {
  Options opts;
  opts.unicode = false;
  const std::string t = figure1_text(matrix(), opts);
  for (const char c : t) {
    EXPECT_GE(static_cast<unsigned char>(c), 0u);
    EXPECT_LT(static_cast<unsigned char>(c), 128u) << "non-ASCII in output";
  }
}

TEST(RenderText, RowsAlignInAsciiMode) {
  Options opts;
  opts.unicode = false;
  opts.legend = false;
  const std::string t = figure1_text(matrix(), opts);
  std::vector<std::size_t> lengths;
  std::istringstream in(t);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lengths.push_back(line.size());
  }
  ASSERT_GE(lengths.size(), 5u);  // 2 headers + separator + 3 rows
  // All data/header lines share one width (the separator row may differ by
  // trailing '+' placement, so compare headers and data rows only).
  EXPECT_EQ(lengths[0], lengths[1]);
  EXPECT_EQ(lengths[3], lengths[4]);
  EXPECT_EQ(lengths[1], lengths[3]);
}

TEST(RenderText, ItemNumbersCanBeDisabled) {
  Options opts;
  opts.item_numbers = false;
  opts.legend = false;
  const std::string t = figure1_text(matrix(), opts);
  // Without item numbers there must be no digits in the table at all.
  for (const char c : t) {
    EXPECT_FALSE(c >= '0' && c <= '9') << "digit in table: " << t;
  }
}

TEST(RenderText, CellSymbolDualRating) {
  Options opts;
  const SupportEntry& dual =
      matrix().at(Vendor::Intel, Model::CUDA, Language::Cpp);
  const std::string s = cell_symbol(dual, opts);
  EXPECT_NE(s.find('/'), std::string::npos);
  EXPECT_NE(s.find("31"), std::string::npos);
}

TEST(RenderMarkdown, TableShape) {
  const std::string t = figure1_markdown(matrix());
  // 17 columns + vendor column -> 18 ('|'-separated) fields, 19 pipes.
  std::istringstream in(t);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(count_occurrences(header, "|"), 19u);
  // 3 data rows starting with vendor names.
  EXPECT_NE(t.find("| NVIDIA |"), std::string::npos);
  EXPECT_NE(t.find("| AMD |"), std::string::npos);
  EXPECT_NE(t.find("| Intel |"), std::string::npos);
}

TEST(RenderHtml, StructuralChecks) {
  const std::string t = figure1_html(matrix());
  EXPECT_NE(t.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(t.find("</html>"), std::string::npos);
  // 51 cells -> 51 anchor links into the description list.
  EXPECT_EQ(count_occurrences(t, "<a href=\"#item-"), 51u);
  // 44 description anchors.
  EXPECT_EQ(count_occurrences(t, "<dt id=\"item-"), 44u);
  // Cells carry rating CSS classes.
  EXPECT_GT(count_occurrences(t, "td class=\"full\""), 0u);
  EXPECT_GT(count_occurrences(t, "td class=\"none\""), 0u);
}

TEST(RenderHtml, EscapesEntities) {
  const std::string t = figure1_html(matrix());
  // Description texts contain no raw '<' from the dataset; the generated
  // text must not contain un-escaped quotes inside title attributes.
  EXPECT_EQ(t.find("title=\"\"\""), std::string::npos);
}

TEST(RenderLatex, StructuralChecks) {
  const std::string t = figure1_latex(matrix());
  EXPECT_NE(t.find("\\begin{tabular}"), std::string::npos);
  EXPECT_NE(t.find("\\end{tabular}"), std::string::npos);
  EXPECT_NE(t.find("\\toprule"), std::string::npos);
  EXPECT_NE(t.find("\\bottomrule"), std::string::npos);
  // 3 vendor rows, each ending in \\.
  EXPECT_GE(count_occurrences(t, "\\\\"), 5u);
  // Superscript item numbers present.
  EXPECT_NE(t.find("\\textsuperscript{1}"), std::string::npos);
}

TEST(RenderCsv, OneRowPerCell) {
  const std::string t = matrix_csv(matrix());
  EXPECT_EQ(count_occurrences(t, "\n"), 52u);  // header + 51 cells
  EXPECT_NE(t.find("NVIDIA,CUDA,C++,full support,platform vendor"),
            std::string::npos);
  EXPECT_NE(t.find("Intel,CUDA,C++,indirect good support,platform vendor,"
                   "limited support,community"),
            std::string::npos);
}

TEST(RenderLegend, SixEntries) {
  const std::string t = legend_text();
  for (const SupportCategory c : kAllCategories) {
    EXPECT_NE(t.find(category_name(c)), std::string::npos);
  }
}

}  // namespace
}  // namespace mcmm::render
