// Per-cell rating checks: a parameterized sweep over all 51 cells plus the
// specific ratings the paper's text pins down.

#include <gtest/gtest.h>

#include "data/dataset.hpp"

namespace mcmm {
namespace {

using data::paper_matrix;

std::vector<Combination> all_combinations() {
  std::vector<Combination> out;
  for (const Vendor v : kAllVendors) {
    for (const Model m : kAllModels) {
      for (const Language l :
           {Language::Cpp, Language::Fortran, Language::Python}) {
        if (language_applies(m, l)) out.push_back(Combination{v, m, l});
      }
    }
  }
  return out;
}

class AllCellsTest : public ::testing::TestWithParam<Combination> {};

TEST_P(AllCellsTest, CellExists) {
  EXPECT_NE(paper_matrix().find(GetParam()), nullptr)
      << to_string(GetParam());
}

TEST_P(AllCellsTest, RatingInvariantsHold) {
  const SupportEntry& e = paper_matrix().at(GetParam());
  ASSERT_FALSE(e.ratings.empty());
  ASSERT_LE(e.ratings.size(), 2u);
  for (const Rating& r : e.ratings) {
    EXPECT_FALSE(r.rationale.empty()) << to_string(e.combo);
    if (vendor_provided(r.category)) {
      EXPECT_EQ(r.provider, Provider::PlatformVendor) << to_string(e.combo);
    }
    if (r.category == SupportCategory::None) {
      EXPECT_EQ(r.provider, Provider::Nobody) << to_string(e.combo);
    }
  }
}

TEST_P(AllCellsTest, DualRatingsAreOrderedStrongestFirst) {
  const SupportEntry& e = paper_matrix().at(GetParam());
  if (e.ratings.size() == 2) {
    EXPECT_GE(score(e.ratings[0].category), score(e.ratings[1].category))
        << to_string(e.combo);
  }
}

TEST_P(AllCellsTest, DescriptionIdInRange) {
  const SupportEntry& e = paper_matrix().at(GetParam());
  EXPECT_GE(e.description_id, 1);
  EXPECT_LE(e.description_id, kDescriptionCount);
}

INSTANTIATE_TEST_SUITE_P(
    Figure1, AllCellsTest, ::testing::ValuesIn(all_combinations()),
    [](const ::testing::TestParamInfo<Combination>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// --- Specific cells the paper text determines unambiguously. ---

struct ExpectedRating {
  Vendor vendor;
  Model model;
  Language language;
  SupportCategory category;
  Provider provider;
};

class ExpectedRatingTest : public ::testing::TestWithParam<ExpectedRating> {};

TEST_P(ExpectedRatingTest, PrimaryRatingMatches) {
  const ExpectedRating& exp = GetParam();
  const SupportEntry& e = paper_matrix().at(
      Combination{exp.vendor, exp.model, exp.language});
  EXPECT_EQ(e.primary().category, exp.category) << to_string(e.combo);
  EXPECT_EQ(e.primary().provider, exp.provider) << to_string(e.combo);
}

INSTANTIATE_TEST_SUITE_P(
    PaperPinnedCells, ExpectedRatingTest,
    ::testing::Values(
        // The three native models on their home platform are full support.
        ExpectedRating{Vendor::NVIDIA, Model::CUDA, Language::Cpp,
                       SupportCategory::Full, Provider::PlatformVendor},
        ExpectedRating{Vendor::AMD, Model::HIP, Language::Cpp,
                       SupportCategory::Full, Provider::PlatformVendor},
        ExpectedRating{Vendor::Intel, Model::SYCL, Language::Cpp,
                       SupportCategory::Full, Provider::PlatformVendor},
        // Sec. 5: OpenACC C++ on NVIDIA rated complete...
        ExpectedRating{Vendor::NVIDIA, Model::OpenACC, Language::Cpp,
                       SupportCategory::Full, Provider::PlatformVendor},
        // ... while OpenMP C++ on NVIDIA is 'some support'.
        ExpectedRating{Vendor::NVIDIA, Model::OpenMP, Language::Cpp,
                       SupportCategory::Some, Provider::PlatformVendor},
        // HIPIFY makes CUDA-on-AMD 'indirect good support'.
        ExpectedRating{Vendor::AMD, Model::CUDA, Language::Cpp,
                       SupportCategory::IndirectGood,
                       Provider::PlatformVendor},
        // Intel's OpenMP C++/Fortran are the vendor's key models.
        ExpectedRating{Vendor::Intel, Model::OpenMP, Language::Cpp,
                       SupportCategory::Full, Provider::PlatformVendor},
        ExpectedRating{Vendor::Intel, Model::OpenMP, Language::Fortran,
                       SupportCategory::Full, Provider::PlatformVendor},
        // AMD stdpar C++: no production vendor solution -> limited.
        ExpectedRating{Vendor::AMD, Model::Standard, Language::Cpp,
                       SupportCategory::Limited, Provider::PlatformVendor},
        // AMD stdpar Fortran: nothing at all.
        ExpectedRating{Vendor::AMD, Model::Standard, Language::Fortran,
                       SupportCategory::None, Provider::Nobody},
        // SYCL Fortran: nothing anywhere.
        ExpectedRating{Vendor::NVIDIA, Model::SYCL, Language::Fortran,
                       SupportCategory::None, Provider::Nobody},
        ExpectedRating{Vendor::AMD, Model::SYCL, Language::Fortran,
                       SupportCategory::None, Provider::Nobody},
        ExpectedRating{Vendor::Intel, Model::SYCL, Language::Fortran,
                       SupportCategory::None, Provider::Nobody},
        // Intel HIP Fortran and CUDA Fortran: none.
        ExpectedRating{Vendor::Intel, Model::HIP, Language::Fortran,
                       SupportCategory::None, Provider::Nobody},
        ExpectedRating{Vendor::Intel, Model::CUDA, Language::Fortran,
                       SupportCategory::None, Provider::Nobody},
        // NVIDIA standard parallelism is vendor-complete in both languages.
        ExpectedRating{Vendor::NVIDIA, Model::Standard, Language::Cpp,
                       SupportCategory::Full, Provider::PlatformVendor},
        ExpectedRating{Vendor::NVIDIA, Model::Standard, Language::Fortran,
                       SupportCategory::Full, Provider::PlatformVendor}));

TEST(Ratings, DualRatedPythonOnNvidia) {
  const SupportEntry& e = paper_matrix().at(
      Combination{Vendor::NVIDIA, Model::Python, Language::Python});
  ASSERT_EQ(e.ratings.size(), 2u);
  EXPECT_EQ(e.ratings[0].category, SupportCategory::Full);
  EXPECT_EQ(e.ratings[0].provider, Provider::PlatformVendor);
  EXPECT_EQ(e.ratings[1].category, SupportCategory::NonVendorGood);
  EXPECT_EQ(e.ratings[1].provider, Provider::Community);
}

TEST(Ratings, DualRatedCudaOnIntel) {
  const SupportEntry& e = paper_matrix().at(
      Combination{Vendor::Intel, Model::CUDA, Language::Cpp});
  ASSERT_EQ(e.ratings.size(), 2u);
  EXPECT_EQ(e.ratings[0].category, SupportCategory::IndirectGood);
  EXPECT_EQ(e.ratings[1].category, SupportCategory::Limited);
  EXPECT_EQ(e.ratings[1].provider, Provider::Community);
}

TEST(Ratings, HipFortranDiffersBetweenAmdAndNvidia) {
  // Same description (item 4), but on AMD hipfort is vendor-provided
  // ('some') while on NVIDIA it is a foreign-vendor route ('limited').
  const SupportEntry& amd = paper_matrix().at(
      Combination{Vendor::AMD, Model::HIP, Language::Fortran});
  const SupportEntry& nv = paper_matrix().at(
      Combination{Vendor::NVIDIA, Model::HIP, Language::Fortran});
  EXPECT_EQ(amd.description_id, 4);
  EXPECT_EQ(nv.description_id, 4);
  EXPECT_EQ(amd.primary().category, SupportCategory::Some);
  EXPECT_EQ(nv.primary().category, SupportCategory::Limited);
}

}  // namespace
}  // namespace mcmm
