#include "data/excluded.hpp"

#include <gtest/gtest.h>

#include "core/types.hpp"

namespace mcmm::data {
namespace {

TEST(ExcludedModels, PaperListsSix) {
  EXPECT_EQ(excluded_models().size(), 6u);
}

TEST(ExcludedModels, NamesMatchSection5) {
  std::vector<std::string> names;
  for (const ExcludedModel& m : excluded_models()) names.push_back(m.name);
  EXPECT_EQ(names, (std::vector<std::string>{"RAJA", "OpenCL", "HPX",
                                             "C++AMP", "libtorch",
                                             "libompx"}));
}

TEST(ExcludedModels, OnlyCppAmpIsDeprecated) {
  for (const ExcludedModel& m : excluded_models()) {
    EXPECT_EQ(m.deprecated, m.name == "C++AMP") << m.name;
  }
}

TEST(ExcludedModels, EveryEntryHasAReason) {
  for (const ExcludedModel& m : excluded_models()) {
    EXPECT_GT(m.reason.size(), 10u) << m.name;
  }
}

TEST(ExcludedModels, NoneOverlapWithIncludedModels) {
  for (const ExcludedModel& m : excluded_models()) {
    EXPECT_FALSE(parse_model(m.name).has_value())
        << m.name << " must not be an included model";
  }
}

TEST(ExcludedModels, NoteMentionsEveryModel) {
  const std::string note = excluded_models_note();
  for (const ExcludedModel& m : excluded_models()) {
    EXPECT_NE(note.find(m.name), std::string::npos) << m.name;
  }
  EXPECT_NE(note.find("Sec. 5"), std::string::npos);
}

}  // namespace
}  // namespace mcmm::data
