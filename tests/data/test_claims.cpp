// The paper's structural claims, evaluated against the dataset. These are
// the regression tests for the paper's "results".

#include "core/claims.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "data/dataset.hpp"

namespace mcmm {
namespace {

class ClaimTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ClaimTest, Holds) {
  const Claims claims(data::paper_matrix());
  const ClaimResult r = claims.evaluate(GetParam());
  EXPECT_TRUE(r.holds) << r.statement << " — evidence: " << r.evidence;
}

INSTANTIATE_TEST_SUITE_P(
    PaperClaims, ClaimTest,
    ::testing::Values("cell-count", "description-count", "routes-over-50",
                      "openmp-everywhere", "openmp-only-native-fortran",
                      "sycl-all-platforms", "kokkos-alpaka-all-platforms",
                      "openacc-no-intel", "nvidia-most-comprehensive",
                      "fortran-severely-thinner", "python-all-platforms",
                      "cuda-hip-shared-source", "sycl-fortran-nowhere",
                      "llvm-key-component", "amd-community-carried"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Claims, EvaluateAllCoversAllIds) {
  const Claims claims(data::paper_matrix());
  const auto results = claims.evaluate_all();
  EXPECT_EQ(results.size(), claims.ids().size());
  for (const ClaimResult& r : results) {
    EXPECT_FALSE(r.id.empty());
    EXPECT_FALSE(r.statement.empty());
    EXPECT_FALSE(r.evidence.empty()) << r.id;
  }
}

TEST(Claims, AllClaimsHold) {
  const Claims claims(data::paper_matrix());
  for (const ClaimResult& r : claims.evaluate_all()) {
    EXPECT_TRUE(r.holds) << r.id << ": " << r.evidence;
  }
}

TEST(Claims, UnknownIdThrows) {
  const Claims claims(data::paper_matrix());
  EXPECT_THROW((void)claims.evaluate("not-a-claim"), LookupError);
}

TEST(Claims, ClaimFailsOnTamperedMatrix) {
  // Sanity check that claims are actually sensitive to the data: drop
  // OpenMP Fortran support on Intel and 'openmp-everywhere' must fail.
  CompatibilityMatrix m;
  data::detail::add_descriptions(m);
  data::detail::add_nvidia_entries(m);
  data::detail::add_amd_entries(m);
  // Intel entries, but with OpenMP/Fortran demoted to None. Rebuild the
  // Intel row from the real dataset, patching the one cell.
  const CompatibilityMatrix& real = data::paper_matrix();
  for (const SupportEntry* e : real.by_vendor(Vendor::Intel)) {
    SupportEntry copy = *e;
    if (copy.combo.model == Model::OpenMP &&
        copy.combo.language == Language::Fortran) {
      copy.ratings = {Rating{SupportCategory::None, Provider::Nobody, "t"}};
      copy.routes.clear();
    }
    m.add_entry(copy);
  }
  const Claims claims(m);
  EXPECT_FALSE(claims.evaluate("openmp-everywhere").holds);
}

}  // namespace
}  // namespace mcmm
