// Data-quality tests: the Sec. 4 descriptions must actually describe the
// routes their cells record — catching dataset drift between the prose
// and the structured route tables.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>

#include "data/dataset.hpp"

namespace mcmm {
namespace {

using data::paper_matrix;

[[nodiscard]] std::string lowered(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

[[nodiscard]] bool mentions(const Description& d, const std::string& term) {
  return lowered(d.text).find(lowered(term)) != std::string::npos ||
         lowered(d.title).find(lowered(term)) != std::string::npos;
}

struct KeyRoute {
  int description_id;
  const char* term;
};

class DescriptionMentionsTest : public ::testing::TestWithParam<KeyRoute> {};

TEST_P(DescriptionMentionsTest, TextNamesTheRoute) {
  const Description& d =
      paper_matrix().description(GetParam().description_id);
  EXPECT_TRUE(mentions(d, GetParam().term))
      << "description " << d.id << " ('" << d.title
      << "') does not mention '" << GetParam().term << "'";
}

INSTANTIATE_TEST_SUITE_P(
    KeyRoutes, DescriptionMentionsTest,
    ::testing::Values(
        KeyRoute{1, "CUDA Toolkit"}, KeyRoute{1, "PTX"},
        KeyRoute{2, "nvfortran"}, KeyRoute{2, "cuf kernels"},
        KeyRoute{3, "hipMalloc"}, KeyRoute{3, "HIP_PLATFORM"},
        KeyRoute{4, "hipfort"}, KeyRoute{5, "DPC++"},
        KeyRoute{5, "Open SYCL"}, KeyRoute{5, "SYCLomatic"},
        KeyRoute{7, "nvc"}, KeyRoute{7, "Clacc"}, KeyRoute{7, "-fopenacc"},
        KeyRoute{8, "Flacc"}, KeyRoute{9, "-mp"}, KeyRoute{9, "AOMP"},
        KeyRoute{11, "-stdpar"}, KeyRoute{12, "do concurrent"},
        KeyRoute{13, "nvcc"}, KeyRoute{14, "FLCL"},
        KeyRoute{17, "CuPy"}, KeyRoute{17, "Numba"},
        KeyRoute{18, "HIPIFY"}, KeyRoute{19, "GPUFORT"},
        KeyRoute{20, "hipcc"}, KeyRoute{20, "ROCm"},
        KeyRoute{21, "Open SYCL"}, KeyRoute{22, "Clacc"},
        KeyRoute{23, "gfortran"}, KeyRoute{24, "AOMP"},
        KeyRoute{26, "roc-stdpar"}, KeyRoute{28, "HIP"},
        KeyRoute{30, "PyHIP"}, KeyRoute{31, "SYCLomatic"},
        KeyRoute{31, "chipStar"}, KeyRoute{31, "ZLUDA"},
        KeyRoute{33, "chipStar"}, KeyRoute{33, "Level Zero"},
        KeyRoute{35, "DPC++"}, KeyRoute{35, "oneAPI"},
        KeyRoute{36, "Migration Tool"}, KeyRoute{38, "-qopenmp"},
        KeyRoute{39, "ifx"}, KeyRoute{40, "oneapi::dpl"},
        KeyRoute{41, "do concurrent"}, KeyRoute{42, "SYCL"},
        KeyRoute{43, "v0.9.0"}, KeyRoute{44, "dpctl"},
        KeyRoute{44, "dpnp"}),
    [](const ::testing::TestParamInfo<KeyRoute>& info) {
      std::string name = "d" + std::to_string(info.param.description_id) +
                         "_" + info.param.term;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(DescriptionQuality, RouteToolchainsAppearInRouteTables) {
  // Spot-invariant: every compiler route's toolchain string is non-trivial
  // and route names are unique within a cell.
  for (const SupportEntry* e : paper_matrix().entries()) {
    std::set<std::string> names;
    for (const Route& r : e->routes) {
      EXPECT_TRUE(names.insert(r.name).second)
          << "duplicate route name '" << r.name << "' in "
          << to_string(e->combo);
      if (r.kind == RouteKind::Compiler) {
        EXPECT_GE(r.toolchain.size(), 2u) << r.name;
      }
    }
  }
}

TEST(DescriptionQuality, EnvironmentVariablesAreWellFormed) {
  for (const SupportEntry* e : paper_matrix().entries()) {
    for (const Route& r : e->routes) {
      for (const std::string& env : r.environment) {
        EXPECT_NE(env.find('='), std::string::npos)
            << "env entry '" << env << "' of route " << r.name
            << " is not NAME=VALUE";
      }
    }
  }
}

TEST(DescriptionQuality, FlagsLookLikeFlags) {
  for (const SupportEntry* e : paper_matrix().entries()) {
    for (const Route& r : e->routes) {
      for (const std::string& flag : r.flags) {
        EXPECT_EQ(flag.front(), '-')
            << "flag '" << flag << "' of route " << r.name;
      }
    }
  }
}

TEST(DescriptionQuality, SharedDescriptionsHaveMultiPlatformTitles) {
  const CompatibilityMatrix& m = paper_matrix();
  for (const int id : {6, 14, 16}) {
    const Description& d = m.description(id);
    EXPECT_NE(d.title.find("NVIDIA, AMD, Intel"), std::string::npos)
        << "description " << id;
  }
  EXPECT_NE(m.description(4).title.find("NVIDIA, AMD"), std::string::npos);
}

}  // namespace
}  // namespace mcmm
