#include "core/statistics.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "data/dataset.hpp"

namespace mcmm {
namespace {

const Statistics& stats() {
  static const Statistics s(data::paper_matrix());
  return s;
}

TEST(Statistics, HistogramSumsTo17PerVendor) {
  for (const Vendor v : kAllVendors) {
    const VendorStats& vs = stats().vendor(v);
    const int total = std::accumulate(
        vs.histogram.begin(), vs.histogram.end(), 0,
        [](int acc, const auto& kv) { return acc + kv.second; });
    EXPECT_EQ(total, 17) << to_string(v);
  }
}

TEST(Statistics, OverallHistogramSumsTo51) {
  const int total = std::accumulate(
      stats().overall_histogram().begin(), stats().overall_histogram().end(),
      0, [](int acc, const auto& kv) { return acc + kv.second; });
  EXPECT_EQ(total, kCombinationCount);
}

TEST(Statistics, NvidiaHasHighestCoverage) {
  const double nv = stats().vendor(Vendor::NVIDIA).coverage_score;
  EXPECT_GT(nv, stats().vendor(Vendor::AMD).coverage_score);
  EXPECT_GT(nv, stats().vendor(Vendor::Intel).coverage_score);
  EXPECT_EQ(stats().most_comprehensive_vendor(), Vendor::NVIDIA);
}

TEST(Statistics, CppBetterCoveredThanFortran) {
  EXPECT_GT(stats().language(Language::Cpp).coverage_score,
            stats().language(Language::Fortran).coverage_score);
}

TEST(Statistics, CppFullyUsableFortranIsNot) {
  // Every C++ cell has at least some route (the weakest C++ cells are
  // 'limited', not 'none'), while several Fortran cells are 'no support'.
  const LanguageStats& cpp = stats().language(Language::Cpp);
  const LanguageStats& f = stats().language(Language::Fortran);
  EXPECT_EQ(cpp.usable_cells, cpp.total_cells);
  EXPECT_LT(f.usable_cells, f.total_cells);
}

TEST(Statistics, FortranDeadCellCount) {
  // SYCL (3) + Alpaka (3) + AMD Standard (1) + Intel CUDA (1) + Intel HIP
  // (1) = 9 Fortran cells with no support.
  const LanguageStats& f = stats().language(Language::Fortran);
  EXPECT_EQ(f.total_cells - f.usable_cells, 9);
}

TEST(Statistics, OpenMPUsableOnAllVendorsBothLanguages) {
  const ModelStats& omp = stats().model(Model::OpenMP);
  EXPECT_EQ(omp.vendors_usable_cpp, 3);
  EXPECT_EQ(omp.vendors_usable_fortran, 3);
  EXPECT_EQ(omp.vendors_vendor_native, 3);
}

TEST(Statistics, PortabilityLayersCoverAllVendorsForCpp) {
  for (const Model m : {Model::SYCL, Model::Kokkos, Model::Alpaka,
                        Model::OpenMP, Model::CUDA, Model::HIP}) {
    EXPECT_EQ(stats().model(m).vendors_usable_cpp, 3) << to_string(m);
  }
}

TEST(Statistics, OpenACCUsableOnTwoVendorsForCpp) {
  // NVIDIA and AMD genuinely; Intel only via a migration tool, which still
  // counts as 'limited' => usable. The paper's narrative counts Intel as
  // unsupported; the distinction is asserted via categories instead.
  const CompatibilityMatrix& m = data::paper_matrix();
  EXPECT_TRUE(comprehensive(
      m.at(Vendor::NVIDIA, Model::OpenACC, Language::Cpp).best_category()));
  EXPECT_TRUE(comprehensive(
      m.at(Vendor::AMD, Model::OpenACC, Language::Cpp).best_category()));
  EXPECT_FALSE(comprehensive(
      m.at(Vendor::Intel, Model::OpenACC, Language::Cpp).best_category()));
}

TEST(Statistics, PythonUsableEverywhere) {
  EXPECT_EQ(stats().model(Model::Python).vendors_usable_cpp, 3);
}

TEST(Statistics, VendorProvidedCells) {
  // NVIDIA provides vendor support for CUDA(2), OpenACC(2), OpenMP(2),
  // Standard(2), Python(1) = 9 cells.
  EXPECT_EQ(stats().vendor(Vendor::NVIDIA).vendor_provided_cells, 9);
  // Intel: CUDA C++(indirect), OpenACC(2, limited but vendor... no:
  // vendor_provided counts Full/Indirect/Some only in any rating) ->
  // CUDA C++ (indirect), SYCL C++ (full), OpenMP (2 full), Standard (2
  // some), Python (some) = 7.
  EXPECT_EQ(stats().vendor(Vendor::Intel).vendor_provided_cells, 7);
  // AMD: CUDA C++ (indirect), HIP C++ (full), HIP Fortran (some),
  // OpenMP (2 some) = 5.
  EXPECT_EQ(stats().vendor(Vendor::AMD).vendor_provided_cells, 5);
}

TEST(Statistics, ExactlyTwoDualRatedCells) {
  // Sec. 5: Python on NVIDIA and CUDA C++ on Intel are double-rated.
  EXPECT_EQ(stats().dual_rated_cells(), 2);
}

TEST(Statistics, ProviderHistogramSumsTo51) {
  int total = 0;
  for (const auto& [provider, n] : stats().provider_histogram()) total += n;
  EXPECT_EQ(total, kCombinationCount);
}

TEST(Statistics, NobodyProviderMatchesDeadCells) {
  // Primary provider 'nobody' appears exactly on the 'no support' cells.
  const auto it = stats().provider_histogram().find(Provider::Nobody);
  ASSERT_NE(it, stats().provider_histogram().end());
  EXPECT_EQ(it->second, kCombinationCount - stats().usable_combinations());
}

TEST(Statistics, UsableCombinationCount) {
  // 51 cells minus the 9 dead Fortran cells = 42 usable combinations.
  EXPECT_EQ(stats().usable_combinations(), 42);
}

}  // namespace
}  // namespace mcmm
