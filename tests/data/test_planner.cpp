// Route-planner scenarios: the "guide for scientific programmers" in action.

#include "core/planner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/dataset.hpp"

namespace mcmm {
namespace {

const RoutePlanner& planner() {
  static const RoutePlanner p(data::paper_matrix());
  return p;
}

bool recommends(const std::vector<PlannedRoute>& plans, Model m) {
  return std::any_of(plans.begin(), plans.end(),
                     [m](const PlannedRoute& p) { return p.model == m; });
}

TEST(Planner, FortranOnAllThreePlatformsMeansOpenMP) {
  PlannerQuery q;
  q.language = Language::Fortran;
  q.must_run_on = {Vendor::AMD, Vendor::Intel, Vendor::NVIDIA};
  q.minimum_category = SupportCategory::Some;
  q.require_vendor_support = true;
  const auto plans = planner().plan(q);
  ASSERT_FALSE(plans.empty());
  EXPECT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].model, Model::OpenMP);
}

TEST(Planner, CppOnAllThreePlatformsHasMultipleOptions) {
  PlannerQuery q;
  q.language = Language::Cpp;
  q.must_run_on = {Vendor::AMD, Vendor::Intel, Vendor::NVIDIA};
  q.minimum_category = SupportCategory::Limited;
  const auto plans = planner().plan(q);
  EXPECT_TRUE(recommends(plans, Model::SYCL));
  EXPECT_TRUE(recommends(plans, Model::OpenMP));
  EXPECT_TRUE(recommends(plans, Model::Kokkos));
  EXPECT_TRUE(recommends(plans, Model::Alpaka));
  EXPECT_TRUE(recommends(plans, Model::HIP));  // via chipStar on Intel
}

TEST(Planner, OpenACCInfeasibleOnIntelAtSomeSupport) {
  PlannerQuery q;
  q.language = Language::Cpp;
  q.allowed_models = {Model::OpenACC};
  q.must_run_on = {Vendor::Intel};
  q.minimum_category = SupportCategory::Some;
  EXPECT_TRUE(planner().plan(q).empty());
}

TEST(Planner, OpenACCOnIntelOnlyAtLimitedTier) {
  PlannerQuery q;
  q.language = Language::Cpp;
  q.allowed_models = {Model::OpenACC};
  q.must_run_on = {Vendor::Intel};
  q.minimum_category = SupportCategory::Limited;
  const auto plans = planner().plan(q);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].platforms[0].route.kind, RouteKind::Translator);
}

TEST(Planner, SyclFortranIsInfeasibleEverywhere) {
  PlannerQuery q;
  q.language = Language::Fortran;
  q.allowed_models = {Model::SYCL};
  for (const Vendor v : kAllVendors) {
    q.must_run_on = {v};
    EXPECT_TRUE(planner().plan(q).empty()) << to_string(v);
  }
}

TEST(Planner, NvidiaOnlyCppPrefersCuda) {
  PlannerQuery q;
  q.language = Language::Cpp;
  q.must_run_on = {Vendor::NVIDIA};
  q.minimum_category = SupportCategory::Some;
  const auto plans = planner().plan(q);
  ASSERT_FALSE(plans.empty());
  // Full-support vendor models rank first; CUDA, OpenACC and Standard all
  // qualify, CUDA among them.
  EXPECT_EQ(score(plans[0].platforms[0].category),
            score(SupportCategory::Full));
  EXPECT_TRUE(recommends(plans, Model::CUDA));
}

TEST(Planner, RequireMaintainedDropsGpufortRoute) {
  PlannerQuery q;
  q.language = Language::Fortran;
  q.allowed_models = {Model::CUDA};
  q.must_run_on = {Vendor::AMD};
  q.minimum_category = SupportCategory::Limited;
  q.require_maintained = true;
  EXPECT_TRUE(planner().plan(q).empty());
  q.require_maintained = false;
  const auto plans = planner().plan(q);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].platforms[0].route.name, "GPUFORT");
}

TEST(Planner, VendorSupportFilterExcludesCommunityRoutes) {
  PlannerQuery q;
  q.language = Language::Cpp;
  q.allowed_models = {Model::Kokkos};
  q.must_run_on = {Vendor::NVIDIA};
  q.require_vendor_support = true;
  // Kokkos on NVIDIA is community-provided -> infeasible under the filter.
  EXPECT_TRUE(planner().plan(q).empty());
}

TEST(Planner, UnpinnedPlatformsReturnPartialCoverage) {
  PlannerQuery q;
  q.language = Language::Cpp;
  q.allowed_models = {Model::OpenACC};
  q.minimum_category = SupportCategory::Some;
  const auto plans = planner().plan(q);
  ASSERT_EQ(plans.size(), 1u);
  // OpenACC covers NVIDIA and AMD but not Intel at this tier.
  EXPECT_EQ(plans[0].platforms.size(), 2u);
}

TEST(Planner, PlansAreSortedByRankDescending) {
  PlannerQuery q;
  q.language = Language::Cpp;
  const auto plans = planner().plan(q);
  for (std::size_t i = 1; i < plans.size(); ++i) {
    EXPECT_GE(plans[i - 1].rank, plans[i].rank);
  }
}

TEST(Planner, EveryPlanHasRationaleAndRoutes) {
  PlannerQuery q;
  q.language = Language::Cpp;
  for (const PlannedRoute& p : planner().plan(q)) {
    EXPECT_FALSE(p.rationale.empty());
    EXPECT_FALSE(p.platforms.empty());
    for (const auto& pv : p.platforms) {
      EXPECT_FALSE(pv.route.name.empty());
    }
  }
}

TEST(Planner, TranslatorFilterDropsMigrationOnlyCells) {
  // CUDA C++ on AMD is reachable only through HIPIFY (a translator);
  // excluding translators makes the cell infeasible.
  PlannerQuery q;
  q.language = Language::Cpp;
  q.allowed_models = {Model::CUDA};
  q.must_run_on = {Vendor::AMD};
  q.allow_translators = true;
  ASSERT_EQ(planner().plan(q).size(), 1u);
  q.allow_translators = false;
  EXPECT_TRUE(planner().plan(q).empty());
}

TEST(Planner, TranslatorFilterKeepsCompilerRoutes) {
  PlannerQuery q;
  q.language = Language::Cpp;
  q.allowed_models = {Model::SYCL};
  q.must_run_on = {Vendor::NVIDIA};
  q.allow_translators = false;
  const auto plans = planner().plan(q);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_NE(plans[0].platforms[0].route.kind, RouteKind::Translator);
}

TEST(Planner, PythonQueryWorks) {
  PlannerQuery q;
  q.language = Language::Python;
  q.must_run_on = {Vendor::NVIDIA, Vendor::Intel};
  const auto plans = planner().plan(q);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].model, Model::Python);
}

}  // namespace
}  // namespace mcmm
