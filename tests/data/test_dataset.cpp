// Structural integrity of the paper dataset: the counts and cross-links the
// paper states explicitly (51 cells, 44 descriptions, shared items).

#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mcmm {
namespace {

using data::paper_matrix;

TEST(Dataset, ValidatesAndHasPaperCounts) {
  const CompatibilityMatrix& m = paper_matrix();
  EXPECT_EQ(m.entry_count(), static_cast<std::size_t>(kCombinationCount));
  EXPECT_EQ(m.description_count(),
            static_cast<std::size_t>(kDescriptionCount));
}

TEST(Dataset, BuildIsRepeatable) {
  const CompatibilityMatrix a = data::build_paper_matrix();
  const CompatibilityMatrix b = data::build_paper_matrix();
  EXPECT_EQ(a.entry_count(), b.entry_count());
  for (const SupportEntry* e : a.entries()) {
    const SupportEntry* other = b.find(e->combo);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(e->ratings, other->ratings) << to_string(e->combo);
    EXPECT_EQ(e->description_id, other->description_id);
  }
}

TEST(Dataset, EveryVendorHas17Cells) {
  const CompatibilityMatrix& m = paper_matrix();
  for (const Vendor v : kAllVendors) {
    EXPECT_EQ(m.by_vendor(v).size(), 17u) << to_string(v);
  }
}

TEST(Dataset, LanguageSplit24_24_3) {
  const CompatibilityMatrix& m = paper_matrix();
  EXPECT_EQ(m.by_language(Language::Cpp).size(), 24u);
  EXPECT_EQ(m.by_language(Language::Fortran).size(), 24u);
  EXPECT_EQ(m.by_language(Language::Python).size(), 3u);
}

TEST(Dataset, DescriptionIdsAreExactly1To44) {
  const CompatibilityMatrix& m = paper_matrix();
  std::set<int> ids;
  for (const Description* d : m.descriptions()) ids.insert(d->id);
  ASSERT_EQ(ids.size(), 44u);
  EXPECT_EQ(*ids.begin(), 1);
  EXPECT_EQ(*ids.rbegin(), 44);
}

TEST(Dataset, SharedDescriptionsCoverTheRightCells) {
  const CompatibilityMatrix& m = paper_matrix();
  // Item 4: HIP/Fortran on NVIDIA and AMD.
  EXPECT_EQ(m.cells_of_description(4).size(), 2u);
  // Item 6: SYCL/Fortran on all three vendors.
  EXPECT_EQ(m.cells_of_description(6).size(), 3u);
  // Item 14: Kokkos/Fortran on all three vendors.
  EXPECT_EQ(m.cells_of_description(14).size(), 3u);
  // Item 16: Alpaka/Fortran on all three vendors.
  EXPECT_EQ(m.cells_of_description(16).size(), 3u);
}

TEST(Dataset, NonSharedDescriptionsCoverExactlyOneCell) {
  const CompatibilityMatrix& m = paper_matrix();
  const std::set<int> shared{4, 6, 14, 16};
  for (const Description* d : m.descriptions()) {
    if (shared.contains(d->id)) continue;
    EXPECT_EQ(m.cells_of_description(d->id).size(), 1u)
        << "description " << d->id << " (" << d->title << ")";
  }
}

TEST(Dataset, DescriptionTitlesNameTheirCells) {
  const CompatibilityMatrix& m = paper_matrix();
  for (const SupportEntry* e : m.entries()) {
    const Description& d = m.description(e->description_id);
    EXPECT_NE(d.title.find(to_string(e->combo.vendor)), std::string::npos)
        << "description " << d.id << " title '" << d.title
        << "' does not mention vendor of " << to_string(e->combo);
  }
}

TEST(Dataset, AllDescriptionsHaveText) {
  const CompatibilityMatrix& m = paper_matrix();
  for (const Description* d : m.descriptions()) {
    EXPECT_GT(d->text.size(), 40u) << "description " << d->id;
  }
}

TEST(Dataset, MoreThan50Routes) {
  // Sec. 1: "more than 50 routes for programming a GPU device are
  // identified".
  EXPECT_GT(paper_matrix().total_route_count(), 50u);
}

TEST(Dataset, UnusableCellsHaveNoRoutesExceptWorkarounds) {
  const CompatibilityMatrix& m = paper_matrix();
  for (const SupportEntry* e : m.entries()) {
    if (!e->usable()) {
      EXPECT_TRUE(e->routes.empty()) << to_string(e->combo);
    }
  }
}

TEST(Dataset, UsableCellsHaveRoutes) {
  const CompatibilityMatrix& m = paper_matrix();
  for (const SupportEntry* e : m.entries()) {
    if (e->usable()) {
      EXPECT_FALSE(e->routes.empty()) << to_string(e->combo);
    }
  }
}

TEST(Dataset, PinnedCellsMatchSection5Discussion) {
  const CompatibilityMatrix& m = paper_matrix();
  // Sec. 5 explicitly rates OpenACC C++ on NVIDIA complete and OpenMP C++
  // on NVIDIA ambivalent/incomplete.
  EXPECT_FALSE(
      m.at(Vendor::NVIDIA, Model::OpenACC, Language::Cpp).inferred);
  EXPECT_FALSE(m.at(Vendor::NVIDIA, Model::OpenMP, Language::Cpp).inferred);
  // The two dual-rated cells.
  EXPECT_EQ(
      m.at(Vendor::NVIDIA, Model::Python, Language::Python).ratings.size(),
      2u);
  EXPECT_EQ(m.at(Vendor::Intel, Model::CUDA, Language::Cpp).ratings.size(),
            2u);
}

TEST(Dataset, RouteFieldsArePopulated) {
  const CompatibilityMatrix& m = paper_matrix();
  for (const SupportEntry* e : m.entries()) {
    for (const Route& r : e->routes) {
      EXPECT_FALSE(r.name.empty()) << to_string(e->combo);
      EXPECT_FALSE(r.toolchain.empty())
          << to_string(e->combo) << " route " << r.name;
    }
  }
}

TEST(Dataset, RetiredRoutesAreRecorded) {
  // ComputeCpp must be present (SYCL on NVIDIA and Intel) and retired.
  const CompatibilityMatrix& m = paper_matrix();
  int retired_computecpp = 0;
  for (const Vendor v : {Vendor::NVIDIA, Vendor::Intel}) {
    for (const Route& r :
         m.at(v, Model::SYCL, Language::Cpp).routes) {
      if (r.name == "ComputeCpp") {
        EXPECT_EQ(r.maturity, Maturity::Retired);
        ++retired_computecpp;
      }
    }
  }
  EXPECT_EQ(retired_computecpp, 2);
}

TEST(Dataset, GpufortIsUnmaintained) {
  const CompatibilityMatrix& m = paper_matrix();
  bool found = false;
  for (const Route& r :
       m.at(Vendor::AMD, Model::CUDA, Language::Fortran).routes) {
    if (r.name == "GPUFORT") {
      EXPECT_EQ(r.maturity, Maturity::Unmaintained);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace mcmm
