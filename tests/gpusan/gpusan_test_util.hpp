#pragma once
// Shared scaffolding for the gpusan pass tests: every test runs with the
// sanitizer freshly enabled and reads findings through current_report()
// (never finalize(), whose leak sweep would see blocks owned by *other*
// tests in this binary). Assertions therefore target specific findings —
// kind/origin/launch — not global cleanliness, keeping the tests
// independent of execution order.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "gpusan/gpusan.hpp"

namespace mcmm::gpusan::testing {

class GpusanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    enable();
  }
  void TearDown() override {
    disable();
    reset();
  }
};

/// Findings of one kind (e.g. "out-of-bounds-write") in the report.
inline std::vector<Finding> findings_of_kind(const Report& report,
                                             const std::string& kind) {
  std::vector<Finding> out;
  std::copy_if(report.findings.begin(), report.findings.end(),
               std::back_inserter(out),
               [&](const Finding& f) { return f.kind == kind; });
  return out;
}

inline bool has_kind(const Report& report, const std::string& kind) {
  return !findings_of_kind(report, kind).empty();
}

}  // namespace mcmm::gpusan::testing
