// leakcheck pass: live allocations at a device checkpoint are reported
// with origin and device attribution; freed allocations are not.

#include <cstddef>
#include <string>

#include "gpusan_test_util.hpp"
#include "gpusim/device.hpp"
#include "models/syclx/syclx.hpp"

namespace mcmm::gpusan {
namespace {

using testing::GpusanTest;

class Leakcheck : public GpusanTest {};

/// A fresh tiny device keeps these tests independent of what other tests
/// in this binary may have allocated on the shared Platform devices.
gpusim::Device& fresh_device(Vendor v) {
  return gpusim::Platform::instance().reset_device(
      v, gpusim::tiny_test_device(1 << 20));
}

TEST_F(Leakcheck, DeviceTeardownReportsTaggedLiveAllocation) {
  gpusim::Device& dev = fresh_device(Vendor::AMD);
  dev.allocator().set_guard_bytes(current_config().redzone_bytes);
  void* leaked = dev.allocate(512, "leakcheck-test/leaked");
  (void)leaked;  // never freed
  // Replacing the device destroys the old one -> teardown checkpoint.
  fresh_device(Vendor::AMD);
  const Report report = current_report();
  const Finding* leak = nullptr;
  for (const Finding& f : report.findings) {
    if (f.kind == "leak" && f.origin == "leakcheck-test/leaked") leak = &f;
  }
  ASSERT_NE(leak, nullptr) << report.text();
  EXPECT_EQ(leak->pass, Pass::Leakcheck);
  EXPECT_NE(leak->message.find("512 bytes"), std::string::npos)
      << leak->message;
  EXPECT_NE(leak->message.find("device teardown"), std::string::npos)
      << leak->message;
}

TEST_F(Leakcheck, FreedAllocationsAreNotReported) {
  gpusim::Device& dev = fresh_device(Vendor::AMD);
  dev.allocator().set_guard_bytes(current_config().redzone_bytes);
  void* p = dev.allocate(256, "leakcheck-test/freed");
  dev.deallocate(p);
  fresh_device(Vendor::AMD);
  const Report report = current_report();
  for (const Finding& f : report.findings) {
    EXPECT_NE(f.origin, "leakcheck-test/freed") << f.message;
  }
}

TEST_F(Leakcheck, UsmLeakSurvivesToFinalizeSweep) {
  syclx::queue q(Vendor::NVIDIA);
  auto* p = q.malloc_device<double>(64, "leakcheck-test/usm");
  const Report mid = current_report();
  // current_report() takes no leak sweep: nothing reported while running.
  for (const Finding& f : mid.findings) {
    EXPECT_NE(f.origin, "leakcheck-test/usm");
  }
  const Report final_report = finalize();
  bool found = false;
  for (const Finding& f : final_report.findings) {
    if (f.kind == "leak" && f.origin == "leakcheck-test/usm") found = true;
  }
  EXPECT_TRUE(found) << final_report.text();
  // Clean up and restore the enabled state for the fixture's TearDown.
  q.free(p);
  enable(current_config());
}

}  // namespace
}  // namespace mcmm::gpusan
