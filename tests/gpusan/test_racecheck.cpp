// racecheck pass: the TP/TN fixture pair (data-racy histogram vs. its
// privatized rewrite) under both host schedules, plus the Unknown-kind
// exclusion that keeps shared read-only tables from being flagged.

#include <cstddef>
#include <string>
#include <vector>

#include "gpusan/fixtures.hpp"
#include "gpusan_test_util.hpp"
#include "models/kokkosx/kokkosx.hpp"

namespace mcmm::gpusan {
namespace {

using testing::GpusanTest;
using testing::findings_of_kind;

class Racecheck : public GpusanTest {};

TEST_F(Racecheck, RacyHistogramFlaggedUnderBothSchedules) {
  const struct {
    gpusim::Schedule schedule;
    const char* tag;
  } cases[] = {{gpusim::Schedule::Static, "schedule=static"},
               {gpusim::Schedule::Dynamic, "schedule=dynamic"}};
  for (const auto& c : cases) {
    SCOPED_TRACE(c.tag);
    reset();
    fixtures::racy_histogram(c.schedule);
    const Report report = current_report();
    const auto races = findings_of_kind(report, "write-write-race");
    ASSERT_FALSE(races.empty()) << report.text();
    const Finding& f = races.front();
    EXPECT_EQ(f.pass, Pass::Racecheck);
    EXPECT_EQ(f.origin, "syclx::buffer");
    EXPECT_GT(f.launch_id, 0u);
    // Detection must name the schedule it happened under — and fire for
    // both: the conflict is between work items, not pool threads.
    EXPECT_NE(f.launch.find(c.tag), std::string::npos) << f.launch;
    EXPECT_NE(f.message.find("work items"), std::string::npos);
  }
}

TEST_F(Racecheck, PrivatizedHistogramIsCleanUnderBothSchedules) {
  for (const gpusim::Schedule s :
       {gpusim::Schedule::Static, gpusim::Schedule::Dynamic}) {
    reset();
    fixtures::privatized_histogram(s);
    const Report report = current_report();
    EXPECT_EQ(report.total_findings, 0u) << report.text();
    EXPECT_GT(report.accesses_checked, 0u);  // it did watch the kernel
  }
}

/// Shared *read-only* data touched by every work item must not be flagged:
/// view accesses carry AccessKind::Unknown (a `view(i)` reference cannot
/// tell read from write), and racecheck excludes Unknown records rather
/// than risk this false positive.
TEST_F(Racecheck, SharedReadOnlyTableThroughViewsIsNotFlagged) {
  kokkosx::Execution exec(kokkosx::ExecSpace::Cuda, Vendor::NVIDIA);
  constexpr std::size_t kN = 512;
  kokkosx::View<double> table(exec, "shared-table", 8);
  kokkosx::View<double> out(exec, "out", kN);
  std::vector<double> host{1, 2, 3, 4, 5, 6, 7, 8};
  kokkosx::deep_copy_to_device(table, host.data());
  kokkosx::parallel_for(exec, kokkosx::RangePolicy{0, kN},
                        gpusim::KernelCosts{},
                        [&](std::size_t i) { out(i) = table(i % 8); });
  exec.fence();
  const Report report = current_report();
  EXPECT_TRUE(findings_of_kind(report, "write-write-race").empty())
      << report.text();
  EXPECT_TRUE(findings_of_kind(report, "read-write-race").empty())
      << report.text();
  EXPECT_EQ(report.total_findings, 0u) << report.text();
}

}  // namespace
}  // namespace mcmm::gpusan
