// memcheck pass: guard-band placement properties, strict accessor
// interception (OOB and use-after-free with attribution), and the Unknown
// access kind of view-style accessors.

#include <cstddef>
#include <numeric>
#include <vector>

#include "gpusan/fixtures.hpp"
#include "gpusan_test_util.hpp"
#include "models/kokkosx/kokkosx.hpp"
#include "models/syclx/buffers.hpp"
#include "models/syclx/syclx.hpp"

namespace mcmm::gpusan {
namespace {

using testing::GpusanTest;
using testing::findings_of_kind;
using testing::has_kind;

class Memcheck : public GpusanTest {};

/// Guard-band placement property: an in-bounds kernel over n elements must
/// leave every canary intact for sizes around the launch width w = 256 —
/// the boundaries where an off-by-one in red-zone placement (or in
/// launch_1d's rounding) would bite.
TEST_F(Memcheck, InBoundsKernelsLeaveCanariesIntactAroundBlockBoundary) {
  constexpr std::size_t kSizes[] = {0, 1, 255, 256, 257, 1021};  // 1021 prime
  for (const std::size_t n : kSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    reset();
    syclx::queue q(Vendor::NVIDIA);
    std::vector<double> host(n);
    std::iota(host.begin(), host.end(), 0.0);
    {
      syclx::buffer<double> buf(host.data(), n);
      auto acc = buf.get_access(q, syclx::access_mode::read_write);
      q.parallel_for(syclx::range{n}, gpusim::KernelCosts{},
                     [=](syclx::id i) { acc[i] = acc[i] + 1.0; });
      q.wait();  // sync point: canary verification runs here
    }  // destruction: write-back memcpy + deallocate both verify again
    const Report report = current_report();
    EXPECT_EQ(report.total_findings, 0u) << report.text();
  }
}

TEST_F(Memcheck, AccessorOutOfBoundsWriteIsAttributed) {
  fixtures::oob_write();
  const Report report = current_report();
  const auto oob = findings_of_kind(report, "out-of-bounds-write");
  ASSERT_FALSE(oob.empty()) << report.text();
  const Finding& f = oob.front();
  EXPECT_EQ(f.pass, Pass::Memcheck);
  EXPECT_EQ(f.origin, "syclx::buffer");
  EXPECT_GT(f.allocation_id, 0u);
  EXPECT_GT(f.launch_id, 0u);
  // The finding names the launch configuration and the offending offset.
  EXPECT_NE(f.launch.find("block=(256,1,1)"), std::string::npos) << f.launch;
  EXPECT_NE(f.message.find("offset"), std::string::npos) << f.message;
  // The actual store corrupted the red zone; the canary sweep saw it too.
  EXPECT_TRUE(has_kind(report, "redzone-corruption")) << report.text();
}

TEST_F(Memcheck, DanglingAccessorReadsReportUseAfterFree) {
  fixtures::use_after_free();
  const Report report = current_report();
  const auto uaf = findings_of_kind(report, "use-after-free-read");
  ASSERT_FALSE(uaf.empty()) << report.text();
  EXPECT_EQ(uaf.front().origin, "syclx::buffer");
  EXPECT_GT(uaf.front().launch_id, 0u);
  // Per-launch dedup: 1024 reads of the freed block, one stored finding.
  EXPECT_GE(report.suppressed_duplicates, 1u);
}

TEST_F(Memcheck, ViewAccessOutOfBoundsIsCaughtWithoutLaunchContext) {
  kokkosx::Execution exec(kokkosx::ExecSpace::HIP, Vendor::AMD);
  kokkosx::View<double> v(exec, "short-view", 8);
  // Host-side stray access past the view: bounds-checked (AccessKind
  // Unknown) even though no kernel is running.
  auto& ref = v(8);
  (void)ref;
  const Report report = current_report();
  const auto oob = findings_of_kind(report, "out-of-bounds-access");
  ASSERT_FALSE(oob.empty()) << report.text();
  EXPECT_EQ(oob.front().origin, "short-view");
  EXPECT_EQ(oob.front().launch_id, 0u);  // outside any tracked launch
}

}  // namespace
}  // namespace mcmm::gpusan
