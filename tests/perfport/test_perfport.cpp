// Tests for the perf-portability campaign: the Reguly PP metric is
// recomputed bit-for-bit against its documented operation order, the
// unsupported-platform and degenerate cases follow the Pennycook
// convention, and a small campaign is checked end to end for route
// coverage, verification, metric ranges, and schedule invariance of the
// simulated clock.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "perfport/perfport.hpp"

namespace {

using mcmm::Model;
using mcmm::Vendor;
using mcmm::perfport::build_rows;
using mcmm::perfport::CampaignConfig;
using mcmm::perfport::PerfKernel;
using mcmm::perfport::performance_portability;
using mcmm::perfport::PerfReport;
using mcmm::perfport::PerfRow;
using mcmm::perfport::RouteSample;
using mcmm::perfport::run_campaign;

TEST(PerformancePortability, HarmonicMeanRecomputedBitForBit) {
  const std::vector<double> e{0.517, 0.25, 0.803};
  // The exact operation order of the implementation: accumulate 1/e_i in
  // input order, then divide the count once. Any reassociation (pairwise
  // sums, FMA contraction) would break the == below.
  double inv_sum = 0.0;
  for (const double v : e) inv_sum += 1.0 / v;
  const double expected = static_cast<double>(e.size()) / inv_sum;
  EXPECT_EQ(performance_portability(e), expected);
}

TEST(PerformancePortability, AnyUnsupportedPlatformGivesExactlyZero) {
  EXPECT_EQ(performance_portability({0.9, 0.0, 0.8}), 0.0);
  EXPECT_EQ(performance_portability({0.0}), 0.0);
  EXPECT_EQ(performance_portability({0.5, -0.1}), 0.0);
}

TEST(PerformancePortability, EmptyPlatformSetGivesZero) {
  EXPECT_EQ(performance_portability({}), 0.0);
}

TEST(PerformancePortability, SingleVendorDegeneratesToItsEfficiency) {
  // |H| = 1: PP = 1 / (1/e). Recompute with the same two divisions rather
  // than comparing against the raw e (double rounding may differ in the
  // last bit, and that bit is exactly what the implementation produces).
  const double e = 0.3;
  EXPECT_EQ(performance_portability({e}), 1.0 / (1.0 / e));
  EXPECT_DOUBLE_EQ(performance_portability({e}), e);
}

TEST(BuildRows, UnsupportedVendorZeroesThePpAndMarksTheCell) {
  // One CUDA Triad sample on NVIDIA only; the vendor set includes AMD.
  RouteSample s;
  s.route = "CUDA";
  s.model = Model::CUDA;
  s.vendor = Vendor::NVIDIA;
  s.schedule = "static";
  s.kernel = PerfKernel::Triad;
  s.n = 4096;
  s.pct_of_peak = 60.0;
  s.verified = true;
  const std::vector<PerfRow> rows =
      build_rows({s}, {Vendor::AMD, Vendor::NVIDIA}, 4096);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].model, Model::CUDA);
  EXPECT_EQ(rows[0].kernel, PerfKernel::Triad);
  EXPECT_EQ(rows[0].pp, 0.0);  // exactly, per the Pennycook convention
  ASSERT_EQ(rows[0].cells.size(), 2u);
  EXPECT_FALSE(rows[0].cells[0].supported);
  EXPECT_EQ(rows[0].cells[0].efficiency, 0.0);
  EXPECT_TRUE(rows[0].cells[1].supported);
  EXPECT_DOUBLE_EQ(rows[0].cells[1].efficiency, 0.6);
}

TEST(BuildRows, BestRouteAtTheTopSizeWinsTheCell) {
  const auto sample = [](const char* route, double pct, std::size_t n) {
    RouteSample s;
    s.route = route;
    s.model = Model::SYCL;
    s.vendor = Vendor::Intel;
    s.schedule = "static";
    s.kernel = PerfKernel::Dot;
    s.n = n;
    s.pct_of_peak = pct;
    s.verified = true;
    return s;
  };
  // The 90% sample sits at the smaller ladder size and must not win.
  const std::vector<PerfRow> rows = build_rows(
      {sample("SYCL(DPC++)", 40.0, 8192), sample("SYCL(Open SYCL)", 55.0, 8192),
       sample("SYCL(DPC++)", 90.0, 2048)},
      {Vendor::Intel}, 8192);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].cells.size(), 1u);
  EXPECT_EQ(rows[0].cells[0].route, "SYCL(Open SYCL)");
  EXPECT_DOUBLE_EQ(rows[0].cells[0].efficiency, 0.55);
}

/// Small two-kernel campaign shared by the end-to-end assertions below.
const PerfReport& small_report() {
  static const PerfReport report = [] {
    CampaignConfig cfg;
    cfg.sizes = {2048, 4096};
    cfg.reps = 1;
    cfg.kernels = {PerfKernel::Triad, PerfKernel::Dot};
    return run_campaign(cfg);
  }();
  return report;
}

TEST(Campaign, EveryAllowedRouteProducesEverySample) {
  const PerfReport& r = small_report();
  // 9 NVIDIA + 8 AMD (roc-stdpar on) + 6 Intel routes.
  EXPECT_EQ(r.route_count, 23u);
  // routes x schedules x sizes x kernels, no silent drops.
  EXPECT_EQ(r.samples.size(), 23u * 2 * 2 * 2);
  for (const RouteSample& s : r.samples) {
    EXPECT_TRUE(s.verified) << s.route << " " << s.schedule;
    EXPECT_GT(s.launches, 0u) << s.route;
    EXPECT_GT(s.sim_us, 0.0) << s.route;
    EXPECT_GE(s.pct_of_peak, 0.0) << s.route;
    EXPECT_LE(s.pct_of_peak, 100.0) << s.route;
  }
}

TEST(Campaign, RowsCoverEveryModelAndMetricsStayInRange) {
  const PerfReport& r = small_report();
  // 8 models with stream embeddings x 2 kernels.
  EXPECT_EQ(r.rows.size(), 16u);
  for (const PerfRow& row : r.rows) {
    ASSERT_EQ(row.cells.size(), r.config.vendors.size());
    EXPECT_GE(row.pp, 0.0);
    EXPECT_LE(row.pp, 1.0);
    for (const auto& cell : row.cells) {
      EXPECT_GE(cell.efficiency, 0.0);
      EXPECT_LE(cell.efficiency, 1.0);
      EXPECT_EQ(cell.supported, !cell.route.empty());
    }
  }
}

TEST(Campaign, SingleAndDualVendorModelsScoreZeroPp) {
  // CUDA, HIP, and OpenACC do not span the full vendor set, so the Reguly
  // metric is exactly 0 for them; every three-vendor model scores > 0.
  for (const PerfRow& row : small_report().rows) {
    const bool partial = row.model == Model::CUDA ||
                         row.model == Model::HIP ||
                         row.model == Model::OpenACC;
    if (partial) {
      EXPECT_EQ(row.pp, 0.0) << to_string(row.model);
    } else {
      EXPECT_GT(row.pp, 0.0) << to_string(row.model);
    }
  }
}

TEST(Campaign, SimulatedTimeIsScheduleInvariant) {
  // The schedule knob changes host-side chunking, never the cost model:
  // static and dynamic sweeps of the same (route, kernel, size) must land
  // on bit-identical simulated durations.
  std::map<std::tuple<std::string, int, std::size_t>,
           std::map<std::string, double>>
      by_point;
  for (const RouteSample& s : small_report().samples) {
    by_point[{s.route, static_cast<int>(s.kernel), s.n}][s.schedule] =
        s.sim_us;
  }
  for (const auto& [point, schedules] : by_point) {
    ASSERT_EQ(schedules.size(), 2u) << std::get<0>(point);
    EXPECT_EQ(schedules.at("static"), schedules.at("dynamic"))
        << std::get<0>(point) << " kernel " << std::get<1>(point);
  }
}

TEST(Campaign, VendorAndModelFiltersRestrictTheSweep) {
  CampaignConfig cfg;
  cfg.sizes = {2048};
  cfg.reps = 1;
  cfg.vendors = {Vendor::NVIDIA};
  cfg.models = {Model::Kokkos};
  cfg.schedules = {mcmm::gpusim::Schedule::Static};
  cfg.kernels = {PerfKernel::Reduce};
  const PerfReport r = run_campaign(cfg);
  EXPECT_EQ(r.route_count, 1u);
  ASSERT_EQ(r.samples.size(), 1u);
  EXPECT_EQ(r.samples[0].route, "Kokkos(Cuda)");
  EXPECT_EQ(r.samples[0].kernel, PerfKernel::Reduce);
  ASSERT_EQ(r.rows.size(), 1u);
  ASSERT_EQ(r.rows[0].cells.size(), 1u);
  EXPECT_TRUE(r.rows[0].cells[0].supported);
}

TEST(Campaign, EmptyDimensionsAreRejected) {
  CampaignConfig cfg;
  cfg.vendors.clear();
  EXPECT_THROW((void)run_campaign(cfg), std::invalid_argument);
  cfg = CampaignConfig{};
  cfg.sizes.clear();
  EXPECT_THROW((void)run_campaign(cfg), std::invalid_argument);
  cfg = CampaignConfig{};
  cfg.schedules.clear();
  EXPECT_THROW((void)run_campaign(cfg), std::invalid_argument);
}

}  // namespace
