// BENCH_perfport.json determinism regression test: the campaign records
// only simulated-clock quantities, so its JSON report must be
// byte-identical across MCMM_NUM_THREADS = 1, 4, and
// hardware_concurrency. The worker count is pinned per process (the
// global pool is a process-wide singleton), so each leg re-executes this
// binary via /proc/self/exe with `--emit-report`, which prints the full
// report_json of a reduced campaign.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "perfport/perfport.hpp"

namespace {

using mcmm::perfport::CampaignConfig;
using mcmm::perfport::PerfKernel;
using mcmm::perfport::report_json;
using mcmm::perfport::run_campaign;

/// Reduced but representative sweep: all vendors and schedules, two sizes,
/// a reduction-heavy and an uneven-work kernel alongside Triad.
CampaignConfig reduced_config() {
  CampaignConfig cfg;
  cfg.sizes = {2048, 4096};
  cfg.reps = 1;
  cfg.kernels = {PerfKernel::Triad, PerfKernel::Reduce, PerfKernel::Uneven};
  return cfg;
}

/// Child mode: run the campaign, print the JSON report verbatim.
int emit_report() {
  const auto report = run_campaign(reduced_config());
  const std::string json = report_json(report);
  std::fputs(json.c_str(), stdout);
  return report.samples.empty() ? 1 : 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// This binary's path, resolved in-process (inside std::system's shell,
/// /proc/self/exe would name the shell).
std::string self_exe() {
  char buffer[4096];
  const ssize_t len =
      ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (len <= 0) return {};
  buffer[len] = '\0';
  return buffer;
}

/// Re-executes this binary with MCMM_NUM_THREADS pinned and returns the
/// child's report bytes.
std::string report_with_threads(unsigned threads, const std::string& tag) {
  const std::string exe = self_exe();
  if (exe.empty()) {
    ADD_FAILURE() << "cannot resolve /proc/self/exe";
    return {};
  }
  const std::string out_path = "perfport_determinism_" + tag + ".json";
  const std::string cmd = "MCMM_NUM_THREADS=" + std::to_string(threads) +
                          " '" + exe + "' --emit-report > '" + out_path +
                          "' 2>/dev/null";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << "child re-exec failed for " << threads << " threads";
  const std::string report = read_file(out_path);
  std::remove(out_path.c_str());
  return report;
}

TEST(PerfportDeterminism, ReportBytesIdenticalAcrossWorkerCounts) {
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  const std::string r1 = report_with_threads(1, "t1");
  const std::string r4 = report_with_threads(4, "t4");
  const std::string rhw = report_with_threads(hw, "thw");
  ASSERT_FALSE(r1.empty());
  EXPECT_EQ(r1, r4) << "BENCH_perfport.json depends on the worker count";
  EXPECT_EQ(r1, rhw) << "BENCH_perfport.json depends on the worker count";
}

TEST(PerfportDeterminism, BackToBackRunsInOneProcessMatch) {
  const std::string first = report_json(run_campaign(reduced_config()));
  const std::string second = report_json(run_campaign(reduced_config()));
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--emit-report") == 0) return emit_report();
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
