// BabelStream suite tests: correctness of every model implementation and
// the performance-shape properties the bench figures rely on.

#include "bench_support/stream.hpp"

#include <gtest/gtest.h>

#include <map>

#include "models/stdparx/stdparx.hpp"

namespace mcmm::bench {
namespace {

constexpr std::size_t kN = 64 * 1024;
constexpr int kReps = 3;

TEST(StreamBytes, MatchBabelStreamAccounting) {
  EXPECT_DOUBLE_EQ(stream_bytes(StreamKernel::Copy, 100), 1600.0);
  EXPECT_DOUBLE_EQ(stream_bytes(StreamKernel::Mul, 100), 1600.0);
  EXPECT_DOUBLE_EQ(stream_bytes(StreamKernel::Add, 100), 2400.0);
  EXPECT_DOUBLE_EQ(stream_bytes(StreamKernel::Triad, 100), 2400.0);
  EXPECT_DOUBLE_EQ(stream_bytes(StreamKernel::Dot, 100), 1600.0);
}

TEST(StreamVerify, AcceptsCorrectEvolution) {
  double va = kInitA, vb = kInitB, vc = kInitC;
  for (int r = 0; r < 4; ++r) {
    vc = va;
    vb = kScalar * vc;
    vc = va + vb;
    va = vb + kScalar * vc;
  }
  const std::vector<double> a(100, va), b(100, vb), c(100, vc);
  EXPECT_TRUE(verify_stream(a, b, c, va * vb * 100, 100, 4));
  EXPECT_FALSE(verify_stream(a, b, c, 0.0, 100, 4));
  std::vector<double> bad = a;
  bad[50] = 1e9;
  EXPECT_FALSE(verify_stream(bad, b, c, va * vb * 100, 100, 4));
}

class StreamPerVendor : public ::testing::TestWithParam<Vendor> {};

TEST_P(StreamPerVendor, AllRoutesVerify) {
  for (auto& bench : stream_benchmarks_for(GetParam())) {
    const auto results = run_stream(*bench, kN, kReps);
    ASSERT_EQ(results.size(), 5u) << bench->label();
    for (const StreamResult& r : results) {
      EXPECT_TRUE(r.verified)
          << bench->label() << " " << to_string(r.kernel);
      EXPECT_GT(r.bandwidth_gbps, 0.0) << bench->label();
      EXPECT_GT(r.best_time_us, 0.0) << bench->label();
      EXPECT_EQ(r.vendor, GetParam());
    }
  }
}

TEST_P(StreamPerVendor, AtLeastFourRoutesPerVendor) {
  // Fig. 1: every vendor is reachable through multiple models in C++.
  EXPECT_GE(stream_benchmarks_for(GetParam()).size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Vendors, StreamPerVendor,
                         ::testing::ValuesIn(kAllVendors),
                         [](const ::testing::TestParamInfo<Vendor>& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Stream, NativeModelFastestOnItsPlatform) {
  // The headline performance shape: the native model attains the highest
  // Triad bandwidth on its home platform.
  const std::map<Vendor, std::string> native_label{
      {Vendor::NVIDIA, "CUDA"},
      {Vendor::AMD, "HIP"},
      {Vendor::Intel, "SYCL(DPC++)"},
  };
  for (const Vendor v : kAllVendors) {
    double native_bw = 0.0;
    double best_other = 0.0;
    std::string best_other_label;
    for (auto& bench : stream_benchmarks_for(v)) {
      const auto results = run_stream(*bench, kN, kReps);
      for (const StreamResult& r : results) {
        if (r.kernel != StreamKernel::Triad) continue;
        if (r.label == native_label.at(v)) {
          native_bw = r.bandwidth_gbps;
        } else if (r.bandwidth_gbps > best_other) {
          best_other = r.bandwidth_gbps;
          best_other_label = r.label;
        }
      }
    }
    EXPECT_GT(native_bw, best_other)
        << to_string(v) << ": native should beat " << best_other_label;
  }
}

TEST(Stream, PortabilityLayerWithinTenPercentOfNative) {
  // BabelStream literature: mature portability layers land within ~10 % of
  // native. Kokkos(Cuda) vs CUDA on the simulated NVIDIA device. Needs a
  // BabelStream-realistic array size so launch latency is amortized.
  constexpr std::size_t kLargeN = 1 << 22;
  double native = 0.0, kokkos = 0.0;
  for (auto& bench : stream_benchmarks_for(Vendor::NVIDIA)) {
    const auto results = run_stream(*bench, kLargeN, 2);
    for (const StreamResult& r : results) {
      if (r.kernel != StreamKernel::Triad) continue;
      if (r.label == "CUDA") native = r.bandwidth_gbps;
      if (r.label == "Kokkos(Cuda)") kokkos = r.bandwidth_gbps;
    }
  }
  ASSERT_GT(native, 0.0);
  ASSERT_GT(kokkos, 0.0);
  EXPECT_GT(kokkos, 0.9 * native);
  EXPECT_LE(kokkos, native);
}

TEST(Stream, ExperimentalRoutesClearlyBehindNative) {
  // Kokkos' experimental SYCL backend on Intel must trail DPC++ visibly.
  double native = 0.0, experimental = 0.0;
  for (auto& bench : stream_benchmarks_for(Vendor::Intel)) {
    const auto results = run_stream(*bench, kN, kReps);
    for (const StreamResult& r : results) {
      if (r.kernel != StreamKernel::Triad) continue;
      if (r.label == "SYCL(DPC++)") native = r.bandwidth_gbps;
      if (r.label == "Kokkos(SYCL)") experimental = r.bandwidth_gbps;
    }
  }
  ASSERT_GT(native, 0.0);
  ASSERT_GT(experimental, 0.0);
  EXPECT_LT(experimental, 0.9 * native);
}

TEST(Stream, RocStdparAppearsOnlyWhenEnabled) {
  stdparx::enable_experimental_roc_stdpar(false);
  auto without = stream_benchmarks_for(Vendor::AMD);
  stdparx::enable_experimental_roc_stdpar(true);
  auto with = stream_benchmarks_for(Vendor::AMD);
  stdparx::enable_experimental_roc_stdpar(false);
  EXPECT_EQ(with.size(), without.size() + 1);
}

TEST(Stream, NvidiaDeviceHasHighestCopyBandwidth) {
  // Descriptor-level: the H100-like device leads in attainable bandwidth.
  std::map<Vendor, double> best;
  for (const Vendor v : kAllVendors) {
    auto benches = stream_benchmarks_for(v);
    ASSERT_FALSE(benches.empty());
    const auto results = run_stream(*benches.front(), kN, kReps);
    for (const StreamResult& r : results) {
      if (r.kernel == StreamKernel::Copy) {
        best[v] = std::max(best[v], r.bandwidth_gbps);
      }
    }
  }
  EXPECT_GT(best[Vendor::NVIDIA], best[Vendor::AMD]);
  EXPECT_GT(best[Vendor::NVIDIA], best[Vendor::Intel]);
}

TEST(Stream, FormattersIncludeAllRows) {
  auto benches = stream_benchmarks_for(Vendor::Intel);
  std::vector<StreamResult> all;
  for (auto& bench : benches) {
    const auto results = run_stream(*bench, 4096, 2);
    all.insert(all.end(), results.begin(), results.end());
  }
  const std::string table = format_stream_table(all);
  const std::string csv = format_stream_csv(all);
  for (const StreamResult& r : all) {
    EXPECT_NE(table.find(r.label), std::string::npos);
    EXPECT_NE(csv.find(r.label), std::string::npos);
  }
  // CSV has a header plus one line per result.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            all.size() + 1);
}

TEST(Stream, BandwidthScalesReasonablyWithProblemSize) {
  // Larger arrays amortize launch latency: bandwidth grows monotonically
  // toward the device limit.
  auto benches = stream_benchmarks_for(Vendor::NVIDIA);
  StreamBenchmark* cuda = benches.front().get();
  double prev = 0.0;
  for (const std::size_t n : {1u << 12, 1u << 15, 1u << 18}) {
    const auto results = run_stream(*cuda, n, 2);
    const double bw = results[0].bandwidth_gbps;  // Copy
    EXPECT_GT(bw, prev) << n;
    prev = bw;
  }
}

}  // namespace
}  // namespace mcmm::bench
