#include "gpusim/allocator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace mcmm::gpusim {
namespace {

TEST(Allocator, AllocateAndFree) {
  DeviceAllocator a(1024);
  void* p = a.allocate(256);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(a.used_bytes(), 256u);
  EXPECT_EQ(a.live_allocations(), 1u);
  a.deallocate(p);
  EXPECT_EQ(a.used_bytes(), 0u);
  EXPECT_EQ(a.live_allocations(), 0u);
}

TEST(Allocator, CapacityEnforced) {
  DeviceAllocator a(1024);
  void* p = a.allocate(1000);
  EXPECT_THROW((void)a.allocate(100), OutOfMemory);
  a.deallocate(p);
  // Memory freed -> allocation succeeds now.
  void* q = a.allocate(100);
  a.deallocate(q);
}

TEST(Allocator, OutOfMemoryReportsSizes) {
  DeviceAllocator a(512);
  try {
    (void)a.allocate(1024);
    FAIL() << "expected OutOfMemory";
  } catch (const OutOfMemory& e) {
    EXPECT_EQ(e.requested(), 1024u);
    EXPECT_EQ(e.available(), 512u);
  }
}

TEST(Allocator, ExactFitSucceeds) {
  DeviceAllocator a(512);
  void* p = a.allocate(512);
  EXPECT_EQ(a.used_bytes(), 512u);
  a.deallocate(p);
}

TEST(Allocator, ZeroByteAllocationGetsUniquePointer) {
  DeviceAllocator a(1024);
  void* p = a.allocate(0);
  void* q = a.allocate(0);
  EXPECT_NE(p, nullptr);
  EXPECT_NE(p, q);
  a.deallocate(p);
  a.deallocate(q);
}

TEST(Allocator, DoubleFreeThrows) {
  DeviceAllocator a(1024);
  void* p = a.allocate(16);
  a.deallocate(p);
  EXPECT_THROW(a.deallocate(p), InvalidPointer);
}

TEST(Allocator, ForeignPointerFreeThrows) {
  DeviceAllocator a(1024);
  int local = 0;
  EXPECT_THROW(a.deallocate(&local), InvalidPointer);
}

TEST(Allocator, OwnsInteriorPointers) {
  DeviceAllocator a(1024);
  auto* p = static_cast<std::byte*>(a.allocate(64));
  EXPECT_TRUE(a.owns(p));
  EXPECT_TRUE(a.owns(p + 32));
  EXPECT_TRUE(a.owns(p + 63));
  EXPECT_FALSE(a.owns(p + 64));
  int local = 0;
  EXPECT_FALSE(a.owns(&local));
  a.deallocate(p);
  EXPECT_FALSE(a.owns(p));
}

TEST(Allocator, CheckRangeAcceptsSubranges) {
  DeviceAllocator a(1024);
  auto* p = static_cast<std::byte*>(a.allocate(64));
  EXPECT_NO_THROW(a.check_range(p, 64));
  EXPECT_NO_THROW(a.check_range(p + 16, 48));
  EXPECT_NO_THROW(a.check_range(p + 63, 1));
  a.deallocate(p);
}

TEST(Allocator, CheckRangeRejectsOverruns) {
  DeviceAllocator a(1024);
  auto* p = static_cast<std::byte*>(a.allocate(64));
  EXPECT_THROW(a.check_range(p, 65), InvalidPointer);
  EXPECT_THROW(a.check_range(p + 32, 33), InvalidPointer);
  int local = 0;
  EXPECT_THROW(a.check_range(&local, 1), InvalidPointer);
  a.deallocate(p);
}

TEST(Allocator, PeakTracksHighWater) {
  DeviceAllocator a(1024);
  void* p = a.allocate(400);
  void* q = a.allocate(300);
  a.deallocate(p);
  void* r = a.allocate(100);
  EXPECT_EQ(a.peak_bytes(), 700u);
  EXPECT_EQ(a.used_bytes(), 400u);
  a.deallocate(q);
  a.deallocate(r);
}

TEST(Allocator, FaultInjectionFailsNthAllocation) {
  DeviceAllocator a(1 << 20);
  a.set_fault_plan(FaultPlan{2});  // third allocation from now fails
  void* p = a.allocate(16);
  void* q = a.allocate(16);
  EXPECT_THROW((void)a.allocate(16), OutOfMemory);
  // Fault is one-shot.
  void* r = a.allocate(16);
  a.deallocate(p);
  a.deallocate(q);
  a.deallocate(r);
}

TEST(Allocator, FaultCountdownAdvancesOnlyOnSuccess) {
  DeviceAllocator a(1024);
  a.set_fault_plan(FaultPlan{2});
  void* p = a.allocate(100);  // success 1 of 2
  // A capacity failure must not consume the countdown: the injected fault
  // has to land on the same logical allocation regardless of interleaved
  // out-of-memory conditions.
  EXPECT_THROW((void)a.allocate(4096), OutOfMemory);
  void* q = a.allocate(100);                         // success 2 of 2
  EXPECT_THROW((void)a.allocate(100), OutOfMemory);  // injected fault
  void* r = a.allocate(100);                         // one-shot: fine again
  a.deallocate(p);
  a.deallocate(q);
  a.deallocate(r);
}

TEST(Allocator, FaultInjectionFiresExactlyOnceUnderConcurrency) {
  DeviceAllocator a(1 << 22);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 32;
  a.set_fault_plan(FaultPlan{64});  // 64 successes, then one fault
  std::atomic<int> faults{0};
  std::atomic<int> successes{0};
  std::vector<std::vector<void*>> owned(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        try {
          owned[static_cast<std::size_t>(t)].push_back(a.allocate(16));
          successes.fetch_add(1, std::memory_order_relaxed);
        } catch (const OutOfMemory&) {
          faults.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // The countdown advances under the allocator mutex and only on success,
  // so exactly one of the 256 attempts faults no matter the interleaving.
  EXPECT_EQ(faults.load(), 1);
  EXPECT_EQ(successes.load(), kThreads * kPerThread - 1);
  for (const auto& ptrs : owned) {
    for (void* p : ptrs) a.deallocate(p);
  }
}

TEST(Allocator, GuardBandsClassifyAndAttributeRanges) {
  DeviceAllocator a(4096);
  a.set_guard_bytes(32);
  auto* p = static_cast<std::byte*>(a.allocate(64, "tagged"));
  EXPECT_EQ(a.query_range(p, 64).status, RangeStatus::Ok);
  EXPECT_EQ(a.query_range(p + 63, 1).status, RangeStatus::Ok);

  const RangeQuery past = a.query_range(p + 64, 1);  // back red zone
  EXPECT_EQ(past.status, RangeStatus::OutOfBounds);
  EXPECT_EQ(past.id, 1u);
  EXPECT_EQ(past.origin, "tagged");
  EXPECT_EQ(past.offset, 64);

  const RangeQuery before = a.query_range(p - 1, 1);  // front red zone
  EXPECT_EQ(before.status, RangeStatus::OutOfBounds);
  EXPECT_EQ(before.id, 1u);

  // Straddling the end is out of bounds even though it starts inside.
  EXPECT_EQ(a.query_range(p + 32, 64).status, RangeStatus::OutOfBounds);

  int local = 0;
  EXPECT_EQ(a.query_range(&local, 4).status, RangeStatus::Unknown);
  a.deallocate(p);
}

TEST(Allocator, CanaryCorruptionDetectedAndSided) {
  DeviceAllocator a(4096);
  a.set_guard_bytes(16);
  auto* p = static_cast<std::byte*>(a.allocate(64, "victim"));
  EXPECT_TRUE(a.verify_canaries().empty());

  p[64] = std::byte{0};  // stomp the first byte past the allocation
  const std::vector<CanaryViolation> v = a.verify_canaries();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_FALSE(v[0].front);
  EXPECT_EQ(v[0].offset, 64);
  EXPECT_EQ(v[0].origin, "victim");

  p[-1] = std::byte{0};  // and one before it
  const std::vector<CanaryViolation> v2 = a.verify_canaries();
  ASSERT_EQ(v2.size(), 2u);  // both zones reported on a fresh scan
  a.deallocate(p);
  // Corruption seen at deallocate time is queued for the next scan.
  EXPECT_FALSE(a.verify_canaries().empty());
}

TEST(Allocator, QuarantineAttributesUseAfterFree) {
  DeviceAllocator a(4096);
  a.set_guard_bytes(16);
  auto* p = static_cast<std::byte*>(a.allocate(32, "freed-block"));
  a.deallocate(p);
  const RangeQuery q = a.query_range(p, 4);
  EXPECT_EQ(q.status, RangeStatus::UseAfterFree);
  EXPECT_EQ(q.id, 1u);
  EXPECT_EQ(q.origin, "freed-block");
  EXPECT_EQ(q.offset, 0);
}

TEST(Allocator, ManySmallAllocations) {
  DeviceAllocator a(1 << 20);
  std::vector<void*> ptrs;
  for (int i = 0; i < 1000; ++i) ptrs.push_back(a.allocate(64));
  EXPECT_EQ(a.live_allocations(), 1000u);
  EXPECT_EQ(a.used_bytes(), 64000u);
  for (void* p : ptrs) a.deallocate(p);
  EXPECT_EQ(a.used_bytes(), 0u);
}

}  // namespace
}  // namespace mcmm::gpusim
