#include "gpusim/allocator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mcmm::gpusim {
namespace {

TEST(Allocator, AllocateAndFree) {
  DeviceAllocator a(1024);
  void* p = a.allocate(256);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(a.used_bytes(), 256u);
  EXPECT_EQ(a.live_allocations(), 1u);
  a.deallocate(p);
  EXPECT_EQ(a.used_bytes(), 0u);
  EXPECT_EQ(a.live_allocations(), 0u);
}

TEST(Allocator, CapacityEnforced) {
  DeviceAllocator a(1024);
  void* p = a.allocate(1000);
  EXPECT_THROW((void)a.allocate(100), OutOfMemory);
  a.deallocate(p);
  // Memory freed -> allocation succeeds now.
  void* q = a.allocate(100);
  a.deallocate(q);
}

TEST(Allocator, OutOfMemoryReportsSizes) {
  DeviceAllocator a(512);
  try {
    (void)a.allocate(1024);
    FAIL() << "expected OutOfMemory";
  } catch (const OutOfMemory& e) {
    EXPECT_EQ(e.requested(), 1024u);
    EXPECT_EQ(e.available(), 512u);
  }
}

TEST(Allocator, ExactFitSucceeds) {
  DeviceAllocator a(512);
  void* p = a.allocate(512);
  EXPECT_EQ(a.used_bytes(), 512u);
  a.deallocate(p);
}

TEST(Allocator, ZeroByteAllocationGetsUniquePointer) {
  DeviceAllocator a(1024);
  void* p = a.allocate(0);
  void* q = a.allocate(0);
  EXPECT_NE(p, nullptr);
  EXPECT_NE(p, q);
  a.deallocate(p);
  a.deallocate(q);
}

TEST(Allocator, DoubleFreeThrows) {
  DeviceAllocator a(1024);
  void* p = a.allocate(16);
  a.deallocate(p);
  EXPECT_THROW(a.deallocate(p), InvalidPointer);
}

TEST(Allocator, ForeignPointerFreeThrows) {
  DeviceAllocator a(1024);
  int local = 0;
  EXPECT_THROW(a.deallocate(&local), InvalidPointer);
}

TEST(Allocator, OwnsInteriorPointers) {
  DeviceAllocator a(1024);
  auto* p = static_cast<std::byte*>(a.allocate(64));
  EXPECT_TRUE(a.owns(p));
  EXPECT_TRUE(a.owns(p + 32));
  EXPECT_TRUE(a.owns(p + 63));
  EXPECT_FALSE(a.owns(p + 64));
  int local = 0;
  EXPECT_FALSE(a.owns(&local));
  a.deallocate(p);
  EXPECT_FALSE(a.owns(p));
}

TEST(Allocator, CheckRangeAcceptsSubranges) {
  DeviceAllocator a(1024);
  auto* p = static_cast<std::byte*>(a.allocate(64));
  EXPECT_NO_THROW(a.check_range(p, 64));
  EXPECT_NO_THROW(a.check_range(p + 16, 48));
  EXPECT_NO_THROW(a.check_range(p + 63, 1));
  a.deallocate(p);
}

TEST(Allocator, CheckRangeRejectsOverruns) {
  DeviceAllocator a(1024);
  auto* p = static_cast<std::byte*>(a.allocate(64));
  EXPECT_THROW(a.check_range(p, 65), InvalidPointer);
  EXPECT_THROW(a.check_range(p + 32, 33), InvalidPointer);
  int local = 0;
  EXPECT_THROW(a.check_range(&local, 1), InvalidPointer);
  a.deallocate(p);
}

TEST(Allocator, PeakTracksHighWater) {
  DeviceAllocator a(1024);
  void* p = a.allocate(400);
  void* q = a.allocate(300);
  a.deallocate(p);
  void* r = a.allocate(100);
  EXPECT_EQ(a.peak_bytes(), 700u);
  EXPECT_EQ(a.used_bytes(), 400u);
  a.deallocate(q);
  a.deallocate(r);
}

TEST(Allocator, FaultInjectionFailsNthAllocation) {
  DeviceAllocator a(1 << 20);
  a.set_fault_plan(FaultPlan{2});  // third allocation from now fails
  void* p = a.allocate(16);
  void* q = a.allocate(16);
  EXPECT_THROW((void)a.allocate(16), OutOfMemory);
  // Fault is one-shot.
  void* r = a.allocate(16);
  a.deallocate(p);
  a.deallocate(q);
  a.deallocate(r);
}

TEST(Allocator, ManySmallAllocations) {
  DeviceAllocator a(1 << 20);
  std::vector<void*> ptrs;
  for (int i = 0; i < 1000; ++i) ptrs.push_back(a.allocate(64));
  EXPECT_EQ(a.live_allocations(), 1000u);
  EXPECT_EQ(a.used_bytes(), 64000u);
  for (void* p : ptrs) a.deallocate(p);
  EXPECT_EQ(a.used_bytes(), 0u);
}

}  // namespace
}  // namespace mcmm::gpusim
