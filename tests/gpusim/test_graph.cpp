// Kernel-graph capture & replay battery: stream capture into a linear
// chain, replay bit-identity (results and simulated clock) against the
// eager path, fusion of single-item runs, explicit-DAG construction with
// wavefront scheduling, the one-shot instantiate-time validation pass
// (cycles, launch limits, buffer lifetime, races between unordered
// nodes), capture-mode misuse errors, the multi-device Platform rails,
// P2P copy timing properties, and the profiler's folded graph
// attribution.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "gpuprof/gpuprof.hpp"
#include "gpusim/device.hpp"
#include "gpusim/graph.hpp"

namespace mcmm::gpusim {
namespace {

using mcmm::Vendor;

/// The BabelStream-shaped workload both paths run: init + reps x
/// (copy / mul / add / triad) with declared costs, ending in a memset of
/// a scratch area and a marker. Everything is inside, so a capture from
/// a fresh queue replays the eager clock arithmetic from T0 = 0.
struct StreamArrays {
  double* a;
  double* b;
  double* c;
  double* scratch;
};

void submit_stream(Queue& q, const StreamArrays& m, std::uint64_t n,
                   int reps) {
  KernelCosts one;
  one.bytes_read = static_cast<double>(n) * sizeof(double);
  one.bytes_written = static_cast<double>(n) * sizeof(double);
  KernelCosts two = one;
  two.bytes_read *= 2;
  KernelCosts triad = two;
  triad.flops = 2.0 * static_cast<double>(n);
  const double s = 0.4;
  double* a = m.a;
  double* b = m.b;
  double* c = m.c;
  {
    KernelLabelScope label("Init");
    q.launch(launch_1d(n, 256), one, [a, b, c](const WorkItem& it) {
      const std::size_t i = it.global_x();
      a[i] = 0.1;
      b[i] = 0.2;
      c[i] = 0.0;
    });
  }
  for (int r = 0; r < reps; ++r) {
    {
      KernelLabelScope label("Copy");
      q.launch(launch_1d(n, 256), one, [a, c](const WorkItem& it) {
        c[it.global_x()] = a[it.global_x()];
      });
    }
    {
      KernelLabelScope label("Mul");
      q.launch(launch_1d(n, 256), one, [b, c, s](const WorkItem& it) {
        b[it.global_x()] = s * c[it.global_x()];
      });
    }
    {
      KernelLabelScope label("Add");
      q.launch(launch_1d(n, 256), two, [a, b, c](const WorkItem& it) {
        c[it.global_x()] = a[it.global_x()] + b[it.global_x()];
      });
    }
    {
      KernelLabelScope label("Triad");
      q.launch(launch_1d(n, 256), triad, [a, b, c, s](const WorkItem& it) {
        a[it.global_x()] = b[it.global_x()] + s * c[it.global_x()];
      });
    }
  }
  q.memset(m.scratch, 0, n * sizeof(double));
  (void)q.record();
}

struct StreamRun {
  std::vector<double> a, b, c;
  double sim_us{0};
};

/// Runs the workload on a fresh device, eagerly or captured+replayed, and
/// reads the arrays back. The simulated time is recorded before the D2H
/// verification copies move the clock.
StreamRun run_stream(std::uint64_t n, int reps, bool graphed,
                     std::size_t* nodes_out = nullptr) {
  Device dev(tiny_test_device(std::size_t{64} << 20));
  Queue& q = dev.default_queue();
  StreamArrays m{};
  m.a = static_cast<double*>(dev.allocate(n * sizeof(double), "a"));
  m.b = static_cast<double*>(dev.allocate(n * sizeof(double), "b"));
  m.c = static_cast<double*>(dev.allocate(n * sizeof(double), "c"));
  m.scratch =
      static_cast<double*>(dev.allocate(n * sizeof(double), "scratch"));
  if (graphed) {
    Graph graph;
    q.begin_capture(graph);
    submit_stream(q, m, n, reps);
    const std::size_t captured = q.end_capture();
    if (nodes_out != nullptr) *nodes_out = captured;
    ExecutableGraph exec(graph, q);
    (void)exec.replay(q);
  } else {
    submit_stream(q, m, n, reps);
  }
  StreamRun out;
  out.sim_us = q.simulated_time_us();
  out.a.resize(n);
  out.b.resize(n);
  out.c.resize(n);
  q.memcpy(out.a.data(), m.a, n * sizeof(double), CopyKind::DeviceToHost);
  q.memcpy(out.b.data(), m.b, n * sizeof(double), CopyKind::DeviceToHost);
  q.memcpy(out.c.data(), m.c, n * sizeof(double), CopyKind::DeviceToHost);
  dev.deallocate(m.scratch);
  dev.deallocate(m.c);
  dev.deallocate(m.b);
  dev.deallocate(m.a);
  return out;
}

TEST(GraphCapture, ReplayIsBitIdenticalToEager) {
  constexpr std::uint64_t n = 1 << 14;
  constexpr int reps = 3;
  std::size_t nodes = 0;
  const StreamRun eager = run_stream(n, reps, false);
  const StreamRun replay = run_stream(n, reps, true, &nodes);
  // init + reps*4 kernels + memset + record marker.
  EXPECT_EQ(nodes, 1u + 4u * reps + 2u);
  EXPECT_EQ(std::memcmp(eager.a.data(), replay.a.data(),
                        n * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(eager.b.data(), replay.b.data(),
                        n * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(eager.c.data(), replay.c.data(),
                        n * sizeof(double)),
            0);
  // Not approximately: the same FP additions in the same order.
  EXPECT_EQ(eager.sim_us, replay.sim_us);
}

TEST(GraphCapture, CaptureRecordsWithoutExecutingOrAdvancingClock) {
  constexpr std::uint64_t n = 1024;
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  auto* d = static_cast<double*>(dev.allocate(n * sizeof(double)));
  q.memset(d, 0, n * sizeof(double));
  const double before = q.simulated_time_us();
  int host_hits = 0;
  Graph graph;
  q.begin_capture(graph);
  EXPECT_TRUE(q.capturing());
  EXPECT_TRUE(graph.capturing());
  q.launch(launch_1d(n, 128), KernelCosts{},
           [d, &host_hits](const WorkItem& it) {
             d[it.global_x()] = 1.0;
             ++host_hits;
           });
  EXPECT_EQ(q.end_capture(), 1u);
  EXPECT_FALSE(q.capturing());
  EXPECT_EQ(host_hits, 0) << "capture mode must record, not execute";
  EXPECT_EQ(q.simulated_time_us(), before)
      << "capture mode must not advance the simulated clock";
  ExecutableGraph exec(graph, q);
  (void)exec.replay(q);
  std::vector<double> h(n);
  q.memcpy(h.data(), d, n * sizeof(double), CopyKind::DeviceToHost);
  EXPECT_EQ(h.front(), 1.0);
  EXPECT_EQ(h.back(), 1.0);
  dev.deallocate(d);
}

TEST(GraphCapture, SingleItemChainFusesIntoOneWavePerNode) {
  // 50 single-item kernels of one body type: capture chains them, the
  // executable fuses them, and replay still runs them in order (the
  // recurrence x_{k+1} = 2x_k + 1 is order-sensitive and exact in double
  // up to k = 52).
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  auto* d = static_cast<double*>(dev.allocate(sizeof(double)));
  q.memset(d, 0, sizeof(double));
  Graph graph;
  q.begin_capture(graph);
  for (int i = 0; i < 50; ++i) {
    q.launch(launch_1d(1, 1), KernelCosts{},
             [d](const WorkItem&) { *d = *d * 2.0 + 1.0; });
  }
  EXPECT_EQ(q.end_capture(), 50u);
  ExecutableGraph exec(graph, q);
  EXPECT_EQ(exec.node_count(), 50u);
  EXPECT_EQ(exec.wave_count(), 50u) << "a captured chain is linear";
  (void)exec.replay(q);
  double h = 0;
  q.memcpy(&h, d, sizeof(double), CopyKind::DeviceToHost);
  EXPECT_EQ(h, std::ldexp(1.0, 50) - 1.0);
  dev.deallocate(d);
}

TEST(GraphCapture, ReplayIsRepeatable) {
  // A graph writing a pure function of its inputs replays any number of
  // times with the same result; each replay advances the clock by the
  // same baked duration.
  constexpr std::uint64_t n = 4096;
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  auto* d = static_cast<double*>(dev.allocate(n * sizeof(double)));
  Graph graph;
  q.begin_capture(graph);
  q.launch(launch_1d(n, 256), KernelCosts{}, [d](const WorkItem& it) {
    d[it.global_x()] = static_cast<double>(it.global_x()) * 0.5;
  });
  (void)q.end_capture();
  ExecutableGraph exec(graph, q);
  const double t0 = q.simulated_time_us();
  const Event e1 = exec.replay(q);
  const Event e2 = exec.replay(q);
  EXPECT_EQ(e1.sim_end_us - e1.sim_begin_us, e2.sim_end_us - e2.sim_begin_us);
  EXPECT_EQ(q.simulated_time_us(), t0 + 2 * exec.duration_us());
  std::vector<double> h(n);
  q.memcpy(h.data(), d, n * sizeof(double), CopyKind::DeviceToHost);
  EXPECT_EQ(h[100], 50.0);
  dev.deallocate(d);
}

TEST(GraphExplicit, DiamondDagRunsInWavefronts) {
  // a -> {b, c} -> d: 3 waves, and d observes both branch writes.
  constexpr std::uint64_t n = 1024;
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  auto* x = static_cast<double*>(dev.allocate(n * sizeof(double), "x"));
  auto* y = static_cast<double*>(dev.allocate(n * sizeof(double), "y"));
  auto* z = static_cast<double*>(dev.allocate(n * sizeof(double), "z"));
  const std::size_t bytes = n * sizeof(double);

  Graph graph;
  GraphAccess init_access;
  init_access.writes = {{x, bytes}};
  const NodeId a = graph.add_kernel(
      launch_1d(n, 128), KernelCosts{},
      [x](const WorkItem& it) { x[it.global_x()] = 1.0; }, init_access, {},
      {}, "seed");
  GraphAccess b_access;
  b_access.reads = {{x, bytes}};
  b_access.writes = {{y, bytes}};
  const NodeId b = graph.add_kernel(
      launch_1d(n, 128), KernelCosts{},
      [x, y](const WorkItem& it) { y[it.global_x()] = x[it.global_x()] + 1; },
      b_access, {a});
  GraphAccess c_access;
  c_access.reads = {{x, bytes}};
  c_access.writes = {{z, bytes}};
  const NodeId c = graph.add_kernel(
      launch_1d(n, 128), KernelCosts{},
      [x, z](const WorkItem& it) { z[it.global_x()] = x[it.global_x()] * 3; },
      c_access, {a});
  GraphAccess d_access;
  d_access.reads = {{y, bytes}, {z, bytes}};
  d_access.writes = {{x, bytes}};
  const NodeId d = graph.add_kernel(
      launch_1d(n, 128), KernelCosts{},
      [x, y, z](const WorkItem& it) {
        x[it.global_x()] = y[it.global_x()] + z[it.global_x()];
      },
      d_access, {b});
  graph.add_dependency(c, d);

  EXPECT_EQ(graph.node_count(), 4u);
  EXPECT_EQ(graph.node_label(a), "seed");
  EXPECT_EQ(graph.node_deps(d), (std::vector<NodeId>{b, c}));

  const GraphValidation v = validate_graph(graph, dev);
  EXPECT_TRUE(v.clean());
  // b/c is the only unordered pair with declared accesses.
  EXPECT_EQ(v.pairs_checked, 1u);

  ExecutableGraph exec(graph, q);
  EXPECT_EQ(exec.wave_count(), 3u);
  (void)exec.replay(q);
  std::vector<double> h(n);
  q.memcpy(h.data(), x, bytes, CopyKind::DeviceToHost);
  EXPECT_EQ(h[0], 5.0);  // (1+1) + (1*3)
  dev.deallocate(z);
  dev.deallocate(y);
  dev.deallocate(x);
}

TEST(GraphExplicit, MemcpyMemsetAndMarkerNodes) {
  constexpr std::uint64_t n = 512;
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  auto* d = static_cast<double*>(dev.allocate(n * sizeof(double)));
  std::vector<double> src(n, 7.0);
  std::vector<double> dst(n, 0.0);
  const std::size_t bytes = n * sizeof(double);

  Graph graph;
  const NodeId clear = graph.add_memset(d, 0, bytes);
  const NodeId up =
      graph.add_memcpy(d, src.data(), bytes / 2, CopyKind::HostToDevice,
                       {clear});
  const NodeId mark = graph.add_marker({up}, "halfway");
  (void)graph.add_memcpy(dst.data(), d, bytes, CopyKind::DeviceToHost,
                         {mark});
  EXPECT_EQ(graph.node_kind(mark), GraphNodeKind::Marker);

  ExecutableGraph exec(graph, q);
  EXPECT_EQ(exec.node_count(), 4u);
  (void)exec.replay(q);
  EXPECT_EQ(dst[0], 7.0);
  EXPECT_EQ(dst[n / 2 - 1], 7.0);
  EXPECT_EQ(dst[n / 2], 0.0);
  dev.deallocate(d);
}

TEST(GraphErrors, PeerCopiesAreNotGraphable) {
  Graph graph;
  double a = 0;
  double b = 0;
  EXPECT_THROW(
      (void)graph.add_memcpy(&a, &b, sizeof(double), CopyKind::PeerToPeer),
      GraphError);
}

TEST(GraphErrors, CaptureMisuse) {
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();

  // Ending a capture that never began.
  EXPECT_THROW((void)q.end_capture(), CaptureError);

  // Capturing into a non-empty graph.
  Graph prebuilt;
  (void)prebuilt.add_marker();
  EXPECT_THROW(q.begin_capture(prebuilt), CaptureError);

  Graph graph;
  q.begin_capture(graph);

  // Capture-while-capturing: same queue, and a second queue into the
  // same graph.
  EXPECT_THROW(q.begin_capture(graph), CaptureError);
  const std::unique_ptr<Queue> q2 = dev.create_queue();
  EXPECT_THROW(q2->begin_capture(graph), CaptureError);

  // Explicit building while a capture session owns the graph.
  EXPECT_THROW((void)graph.add_marker(), CaptureError);

  // P2P submission while capturing.
  auto* d = static_cast<double*>(dev.allocate(sizeof(double)));
  EXPECT_THROW((void)q.memcpy_peer(d, dev, d, sizeof(double)),
               CaptureError);

  // Replaying through a capturing queue.
  Graph other;
  {
    const std::unique_ptr<Queue> q3 = dev.create_queue();
    q3->begin_capture(other);
    (void)q3->record();
    (void)q3->end_capture();
  }
  ExecutableGraph exec(other, *q2);
  EXPECT_THROW((void)exec.replay(q), CaptureError);

  EXPECT_EQ(q.end_capture(), 0u);
  (void)exec.replay(q);  // queue released from capture: replay is legal
  dev.deallocate(d);
}

TEST(GraphErrors, ReplayOnWrongDeviceThrows) {
  Device dev_a(tiny_test_device(1 << 20));
  Device dev_b(tiny_test_device(1 << 20));
  Graph graph;
  (void)graph.add_marker();
  ExecutableGraph exec(graph, dev_a.default_queue());
  EXPECT_THROW((void)exec.replay(dev_b.default_queue()), GraphError);
}

TEST(GraphValidationPass, CycleIsReported) {
  Device dev(tiny_test_device(1 << 20));
  Graph graph;
  const NodeId a = graph.add_marker();
  const NodeId b = graph.add_marker({a});
  graph.add_dependency(b, a);  // closes the loop
  const GraphValidation v = validate_graph(graph, dev);
  ASSERT_EQ(v.findings.size(), 1u);
  EXPECT_EQ(v.findings[0].kind, "cycle");
  EXPECT_THROW(ExecutableGraph(graph, dev.default_queue()),
               GraphValidationError);
}

TEST(GraphValidationPass, FreedBufferIsReported) {
  constexpr std::uint64_t n = 256;
  Device dev(tiny_test_device(1 << 20));
  auto* d = static_cast<double*>(dev.allocate(n * sizeof(double), "doomed"));
  Graph graph;
  (void)graph.add_memset(d, 0, n * sizeof(double));
  dev.deallocate(d);  // freed between build and instantiate
  const GraphValidation v = validate_graph(graph, dev);
  ASSERT_EQ(v.findings.size(), 1u);
  EXPECT_EQ(v.findings[0].kind, "freed-buffer");
  EXPECT_NE(v.findings[0].message.find("doomed"), std::string::npos);
  try {
    ExecutableGraph exec(graph, dev.default_queue());
    FAIL() << "instantiate must throw on a freed buffer";
  } catch (const GraphValidationError& e) {
    ASSERT_EQ(e.validation().findings.size(), 1u);
    EXPECT_EQ(e.validation().findings[0].kind, "freed-buffer");
  }
}

TEST(GraphValidationPass, InvalidLaunchAndDirectionMismatch) {
  constexpr std::uint64_t n = 256;
  Device dev(tiny_test_device(1 << 20));
  auto* d = static_cast<double*>(dev.allocate(n * sizeof(double)));
  std::vector<double> h(n);

  Graph graph;
  LaunchConfig cfg = launch_1d(n, 128);
  cfg.block.x = 4096;  // over max_threads_per_block (1024 on the H100-like)
  (void)graph.add_kernel(cfg, KernelCosts{}, [](const WorkItem&) {});
  // H2D whose source is device memory.
  (void)graph.add_memcpy(h.data(), d, n * sizeof(double),
                         CopyKind::HostToDevice);
  const GraphValidation v = validate_graph(graph, dev);
  std::vector<std::string> kinds;
  for (const GraphFinding& f : v.findings) kinds.push_back(f.kind);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), "invalid-launch"),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), "direction-mismatch"),
            kinds.end());
  dev.deallocate(d);
}

TEST(GraphValidationPass, RaceBetweenUnorderedNodesIsCaught) {
  // Two kernels with no ordering edge whose declared writes overlap: the
  // one-shot validation pass must flag the pair (this is the per-launch
  // gpusan race check moved to instantiate time). Adding the missing
  // dependency makes the same graph clean.
  constexpr std::uint64_t n = 1024;
  Device dev(tiny_test_device(1 << 20));
  auto* d = static_cast<double*>(dev.allocate(n * sizeof(double), "shared"));
  const std::size_t bytes = n * sizeof(double);

  const auto build = [&](bool ordered) {
    Graph graph;
    GraphAccess w;
    w.writes = {{d, bytes}};
    const NodeId a = graph.add_kernel(
        launch_1d(n, 128), KernelCosts{},
        [d](const WorkItem& it) { d[it.global_x()] = 1.0; }, w, {}, {},
        "writer-a");
    (void)graph.add_kernel(
        launch_1d(n, 128), KernelCosts{},
        [d](const WorkItem& it) { d[it.global_x()] = 2.0; }, w,
        ordered ? std::vector<NodeId>{a} : std::vector<NodeId>{}, {},
        "writer-b");
    return graph;
  };

  const Graph racy = build(false);
  const GraphValidation v = validate_graph(racy, dev);
  ASSERT_EQ(v.findings.size(), 1u);
  EXPECT_EQ(v.findings[0].kind, "race");
  EXPECT_NE(v.findings[0].message.find("write-write"), std::string::npos);
  EXPECT_NE(v.findings[0].message.find("writer-a"), std::string::npos);
  EXPECT_EQ(v.pairs_checked, 1u);
  EXPECT_THROW(ExecutableGraph(racy, dev.default_queue()),
               GraphValidationError);

  const Graph fixed = build(true);
  const GraphValidation ok = validate_graph(fixed, dev);
  EXPECT_TRUE(ok.clean());
  EXPECT_EQ(ok.pairs_checked, 0u) << "ordered pairs are not race candidates";
  dev.deallocate(d);
}

TEST(GraphValidationPass, DisjointWritesAreNotARace) {
  constexpr std::uint64_t n = 1024;
  Device dev(tiny_test_device(1 << 20));
  auto* d = static_cast<double*>(dev.allocate(n * sizeof(double)));
  const std::size_t half = n / 2 * sizeof(double);
  Graph graph;
  GraphAccess lo;
  lo.writes = {{d, half}};
  GraphAccess hi;
  hi.writes = {{d + n / 2, half}};
  (void)graph.add_kernel(launch_1d(n / 2, 128), KernelCosts{},
                         [](const WorkItem&) {}, lo);
  (void)graph.add_kernel(launch_1d(n / 2, 128), KernelCosts{},
                         [](const WorkItem&) {}, hi);
  const GraphValidation v = validate_graph(graph, dev);
  EXPECT_TRUE(v.clean());
  EXPECT_EQ(v.pairs_checked, 1u);
  dev.deallocate(d);
}

// ---------------------------------------------------------------------------
// Multi-device Platform rails and P2P copies.

TEST(MultiDevice, PlatformGrowsDenseOrdinalRails) {
  Platform& p = Platform::instance();
  p.trim_devices(Vendor::AMD, 0);
  EXPECT_EQ(p.device_count(Vendor::AMD), 0u);
  EXPECT_EQ(p.try_device(Vendor::AMD, 1), nullptr);

  Device& d2 = p.device(Vendor::AMD, 2);
  EXPECT_EQ(p.device_count(Vendor::AMD), 3u) << "lower ordinals materialize";
  EXPECT_EQ(d2.ordinal(), 2u);
  const std::vector<Device*> rail = p.devices_of(Vendor::AMD);
  ASSERT_EQ(rail.size(), 3u);
  const std::string base = rail[0]->descriptor().name;
  EXPECT_EQ(rail[0]->ordinal(), 0u);
  EXPECT_EQ(rail[1]->descriptor().name, base + " #1");
  EXPECT_EQ(rail[2]->descriptor().name, base + " #2");
  EXPECT_EQ(p.try_device(Vendor::AMD, 1), rail[1]);
  EXPECT_EQ(&p.device(Vendor::AMD, 1), rail[1]) << "repeat lookups are stable";

  p.trim_devices(Vendor::AMD, 1);
  EXPECT_EQ(p.device_count(Vendor::AMD), 1u);
  EXPECT_EQ(p.try_device(Vendor::AMD, 2), nullptr);
  p.trim_devices(Vendor::AMD, 0);
  (void)p.device(Vendor::AMD, 0);  // restore the default rail
}

TEST(MultiDevice, PeerCopyMovesBytesAndBillsTheLink) {
  constexpr std::uint64_t n = 1 << 16;
  const std::size_t bytes = n * sizeof(double);
  Device src(descriptor_for(Vendor::NVIDIA), 0);
  Device dst(DeviceDescriptor{descriptor_for(Vendor::NVIDIA)}, 1);
  auto* s = static_cast<double*>(src.allocate(bytes));
  auto* d = static_cast<double*>(dst.allocate(bytes));
  std::vector<double> h(n, 3.25);
  Queue& q = src.default_queue();
  q.memcpy(s, h.data(), bytes, CopyKind::HostToDevice);

  const double before = q.simulated_time_us();
  const Event e = q.memcpy_peer(d, dst, s, bytes);
  const double expected =
      p2p_time_us(src.descriptor(), dst.descriptor(),
                  static_cast<double>(bytes));
  EXPECT_EQ(e.sim_begin_us, before);
  // Compared as `before + expected` (the clock's own FP addition), not as
  // an end-minus-begin difference, which loses a ULP.
  EXPECT_EQ(e.sim_end_us, before + expected);
  EXPECT_EQ(q.simulated_time_us(), before + expected)
      << "the source queue's clock pays for the transfer";
  EXPECT_EQ(dst.default_queue().simulated_time_us(), 0.0)
      << "the destination queue is not billed";

  std::vector<double> back(n, 0.0);
  dst.default_queue().memcpy(back.data(), d, bytes, CopyKind::DeviceToHost);
  EXPECT_EQ(std::memcmp(back.data(), h.data(), bytes), 0);
  dst.deallocate(d);
  src.deallocate(s);
}

TEST(MultiDevice, PeerTimingProperties) {
  const DeviceDescriptor nv = descriptor_for(Vendor::NVIDIA);
  const DeviceDescriptor amd = descriptor_for(Vendor::AMD);
  // Monotone in bytes.
  EXPECT_LT(p2p_time_us(nv, nv, 1 << 10), p2p_time_us(nv, nv, 1 << 20));
  // Symmetric, and bounded by the slower endpoint's link.
  EXPECT_EQ(p2p_time_us(nv, amd, 1 << 20), p2p_time_us(amd, nv, 1 << 20));
  const double cross = p2p_time_us(nv, amd, 1 << 20);
  const double slow_link = p2p_time_us(amd, amd, 1 << 20);
  EXPECT_EQ(cross - std::max(nv.copy_latency_us, amd.copy_latency_us),
            slow_link - amd.copy_latency_us);
  // Device-initiated over the fabric beats staging through the host for
  // large transfers on every vendor (one latency hop, faster link).
  for (const Vendor v : {Vendor::AMD, Vendor::Intel, Vendor::NVIDIA}) {
    const DeviceDescriptor d = descriptor_for(v);
    const double direct = p2p_time_us(d, d, double{1 << 24});
    const double staged = 2.0 * copy_time_us(d, double{1 << 24});
    EXPECT_LT(direct, staged) << to_string(v);
  }
}

TEST(MultiDevice, SameDevicePeerCopyDegradesToD2D) {
  constexpr std::size_t bytes = std::size_t{1} << 16;
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  auto* a = static_cast<double*>(dev.allocate(bytes));
  auto* b = static_cast<double*>(dev.allocate(bytes));
  q.memset(a, 0, bytes);
  const double before = q.simulated_time_us();
  (void)q.memcpy_peer(b, dev, a, bytes);
  EXPECT_EQ(q.simulated_time_us(),
            before + d2d_time_us(dev.descriptor(),
                                 static_cast<double>(bytes)))
      << "no inter-device link to bill on one device";
  dev.deallocate(b);
  dev.deallocate(a);
}

// ---------------------------------------------------------------------------
// Profiler integration: one GraphReplay event per replay, folded per-node
// attribution matching the eager per-launch rows.

TEST(GraphProfiler, OneReplayEventWithFoldedAttribution) {
  constexpr std::uint64_t n = 1 << 12;
  constexpr int reps = 2;

  const auto run = [&](bool graphed) {
    return mcmm::gpuprof::capture_trace([&] {
      Device dev(tiny_test_device(std::size_t{16} << 20));
      Queue& q = dev.default_queue();
      StreamArrays m{};
      m.a = static_cast<double*>(dev.allocate(n * sizeof(double)));
      m.b = static_cast<double*>(dev.allocate(n * sizeof(double)));
      m.c = static_cast<double*>(dev.allocate(n * sizeof(double)));
      m.scratch = static_cast<double*>(dev.allocate(n * sizeof(double)));
      if (graphed) {
        Graph graph;
        q.begin_capture(graph);
        submit_stream(q, m, n, reps);
        (void)q.end_capture();
        ExecutableGraph exec(graph, q);
        (void)exec.replay(q);
      } else {
        submit_stream(q, m, n, reps);
      }
      dev.deallocate(m.scratch);
      dev.deallocate(m.c);
      dev.deallocate(m.b);
      dev.deallocate(m.a);
    });
  };

  const mcmm::gpuprof::Trace eager = run(false);
  const mcmm::gpuprof::Trace replay = run(true);

  std::size_t replay_events = 0;
  for (const mcmm::gpuprof::TraceEvent& e : replay.events) {
    EXPECT_NE(e.kind, mcmm::gpuprof::OpKind::Kernel)
        << "replay must not emit per-node kernel events";
    if (e.kind == mcmm::gpuprof::OpKind::GraphReplay) ++replay_events;
  }
  EXPECT_EQ(replay_events, 1u);
  EXPECT_FALSE(replay.folded.empty());

  // The folded rows aggregate to the same per-kernel attribution the
  // eager path reports row by row.
  const auto summarize = [](const mcmm::gpuprof::Trace& t) {
    std::vector<std::string> rows;
    for (const mcmm::gpuprof::KernelSummary& s : t.kernel_summaries()) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%s launches=%llu items=%llu bytes=%.0f",
                    s.name.c_str(),
                    static_cast<unsigned long long>(s.launches),
                    static_cast<unsigned long long>(s.items), s.bytes);
      rows.push_back(buf);
    }
    std::sort(rows.begin(), rows.end());  // grouping order is not contractual
    return rows;
  };
  EXPECT_EQ(summarize(eager), summarize(replay));

  // Simulated end-to-end span matches the eager timeline too.
  double eager_end = 0;
  double replay_end = 0;
  for (const auto& e : eager.events) {
    eager_end = std::max(eager_end, e.sim_end_us);
  }
  for (const auto& e : replay.events) {
    replay_end = std::max(replay_end, e.sim_end_us);
  }
  EXPECT_EQ(eager_end, replay_end);
}

}  // namespace
}  // namespace mcmm::gpusim
