// Property tests of the analytic timing model (the Abl-2 design choice).

#include "gpusim/costs.hpp"

#include <gtest/gtest.h>

namespace mcmm::gpusim {
namespace {

TEST(Costs, KernelTimeIncludesLaunchLatency) {
  const DeviceDescriptor dev = h100_like();
  const double t = kernel_time_us(dev, BackendProfile{}, KernelCosts{});
  EXPECT_DOUBLE_EQ(t, dev.kernel_launch_latency_us);
}

TEST(Costs, MemoryBoundKernelScalesWithBytes) {
  const DeviceDescriptor dev = h100_like();
  KernelCosts small;
  small.bytes_read = 1e6;
  KernelCosts big;
  big.bytes_read = 1e9;
  const double ts = kernel_time_us(dev, BackendProfile{}, small);
  const double tb = kernel_time_us(dev, BackendProfile{}, big);
  EXPECT_GT(tb, ts);
  // Asymptotically linear: 1000x the bytes ~ 1000x the transfer part.
  const double transfer_small = ts - dev.kernel_launch_latency_us;
  const double transfer_big = tb - dev.kernel_launch_latency_us;
  EXPECT_NEAR(transfer_big / transfer_small, 1000.0, 1.0);
}

TEST(Costs, ComputeBoundKernelUsesFlops) {
  const DeviceDescriptor dev = h100_like();
  KernelCosts costs;
  costs.flops = 1e12;  // 1 TFLOP on a ~33 TFLOP/s device ~ 30 ms
  const double t = kernel_time_us(dev, BackendProfile{}, costs);
  EXPECT_GT(t, 25e3);
  EXPECT_LT(t, 40e3);
}

TEST(Costs, RooflineMaxOfMemoryAndCompute) {
  const DeviceDescriptor dev = h100_like();
  KernelCosts costs;
  costs.bytes_read = 1e9;
  costs.flops = 1.0;  // negligible
  const double mem_only = kernel_time_us(dev, BackendProfile{}, costs);
  costs.flops = 1e14;  // dominates
  const double compute_bound = kernel_time_us(dev, BackendProfile{}, costs);
  EXPECT_GT(compute_bound, mem_only);
}

TEST(Costs, BandwidthEfficiencySlowsKernels) {
  const DeviceDescriptor dev = mi250x_like();
  KernelCosts costs;
  costs.bytes_read = 1e9;
  BackendProfile native;
  BackendProfile layered;
  layered.bandwidth_efficiency = 0.5;
  const double tn = kernel_time_us(dev, native, costs);
  const double tl = kernel_time_us(dev, layered, costs);
  EXPECT_GT(tl, tn);
  // Transfer part doubles at half efficiency.
  EXPECT_NEAR((tl - dev.kernel_launch_latency_us) /
                  (tn - dev.kernel_launch_latency_us),
              2.0, 0.01);
}

TEST(Costs, ExtraLaunchLatencyAdds) {
  const DeviceDescriptor dev = ponte_vecchio_like();
  BackendProfile p;
  p.extra_launch_latency_us = 5.0;
  const double t = kernel_time_us(dev, p, KernelCosts{});
  EXPECT_DOUBLE_EQ(t, dev.kernel_launch_latency_us + 5.0);
}

TEST(Costs, CopyTimeHasLatencyFloor) {
  const DeviceDescriptor dev = h100_like();
  EXPECT_DOUBLE_EQ(copy_time_us(dev, 0.0), dev.copy_latency_us);
  EXPECT_GT(copy_time_us(dev, 1e9), dev.copy_latency_us);
}

TEST(Costs, D2DFasterThanPcieForLargeCopies) {
  const DeviceDescriptor dev = h100_like();
  // On-device copies move at DRAM speed, PCIe copies at link speed.
  EXPECT_LT(d2d_time_us(dev, 1e9), copy_time_us(dev, 1e9));
}

TEST(Costs, StreamEfficiencyIsRealistic) {
  EXPECT_GT(kStreamEfficiency, 0.8);
  EXPECT_LT(kStreamEfficiency, 1.0);
}

TEST(Costs, AttainableBandwidthOrderingMatchesDescriptors) {
  // A pure-copy kernel must run fastest on the device with the highest
  // bandwidth (NVIDIA H100-like in our presets).
  KernelCosts costs;
  costs.bytes_read = 5e8;
  costs.bytes_written = 5e8;
  const double t_nv = kernel_time_us(h100_like(), BackendProfile{}, costs);
  const double t_amd = kernel_time_us(mi250x_like(), BackendProfile{}, costs);
  const double t_intel =
      kernel_time_us(ponte_vecchio_like(), BackendProfile{}, costs);
  EXPECT_LT(t_nv, t_amd);
  EXPECT_LT(t_nv, t_intel);
}

}  // namespace
}  // namespace mcmm::gpusim
