// Robustness/property tests of the simulator under stress: multiple
// queues, exhaustion-and-recovery, fault injection surfacing through the
// model embeddings, and timeline independence.

#include <gtest/gtest.h>

#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/error.hpp"
#include "models/syclx/syclx.hpp"

namespace mcmm::gpusim {
namespace {

TEST(Robustness, QueuesHaveIndependentTimelines) {
  Device dev(tiny_test_device(1 << 20));
  auto q1 = dev.create_queue();
  auto q2 = dev.create_queue();
  KernelCosts costs;
  costs.bytes_read = 1e8;
  q1->launch(launch_1d(64, 64), costs, [](const WorkItem&) {});
  EXPECT_GT(q1->simulated_time_us(), 0.0);
  EXPECT_DOUBLE_EQ(q2->simulated_time_us(), 0.0);
  q2->launch(launch_1d(64, 64), costs, [](const WorkItem&) {});
  EXPECT_DOUBLE_EQ(q1->simulated_time_us(), q2->simulated_time_us());
}

TEST(Robustness, ProfilesArePerQueue) {
  Device dev(tiny_test_device(1 << 20));
  auto fast = dev.create_queue();
  auto slow = dev.create_queue();
  BackendProfile derated;
  derated.bandwidth_efficiency = 0.5;
  slow->set_backend_profile(derated);
  KernelCosts costs;
  costs.bytes_read = 1e9;
  const Event ef = fast->launch(launch_1d(1, 1), costs, [](const WorkItem&) {});
  const Event es = slow->launch(launch_1d(1, 1), costs, [](const WorkItem&) {});
  EXPECT_GT(es.duration_us(), 1.5 * ef.duration_us());
}

TEST(Robustness, ExhaustionAndRecovery) {
  Device dev(tiny_test_device(1024));
  std::vector<void*> held;
  // Exhaust.
  for (;;) {
    try {
      held.push_back(dev.allocate(128));
    } catch (const OutOfMemory&) {
      break;
    }
  }
  EXPECT_EQ(held.size(), 8u);
  // Recover.
  dev.deallocate(held.back());
  held.pop_back();
  void* again = dev.allocate(128);
  dev.deallocate(again);
  for (void* p : held) dev.deallocate(p);
  EXPECT_EQ(dev.allocator().used_bytes(), 0u);
}

TEST(Robustness, FaultInjectionSurfacesThroughModelEmbeddings) {
  // An injected allocation fault on the Intel device must surface as a
  // failure in the SYCL embedding — exercising the error path a real
  // application would hit.
  Device& intel = Platform::instance().device(Vendor::Intel);
  intel.allocator().set_fault_plan(FaultPlan{0});
  syclx::queue q(Vendor::Intel, syclx::Implementation::DPCpp);
  EXPECT_THROW((void)q.malloc_device<double>(16), OutOfMemory);
  // One-shot: the embedding recovers on the next call.
  double* p = q.malloc_device<double>(16);
  ASSERT_NE(p, nullptr);
  q.free(p);
}

TEST(Robustness, ManyQueuesOnOneDevice) {
  Device dev(tiny_test_device(1 << 22));
  std::vector<std::unique_ptr<Queue>> queues;
  for (int i = 0; i < 32; ++i) queues.push_back(dev.create_queue());
  auto* data = static_cast<int*>(dev.allocate(1024 * sizeof(int)));
  for (std::size_t qi = 0; qi < queues.size(); ++qi) {
    queues[qi]->launch(launch_1d(1024, 128), KernelCosts{},
                       [data, qi](const WorkItem& item) {
                         const std::size_t i = item.global_x();
                         if (i < 1024 && i % 32 == qi) {
                           data[i] = static_cast<int>(qi);
                         }
                       });
  }
  std::vector<int> host(1024);
  dev.default_queue().memcpy(host.data(), data, 1024 * sizeof(int),
                             CopyKind::DeviceToHost);
  for (std::size_t i = 0; i < 1024; ++i) {
    ASSERT_EQ(host[i], static_cast<int>(i % 32));
  }
  dev.deallocate(data);
}

TEST(Robustness, KernelExceptionDoesNotPoisonDevice) {
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  EXPECT_THROW(q.launch(launch_1d(1024, 128), KernelCosts{},
                        [](const WorkItem& item) {
                          if (item.global_linear == 500) {
                            throw SimError("kernel assert");
                          }
                        }),
               SimError);
  // The device and queue remain usable.
  int flag = 0;
  q.launch(launch_1d(1, 1), KernelCosts{},
           [&flag](const WorkItem&) { flag = 1; });
  EXPECT_EQ(flag, 1);
}

TEST(Robustness, RepeatedAllocateFreeCyclesAreStable) {
  Device dev(tiny_test_device(1 << 20));
  for (int round = 0; round < 500; ++round) {
    void* p = dev.allocate(512);
    dev.deallocate(p);
  }
  EXPECT_EQ(dev.allocator().used_bytes(), 0u);
  EXPECT_EQ(dev.allocator().peak_bytes(), 512u);
}

TEST(Robustness, LargeGridLaunches) {
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  // 1M threads across 4096 blocks; sanity-check coverage at scale.
  std::atomic<std::uint64_t> count{0};
  q.launch(launch_1d(1u << 20, 256), KernelCosts{},
           [&count](const WorkItem&) {
             count.fetch_add(1, std::memory_order_relaxed);
           });
  EXPECT_EQ(count.load(), 1u << 20);
}

}  // namespace
}  // namespace mcmm::gpusim
