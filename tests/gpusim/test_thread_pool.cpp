#include "gpusim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mcmm::gpusim {
namespace {

TEST(ThreadPool, HasAtLeastTwoWorkers) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 2u);
}

TEST(ThreadPool, ExplicitWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPool, CoversWholeRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::uint64_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for_chunks(n, [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_chunks(0, [&](std::uint64_t, std::uint64_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleItemRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for_chunks(1, [&](std::uint64_t b, std::uint64_t e) {
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 1u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, SumReduction) {
  ThreadPool pool(4);
  constexpr std::uint64_t n = 1 << 16;
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for_chunks(n, [&](std::uint64_t b, std::uint64_t e) {
    std::uint64_t local = 0;
    for (std::uint64_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for_chunks(100,
                               [](std::uint64_t b, std::uint64_t) {
                                 if (b == 0) {
                                   throw std::runtime_error("chunk failed");
                                 }
                               }),
      std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_chunks(
                   100,
                   [](std::uint64_t, std::uint64_t) {
                     throw std::runtime_error("fail");
                   }),
               std::runtime_error);
  // The pool must still work afterwards, with no stale error.
  std::atomic<int> count{0};
  pool.parallel_for_chunks(100, [&](std::uint64_t b, std::uint64_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ManyConsecutiveBatches) {
  ThreadPool pool(3);
  std::uint64_t total = 0;
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for_chunks(500, [&](std::uint64_t b, std::uint64_t e) {
      sum.fetch_add(e - b);
    });
    total += sum.load();
  }
  EXPECT_EQ(total, 200u * 500u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

// Partition property: every chunk handed to the body must be non-empty,
// and together the chunks must tile [0, n) exactly. Probes the edge cases
// around the worker count, where the seed partitioner produced degenerate
// empty chunks (begin >= end) that it silently skipped.
TEST(ThreadPool, PartitionCoversExactlyWithNoEmptyChunks) {
  ThreadPool pool(4);
  const std::uint64_t w = pool.worker_count() + 1;  // submitter participates
  const std::uint64_t sizes[] = {0, 1, w - 1, w, w + 1, 104729};
  for (const Schedule schedule : {Schedule::Static, Schedule::Dynamic}) {
    for (const std::uint64_t grain :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{7}}) {
      for (const std::uint64_t n : sizes) {
        std::vector<std::atomic<int>> hits(n);
        std::atomic<int> empty_chunks{0};
        std::atomic<std::uint64_t> chunk_items{0};
        pool.parallel_for_chunks(
            n,
            [&](std::uint64_t b, std::uint64_t e) {
              if (b >= e || e > n) empty_chunks.fetch_add(1);
              chunk_items.fetch_add(e - b);
              for (std::uint64_t i = b; i < e; ++i) hits[i].fetch_add(1);
            },
            schedule, grain);
        EXPECT_EQ(empty_chunks.load(), 0)
            << "n=" << n << " schedule=" << static_cast<int>(schedule)
            << " grain=" << grain;
        EXPECT_EQ(chunk_items.load(), n)
            << "n=" << n << " schedule=" << static_cast<int>(schedule)
            << " grain=" << grain;
        for (std::uint64_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "n=" << n << " schedule=" << static_cast<int>(schedule)
              << " grain=" << grain << " index " << i;
        }
      }
    }
  }
}

TEST(ThreadPool, StaticChunksAreBalancedWithinOne) {
  // Static partition: chunk sizes may differ by at most one item.
  ThreadPool pool(4);
  for (const std::uint64_t n : {5ull, 6ull, 100ull, 101ull, 9973ull}) {
    std::atomic<std::uint64_t> min_size{~0ull};
    std::atomic<std::uint64_t> max_size{0};
    pool.parallel_for_chunks(n, [&](std::uint64_t b, std::uint64_t e) {
      const std::uint64_t size = e - b;
      std::uint64_t cur = min_size.load();
      while (size < cur && !min_size.compare_exchange_weak(cur, size)) {
      }
      cur = max_size.load();
      while (size > cur && !max_size.compare_exchange_weak(cur, size)) {
      }
    });
    EXPECT_LE(max_size.load() - min_size.load(), 1u) << "n=" << n;
  }
}

}  // namespace
}  // namespace mcmm::gpusim
