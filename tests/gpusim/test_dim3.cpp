#include "gpusim/dim3.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

namespace mcmm::gpusim {
namespace {

TEST(Dim3, VolumeDefaultsToOne) {
  EXPECT_EQ(Dim3{}.volume(), 1u);
  EXPECT_EQ((Dim3{4, 3, 2}).volume(), 24u);
}

TEST(Dim3, Launch1dCoversN) {
  for (const std::uint64_t n : {1ull, 255ull, 256ull, 257ull, 100000ull}) {
    const LaunchConfig cfg = launch_1d(n, 256);
    EXPECT_GE(cfg.total_threads(), n) << n;
    EXPECT_LT(cfg.total_threads(), n + 256) << n;
  }
}

TEST(Dim3, Launch1dZeroItemsStillHasOneBlock) {
  const LaunchConfig cfg = launch_1d(0, 128);
  EXPECT_EQ(cfg.grid.x, 1u);
  EXPECT_EQ(cfg.total_threads(), 128u);
}

TEST(Dim3, WorkItemFromLinearIsBijective) {
  LaunchConfig cfg;
  cfg.grid = {3, 2, 4};
  cfg.block = {5, 2, 3};
  std::set<std::tuple<unsigned, unsigned, unsigned, unsigned, unsigned,
                      unsigned>>
      seen;
  for (std::uint64_t i = 0; i < cfg.total_threads(); ++i) {
    const WorkItem w = work_item_from_linear(cfg, i);
    EXPECT_EQ(w.global_linear, i);
    EXPECT_LT(w.block_idx.x, cfg.grid.x);
    EXPECT_LT(w.block_idx.y, cfg.grid.y);
    EXPECT_LT(w.block_idx.z, cfg.grid.z);
    EXPECT_LT(w.thread_idx.x, cfg.block.x);
    EXPECT_LT(w.thread_idx.y, cfg.block.y);
    EXPECT_LT(w.thread_idx.z, cfg.block.z);
    EXPECT_TRUE(seen.insert({w.block_idx.x, w.block_idx.y, w.block_idx.z,
                             w.thread_idx.x, w.thread_idx.y, w.thread_idx.z})
                    .second);
  }
  EXPECT_EQ(seen.size(), cfg.total_threads());
}

TEST(Dim3, GlobalXMatchesCudaConvention) {
  LaunchConfig cfg;
  cfg.grid = {4, 1, 1};
  cfg.block = {32, 1, 1};
  // Work item 70 = block 2, thread 6 -> global x = 2*32+6 = 70.
  const WorkItem w = work_item_from_linear(cfg, 70);
  EXPECT_EQ(w.block_idx.x, 2u);
  EXPECT_EQ(w.thread_idx.x, 6u);
  EXPECT_EQ(w.global_x(), 70u);
}

TEST(Dim3, IncrementalAdvanceMatchesLinearDecomposition) {
  // first_work_item + repeated advance_work_item must walk the exact same
  // sequence as decomposing every linear index from scratch — this is what
  // lets the dispatch loop drop the per-element div/mod.
  LaunchConfig cfg;
  cfg.grid = {3, 2, 4};
  cfg.block = {5, 2, 3};
  WorkItem w = first_work_item(cfg);
  for (std::uint64_t i = 0; i < cfg.total_threads(); ++i) {
    const WorkItem ref = work_item_from_linear(cfg, i);
    ASSERT_EQ(w.global_linear, ref.global_linear) << "i=" << i;
    ASSERT_EQ(w.block_idx, ref.block_idx) << "i=" << i;
    ASSERT_EQ(w.thread_idx, ref.thread_idx) << "i=" << i;
    ASSERT_EQ(w.grid_dim, ref.grid_dim) << "i=" << i;
    ASSERT_EQ(w.block_dim, ref.block_dim) << "i=" << i;
    if (i + 1 < cfg.total_threads()) advance_work_item(cfg, w);
  }
}

TEST(Dim3, AdvanceFromMidRangeMatchesLinearDecomposition) {
  // Chunked dispatch seeds a chunk at an arbitrary begin index and then
  // advances; the walk must agree with from-scratch decomposition.
  LaunchConfig cfg;
  cfg.grid = {2, 3, 1};
  cfg.block = {4, 1, 2};
  const std::uint64_t begin = cfg.total_threads() / 3;
  WorkItem w = work_item_from_linear(cfg, begin);
  for (std::uint64_t i = begin; i < cfg.total_threads(); ++i) {
    const WorkItem ref = work_item_from_linear(cfg, i);
    ASSERT_EQ(w.global_linear, ref.global_linear) << "i=" << i;
    ASSERT_EQ(w.block_idx, ref.block_idx) << "i=" << i;
    ASSERT_EQ(w.thread_idx, ref.thread_idx) << "i=" << i;
    if (i + 1 < cfg.total_threads()) advance_work_item(cfg, w);
  }
}

TEST(Dim3, GridAndBlockDimsArePropagated) {
  LaunchConfig cfg;
  cfg.grid = {7, 3, 1};
  cfg.block = {16, 4, 1};
  const WorkItem w = work_item_from_linear(cfg, 0);
  EXPECT_EQ(w.grid_dim, cfg.grid);
  EXPECT_EQ(w.block_dim, cfg.block);
}

}  // namespace
}  // namespace mcmm::gpusim
