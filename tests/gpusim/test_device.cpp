#include "gpusim/device.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gpusim/error.hpp"

namespace mcmm::gpusim {
namespace {

TEST(Descriptor, PresetsMatchVendors) {
  EXPECT_EQ(mi250x_like().vendor, Vendor::AMD);
  EXPECT_EQ(ponte_vecchio_like().vendor, Vendor::Intel);
  EXPECT_EQ(h100_like().vendor, Vendor::NVIDIA);
  for (const Vendor v : kAllVendors) {
    EXPECT_EQ(descriptor_for(v).vendor, v);
  }
}

TEST(Descriptor, PlausibleRelativeMagnitudes) {
  // H100-class memory bandwidth exceeds the one-GCD MI250X and PVC values.
  EXPECT_GT(h100_like().mem_bandwidth_gbps, mi250x_like().mem_bandwidth_gbps);
  // AMD wavefronts are 64 wide; the others use 32.
  EXPECT_EQ(mi250x_like().warp_size, 64u);
  EXPECT_EQ(h100_like().warp_size, 32u);
  for (const Vendor v : kAllVendors) {
    const DeviceDescriptor d = descriptor_for(v);
    EXPECT_GT(d.memory_bytes, 0u);
    EXPECT_GT(d.mem_bandwidth_gbps, d.pcie_bandwidth_gbps);
    EXPECT_GT(d.kernel_launch_latency_us, 0.0);
  }
}

TEST(Device, AllocateTracksPointers) {
  Device dev(tiny_test_device(1 << 20));
  void* p = dev.allocate(1024);
  EXPECT_TRUE(dev.is_device_pointer(p));
  int host = 0;
  EXPECT_FALSE(dev.is_device_pointer(&host));
  dev.deallocate(p);
  EXPECT_FALSE(dev.is_device_pointer(p));
}

TEST(Device, PlatformHasOneDevicePerVendor) {
  Platform& platform = Platform::instance();
  for (const Vendor v : kAllVendors) {
    EXPECT_EQ(platform.device(v).vendor(), v);
    // Stable identity across calls.
    EXPECT_EQ(&platform.device(v), &platform.device(v));
  }
}

TEST(Queue, MemcpyRoundTrip) {
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  std::vector<double> host(256);
  std::iota(host.begin(), host.end(), 0.0);
  auto* d = static_cast<double*>(dev.allocate(256 * sizeof(double)));
  q.memcpy(d, host.data(), 256 * sizeof(double), CopyKind::HostToDevice);
  std::vector<double> back(256, -1.0);
  q.memcpy(back.data(), d, 256 * sizeof(double), CopyKind::DeviceToHost);
  EXPECT_EQ(back, host);
  dev.deallocate(d);
}

TEST(Queue, MemcpyValidatesDirections) {
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  std::vector<char> host(64);
  auto* d1 = static_cast<char*>(dev.allocate(64));
  auto* d2 = static_cast<char*>(dev.allocate(64));
  // H2D with device source is invalid.
  EXPECT_THROW(q.memcpy(d1, d2, 64, CopyKind::HostToDevice), InvalidPointer);
  // D2H with device destination is invalid.
  EXPECT_THROW(q.memcpy(d1, d2, 64, CopyKind::DeviceToHost), InvalidPointer);
  // H2D into host memory is invalid.
  EXPECT_THROW(q.memcpy(host.data(), host.data(), 64, CopyKind::HostToDevice),
               InvalidPointer);
  // D2D between device blocks is fine.
  EXPECT_NO_THROW(q.memcpy(d1, d2, 64, CopyKind::DeviceToDevice));
  dev.deallocate(d1);
  dev.deallocate(d2);
}

TEST(Queue, MemcpyRejectsOverrun) {
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  std::vector<char> host(128);
  auto* d = static_cast<char*>(dev.allocate(64));
  EXPECT_THROW(q.memcpy(d, host.data(), 128, CopyKind::HostToDevice),
               InvalidPointer);
  dev.deallocate(d);
}

TEST(Queue, MemsetWritesDeviceMemory) {
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  auto* d = static_cast<unsigned char*>(dev.allocate(64));
  q.memset(d, 0xAB, 64);
  std::vector<unsigned char> back(64);
  q.memcpy(back.data(), d, 64, CopyKind::DeviceToHost);
  for (const unsigned char c : back) EXPECT_EQ(c, 0xAB);
  dev.deallocate(d);
}

TEST(Queue, LaunchRunsEveryWorkItem) {
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  constexpr std::uint64_t n = 10000;
  auto* d = static_cast<int*>(dev.allocate(n * sizeof(int)));
  q.memset(d, 0, n * sizeof(int));
  const LaunchConfig cfg = launch_1d(n, 256);
  q.launch(cfg, KernelCosts{}, [d, n](const WorkItem& item) {
    const std::uint64_t i = item.global_x();
    if (i < n) d[i] = static_cast<int>(i);
  });
  std::vector<int> back(n);
  q.memcpy(back.data(), d, n * sizeof(int), CopyKind::DeviceToHost);
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(back[i], static_cast<int>(i));
  }
  dev.deallocate(d);
}

TEST(Queue, Launch3dCoordinatesConsistent) {
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  LaunchConfig cfg;
  cfg.grid = {3, 2, 2};
  cfg.block = {4, 2, 1};
  std::vector<std::atomic<int>> hits(cfg.total_threads());
  q.launch(cfg, KernelCosts{}, [&](const WorkItem& item) {
    // Every coordinate must be within bounds.
    ASSERT_LT(item.block_idx.x, cfg.grid.x);
    ASSERT_LT(item.block_idx.y, cfg.grid.y);
    ASSERT_LT(item.block_idx.z, cfg.grid.z);
    ASSERT_LT(item.thread_idx.x, cfg.block.x);
    ASSERT_LT(item.thread_idx.y, cfg.block.y);
    ASSERT_LT(item.thread_idx.z, cfg.block.z);
    hits[item.global_linear].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Queue, LaunchValidatesBlockLimit) {
  Device dev(tiny_test_device(1 << 20));
  LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {2048, 1, 1};  // over the 1024 limit
  EXPECT_THROW(
      dev.default_queue().launch(cfg, KernelCosts{}, [](const WorkItem&) {}),
      InvalidLaunch);
}

TEST(Queue, LaunchRejectsEmptyConfig) {
  Device dev(tiny_test_device(1 << 20));
  LaunchConfig cfg;
  cfg.grid = {0, 1, 1};
  cfg.block = {32, 1, 1};
  EXPECT_THROW(
      dev.default_queue().launch(cfg, KernelCosts{}, [](const WorkItem&) {}),
      InvalidLaunch);
}

TEST(Queue, SimulatedClockAdvances) {
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  const double t0 = q.simulated_time_us();
  KernelCosts costs;
  costs.bytes_read = 1e9;  // 1 GB read
  const Event e =
      q.launch(launch_1d(1, 1), costs, [](const WorkItem&) {});
  EXPECT_GT(e.duration_us(), 0.0);
  EXPECT_GT(q.simulated_time_us(), t0);
  EXPECT_DOUBLE_EQ(q.simulated_time_us(), e.sim_end_us);
}

TEST(Queue, EventsAreOrderedAlongTheTimeline) {
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  const Event a = q.launch(launch_1d(16, 16), KernelCosts{},
                           [](const WorkItem&) {});
  const Event b = q.launch(launch_1d(16, 16), KernelCosts{},
                           [](const WorkItem&) {});
  EXPECT_GE(b.sim_begin_us, a.sim_end_us);
  const Event now = q.record();
  EXPECT_DOUBLE_EQ(now.sim_begin_us, q.simulated_time_us());
}

}  // namespace
}  // namespace mcmm::gpusim
