// Tests of the fork-join execution engine rebuilt around per-batch
// descriptors: concurrent submission from several host threads, exception
// isolation between overlapping batches, dynamic self-scheduling, striped
// memcpy/memset, nested submission from worker threads, and the
// allocation-free steady-state launch path.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/error.hpp"
#include "gpusim/thread_pool.hpp"
#include "support/rng.hpp"

// Binary-wide allocation counter: the steady-state launch path must not
// touch the heap (no std::function, no task vectors). Counting in the
// replacement operator new lets a test assert that directly.
namespace {
std::atomic<long>& alloc_count() {
  static std::atomic<long> count{0};
  return count;
}
}  // namespace

// The replacement operators are malloc/free-backed, which is the standard
// idiom for replacing the global allocator — but once the optimizer
// inlines them, GCC pairs the caller's new-expression with the visible
// free() and reports a bogus mismatched-new-delete (seen at -O1 in the
// TSan build).
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  alloc_count().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  alloc_count().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mcmm::gpusim {
namespace {

TEST(Engine, ConcurrentSubmissionFromFourHostThreads) {
  // Four host threads, each with its own queue on its own device, all
  // sharing the global pool. Under the seed engine their batches would
  // interleave tasks_/remaining_; per-batch descriptors isolate them.
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  constexpr std::uint64_t n = 10000;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&failures] {
      Device dev(tiny_test_device(1 << 20));
      Queue& q = dev.default_queue();
      auto* d = static_cast<std::uint32_t*>(
          dev.allocate(n * sizeof(std::uint32_t)));
      for (int round = 0; round < kRounds; ++round) {
        q.launch(launch_1d(n, 128), KernelCosts{},
                 [d](const WorkItem& item) {
                   const std::uint64_t i = item.global_x();
                   if (i < n) d[i] = static_cast<std::uint32_t>(i * 3 + 1);
                 });
        for (std::uint64_t i = 0; i < n; ++i) {
          if (d[i] != i * 3 + 1) {
            failures.fetch_add(1);
            break;
          }
        }
      }
      dev.deallocate(d);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Engine, ConcurrentThrowingBatchDoesNotPoisonOthers) {
  // One thread repeatedly submits batches whose chunks all throw; another
  // runs correct batches on the shared pool at the same time. Errors must
  // land exactly once at the throwing submitter and never leak across.
  constexpr int kRounds = 100;
  std::atomic<int> caught{0};
  std::atomic<int> wrong_results{0};
  std::atomic<bool> cross_contamination{false};
  std::thread thrower([&] {
    for (int round = 0; round < kRounds; ++round) {
      int exceptions_this_round = 0;
      try {
        ThreadPool::global().parallel_for_chunks(
            1000, [](std::uint64_t, std::uint64_t) {
              throw std::runtime_error("batch failure");
            });
      } catch (const std::runtime_error&) {
        ++exceptions_this_round;
      }
      if (exceptions_this_round != 1) cross_contamination.store(true);
      caught.fetch_add(exceptions_this_round);
    }
  });
  std::thread worker([&] {
    for (int round = 0; round < kRounds; ++round) {
      std::atomic<std::uint64_t> sum{0};
      try {
        ThreadPool::global().parallel_for_chunks(
            5000, [&](std::uint64_t b, std::uint64_t e) {
              std::uint64_t local = 0;
              for (std::uint64_t i = b; i < e; ++i) local += i;
              sum.fetch_add(local);
            });
      } catch (...) {
        cross_contamination.store(true);
      }
      if (sum.load() != 5000ull * 4999ull / 2) wrong_results.fetch_add(1);
    }
  });
  thrower.join();
  worker.join();
  EXPECT_EQ(caught.load(), kRounds);      // exactly once per throwing batch
  EXPECT_EQ(wrong_results.load(), 0);     // clean batches unaffected
  EXPECT_FALSE(cross_contamination.load());
  // The shared pool must remain fully usable afterwards.
  std::atomic<int> count{0};
  ThreadPool::global().parallel_for_chunks(
      100, [&](std::uint64_t b, std::uint64_t e) {
        count.fetch_add(static_cast<int>(e - b));
      });
  EXPECT_EQ(count.load(), 100);
}

TEST(Engine, ThrowingChunkRethrowsExactlyOnceEvenWhenAllChunksThrow) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    int caught = 0;
    try {
      pool.parallel_for_chunks(1000, [](std::uint64_t, std::uint64_t) {
        throw std::runtime_error("every chunk throws");
      });
    } catch (const std::runtime_error&) {
      ++caught;
    }
    ASSERT_EQ(caught, 1) << "round " << round;
  }
}

TEST(Engine, DynamicScheduleCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  for (const std::uint64_t grain : {std::uint64_t{0}, std::uint64_t{1},
                                    std::uint64_t{3}, std::uint64_t{1000}}) {
    constexpr std::uint64_t n = 104729;  // large prime
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for_chunks(
        n,
        [&](std::uint64_t b, std::uint64_t e) {
          ASSERT_LT(b, e) << "empty chunk handed out";
          for (std::uint64_t i = b; i < e; ++i) hits[i].fetch_add(1);
        },
        Schedule::Dynamic, grain);
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "grain " << grain << " index " << i;
    }
  }
}

TEST(Engine, DynamicScheduleBalancesFatWorkItems) {
  // 8 work items, one of which is ~64x the weight of the rest: dynamic
  // grabbing must still produce the exact result (balance is a perf
  // property; correctness under uneven chunk runtimes is what we pin).
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  pool.parallel_for_chunks(
      8,
      [&](std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i) {
          const std::uint64_t reps = i == 0 ? 1 << 18 : 1 << 12;
          std::uint64_t acc = 0;
          for (std::uint64_t r = 0; r < reps; ++r) acc += r % 7;
          total.fetch_add(acc / (acc + 1) + 1);  // data-dependent, == 1
        }
      },
      Schedule::Dynamic, 1);
  EXPECT_EQ(total.load(), 8u);
}

TEST(Engine, NestedSubmissionFromWorkerThreadsCompletes) {
  // A kernel body that itself submits to the same pool. The submitter
  // always participates in its own batch, so nesting cannot deadlock even
  // with every worker busy (the seed engine could not guarantee this).
  ThreadPool pool(2);
  std::atomic<std::uint64_t> total{0};
  pool.parallel_for_chunks(4, [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) {
      std::atomic<std::uint64_t> inner{0};
      pool.parallel_for_chunks(1000, [&](std::uint64_t ib, std::uint64_t ie) {
        inner.fetch_add(ie - ib);
      });
      total.fetch_add(inner.load());
    }
  });
  EXPECT_EQ(total.load(), 4000u);
}

TEST(Engine, StripedMemcpyAndMemsetMatchSerial) {
  // Correctness of the chunked copy/fill paths, exercised directly through
  // the pool (the Queue enables them only on multi-core hosts).
  ThreadPool pool(4);
  constexpr std::size_t bytes = (std::size_t{1} << 22) + 12345;
  std::vector<unsigned char> src(bytes);
  mcmm::testing::rng r(131);
  for (std::size_t i = 0; i < bytes; ++i) {
    src[i] = static_cast<unsigned char>(r.next());
  }
  std::vector<unsigned char> dst(bytes, 0);
  pool.parallel_for_chunks(bytes, [&](std::uint64_t b, std::uint64_t e) {
    std::memcpy(dst.data() + b, src.data() + b, e - b);
  });
  EXPECT_EQ(dst, src);
  pool.parallel_for_chunks(bytes, [&](std::uint64_t b, std::uint64_t e) {
    std::memset(dst.data() + b, 0x5a, e - b);
  });
  EXPECT_EQ(std::count(dst.begin(), dst.end(), 0x5a),
            static_cast<std::ptrdiff_t>(bytes));
}

TEST(Engine, QueueLevelLargeMemcpyMemsetRoundTrip) {
  // End-to-end through the Queue (takes the striped path on multi-core
  // hosts, the serial path elsewhere — the result must be identical).
  constexpr std::size_t n = (std::size_t{1} << 20) + 333;  // > 4 MiB of u64
  Device dev(tiny_test_device(64u << 20));
  Queue& q = dev.default_queue();
  auto* d = static_cast<std::uint64_t*>(
      dev.allocate(n * sizeof(std::uint64_t)));
  std::vector<std::uint64_t> host(n);
  std::iota(host.begin(), host.end(), 42);
  q.memcpy(d, host.data(), n * sizeof(std::uint64_t),
           CopyKind::HostToDevice);
  q.memset(d + n / 2, 0, (n - n / 2) * sizeof(std::uint64_t));
  std::vector<std::uint64_t> back(n);
  q.memcpy(back.data(), d, n * sizeof(std::uint64_t),
           CopyKind::DeviceToHost);
  for (std::size_t i = 0; i < n / 2; ++i) {
    ASSERT_EQ(back[i], host[i]) << "index " << i;
  }
  for (std::size_t i = n / 2; i < n; ++i) {
    ASSERT_EQ(back[i], 0u) << "index " << i;
  }
  dev.deallocate(d);
}

TEST(Engine, SteadyStateLaunchDoesNotAllocate) {
  // The dispatch path must construct no std::function and take no heap
  // allocation: body -> stack thunk -> per-batch stack descriptor.
  Device dev(tiny_test_device(1 << 20));
  Queue& q = dev.default_queue();
  constexpr std::uint64_t n = 4096;
  auto* d = static_cast<double*>(dev.allocate(n * sizeof(double)));
  const auto body = [d](const WorkItem& item) {
    const std::uint64_t i = item.global_x();
    if (i < n) d[i] = static_cast<double>(i) * 1.5;
  };
  // Warm up (first launches may fault in stacks, lazily init TLS, ...).
  for (int i = 0; i < 3; ++i) q.launch(launch_1d(n, 256), KernelCosts{}, body);
  const long before = alloc_count().load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    q.launch(launch_1d(n, 256), KernelCosts{}, body);
    q.launch(launch_1d(1, 1), KernelCosts{}, body);
    q.launch(launch_1d(n, 256), KernelCosts{}, body,
             LaunchPolicy{Schedule::Dynamic, 0});
  }
  const long after = alloc_count().load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "kernel dispatch allocated on the steady path";
  dev.deallocate(d);
}

TEST(Engine, LaunchPolicyDoesNotChangeSimulatedTime) {
  Device dev(tiny_test_device(1 << 20));
  Queue& q_static = dev.default_queue();
  auto q_dynamic = dev.create_queue();
  KernelCosts costs;
  costs.bytes_read = 1e6;
  costs.bytes_written = 1e6;
  const Event a = q_static.launch(launch_1d(10000, 256), costs,
                                  [](const WorkItem&) {});
  const Event b = q_dynamic->launch(launch_1d(10000, 256), costs,
                                    [](const WorkItem&) {},
                                    LaunchPolicy{Schedule::Dynamic, 1});
  EXPECT_EQ(a.duration_us(), b.duration_us());
}

}  // namespace
}  // namespace mcmm::gpusim
