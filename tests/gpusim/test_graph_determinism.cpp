// Graph-replay determinism regression test: the device results and final
// simulated clock of a captured-and-replayed kernel graph must be
// BIT-identical across MCMM_NUM_THREADS = 1, 4, and
// hardware_concurrency, for both Static and Dynamic launch schedules —
// and identical to the eager submission of the same workload. The worker
// count is pinned per process (the pool is a process-wide singleton), so
// the cross-thread-count leg re-executes this binary via /proc/self/exe
// with `--emit-fingerprint`, which prints every double as raw IEEE-754
// bits.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/graph.hpp"

namespace {

using mcmm::Vendor;
using mcmm::gpusim::CopyKind;
using mcmm::gpusim::Device;
using mcmm::gpusim::ExecutableGraph;
using mcmm::gpusim::Graph;
using mcmm::gpusim::KernelCosts;
using mcmm::gpusim::LaunchPolicy;
using mcmm::gpusim::Queue;
using mcmm::gpusim::Schedule;
using mcmm::gpusim::WorkItem;
using mcmm::gpusim::launch_1d;

/// Hex bit pattern of a double: bit-identical comparison, immune to
/// printf rounding.
std::string bits(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(u));
  return buffer;
}

/// Submits the workload: init, then per rep a scaled triad, a
/// reduction into per-chunk partials (fixed chunk count, so the combine
/// order is pool-size-invariant), and a serial combine.
void submit(Queue& q, double* a, double* b, double* partials,
            std::uint64_t n, Schedule schedule) {
  constexpr std::uint64_t kChunks = 64;
  const std::uint64_t chunk = n / kChunks;
  KernelCosts costs;
  costs.bytes_read = 2.0 * static_cast<double>(n) * sizeof(double);
  costs.bytes_written = static_cast<double>(n) * sizeof(double);
  costs.flops = 2.0 * static_cast<double>(n);
  const LaunchPolicy policy{schedule, 0};
  q.launch(launch_1d(n, 256), costs, [a, b](const WorkItem& it) {
    const std::size_t i = it.global_x();
    a[i] = 0.001 * static_cast<double>(i % 97);
    b[i] = 1.0;
  });
  for (int rep = 0; rep < 3; ++rep) {
    q.launch(
        launch_1d(n, 256), costs,
        [a, b](const WorkItem& it) {
          const std::size_t i = it.global_x();
          b[i] = a[i] + 0.4 * b[i];
        },
        policy);
    q.launch(
        launch_1d(kChunks, 64), costs,
        [b, partials, chunk](const WorkItem& it) {
          const std::size_t c = it.global_x();
          double sum = 0.0;
          for (std::uint64_t i = c * chunk; i < (c + 1) * chunk; ++i) {
            sum += b[i];
          }
          partials[c] = sum;
        },
        policy);
    q.launch(launch_1d(1, 1), KernelCosts{},
             [a, partials](const WorkItem&) {
               double sum = 0.0;
               for (std::uint64_t c = 0; c < kChunks; ++c) {
                 sum += partials[c];
               }
               a[0] = sum;
             });
  }
}

/// One run on a fresh device: eager or captured-from-clock-0 and
/// replayed once. Returns "<sim bits> <a0 bits> <head bits...>".
std::string run_once(Schedule schedule, bool graphed) {
  constexpr std::uint64_t n = 1 << 16;
  Device dev(mcmm::gpusim::tiny_test_device(std::size_t{8} << 20));
  Queue& q = dev.default_queue();
  auto* a = static_cast<double*>(dev.allocate(n * sizeof(double)));
  auto* b = static_cast<double*>(dev.allocate(n * sizeof(double)));
  auto* partials = static_cast<double*>(dev.allocate(64 * sizeof(double)));
  if (graphed) {
    Graph graph;
    q.begin_capture(graph);
    submit(q, a, b, partials, n, schedule);
    (void)q.end_capture();
    ExecutableGraph exec(graph, q);
    (void)exec.replay(q);
  } else {
    submit(q, a, b, partials, n, schedule);
  }
  std::ostringstream out;
  out << bits(q.simulated_time_us());
  std::vector<double> h(16);
  q.memcpy(h.data(), a, 16 * sizeof(double), CopyKind::DeviceToHost);
  for (const double x : h) out << ' ' << bits(x);
  std::vector<double> hb(16);
  q.memcpy(hb.data(), b, 16 * sizeof(double), CopyKind::DeviceToHost);
  for (const double x : hb) out << ' ' << bits(x);
  dev.deallocate(partials);
  dev.deallocate(b);
  dev.deallocate(a);
  return out.str();
}

/// Child mode: one fingerprint line per (schedule, path) leg. Replay
/// legs must already match their eager legs inside the child; the parent
/// then compares whole fingerprints across worker counts.
int emit_fingerprint() {
  int rc = 0;
  for (const Schedule s : {Schedule::Static, Schedule::Dynamic}) {
    const std::string eager = run_once(s, false);
    const std::string replay = run_once(s, true);
    if (eager != replay) rc = 1;
    std::printf("eager %d %s\n", static_cast<int>(s), eager.c_str());
    std::printf("replay %d %s\n", static_cast<int>(s), replay.c_str());
  }
  return rc;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// This binary's path, resolved in-process (inside std::system's shell,
/// /proc/self/exe would name the shell).
std::string self_exe() {
  char buffer[4096];
  const ssize_t len =
      ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (len <= 0) return {};
  buffer[len] = '\0';
  return buffer;
}

/// Re-executes this binary with MCMM_NUM_THREADS pinned and returns the
/// child's fingerprint.
std::string fingerprint_with_threads(unsigned threads,
                                     const std::string& tag) {
  const std::string exe = self_exe();
  if (exe.empty()) {
    ADD_FAILURE() << "cannot resolve /proc/self/exe";
    return {};
  }
  const std::string out_path = "graph_determinism_" + tag + ".out";
  const std::string cmd = "MCMM_NUM_THREADS=" + std::to_string(threads) +
                          " '" + exe + "' --emit-fingerprint > '" +
                          out_path + "' 2>/dev/null";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << "child re-exec failed (or replay diverged from "
                      "eager) for "
                   << threads << " threads";
  const std::string fp = read_file(out_path);
  std::remove(out_path.c_str());
  return fp;
}

TEST(GraphDeterminism, ReplayBitIdenticalAcrossWorkerCountsAndSchedules) {
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  const std::string fp1 = fingerprint_with_threads(1, "t1");
  const std::string fp4 = fingerprint_with_threads(4, "t4");
  const std::string fphw = fingerprint_with_threads(hw, "thw");
  ASSERT_FALSE(fp1.empty());
  EXPECT_EQ(fp1, fp4) << "graph replay depends on the worker count";
  EXPECT_EQ(fp1, fphw) << "graph replay depends on the worker count";
}

TEST(GraphDeterminism, BackToBackRunsInOneProcessMatch) {
  for (const Schedule s : {Schedule::Static, Schedule::Dynamic}) {
    const std::string first = run_once(s, true);
    const std::string second = run_once(s, true);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--emit-fingerprint") == 0) {
      return emit_fingerprint();
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
