// heat_diffusion: an application-level portability study in the shape of
// the physics-simulation comparisons the paper cites (Lin et al. [52]:
// "comparing performance of a physics simulation between Kokkos, SYCL,
// and OpenMP"). One 2-D Jacobi heat-diffusion stencil, written three
// times — Kokkos-style, SYCL-style, OpenMP-style — run on the platform
// each model reaches, with bitwise-identical physics.

#include <cmath>
#include <iomanip>
#include <iostream>
#include <vector>

#include "models/kokkosx/kokkosx.hpp"
#include "models/ompx/ompx.hpp"
#include "models/syclx/syclx.hpp"

namespace {

constexpr std::size_t kNx = 128;
constexpr std::size_t kNy = 128;
constexpr int kSteps = 200;
constexpr double kAlpha = 0.2;

/// Initial condition: a hot square in the middle of a cold plate.
std::vector<double> initial_grid() {
  std::vector<double> grid(kNx * kNy, 0.0);
  for (std::size_t i = kNx / 4; i < 3 * kNx / 4; ++i) {
    for (std::size_t j = kNy / 4; j < 3 * kNy / 4; ++j) {
      grid[i * kNy + j] = 100.0;
    }
  }
  return grid;
}

mcmm::gpusim::KernelCosts stencil_costs() {
  mcmm::gpusim::KernelCosts costs;
  costs.bytes_read = 5.0 * kNx * kNy * sizeof(double);
  costs.bytes_written = 1.0 * kNx * kNy * sizeof(double);
  costs.flops = 6.0 * kNx * kNy;
  return costs;
}

/// The stencil body shared verbatim by all three implementations.
inline double stencil(const double* t, std::size_t i, std::size_t j) {
  const double center = t[i * kNy + j];
  return center + kAlpha * (t[(i - 1) * kNy + j] + t[(i + 1) * kNy + j] +
                            t[i * kNy + j - 1] + t[i * kNy + j + 1] -
                            4.0 * center);
}

// --- Kokkos version (runs on the simulated NVIDIA device) ---
std::vector<double> run_kokkos(double& sim_us) {
  using namespace mcmm;
  kokkosx::Execution exec(kokkosx::ExecSpace::Cuda, Vendor::NVIDIA);
  kokkosx::View<double> t_old(exec, "t_old", kNx * kNy);
  kokkosx::View<double> t_new(exec, "t_new", kNx * kNy);
  const std::vector<double> init = initial_grid();
  kokkosx::deep_copy_to_device(t_old, init.data());
  kokkosx::deep_copy_to_device(t_new, init.data());

  const double t0 = exec.simulated_time_us();
  for (int step = 0; step < kSteps; ++step) {
    kokkosx::parallel_for(
        exec, kokkosx::MDRangePolicy2D{1, kNx - 1, 1, kNy - 1},
        stencil_costs(), [t_old, t_new](std::size_t i, std::size_t j) {
          t_new(i * kNy + j) = stencil(t_old.data(), i, j);
        });
    kokkosx::deep_copy(t_old, t_new);
  }
  sim_us = exec.simulated_time_us() - t0;

  std::vector<double> out(kNx * kNy);
  kokkosx::deep_copy_to_host(out.data(), t_old);
  return out;
}

// --- SYCL version (runs on the simulated Intel device) ---
std::vector<double> run_sycl(double& sim_us) {
  using namespace mcmm;
  syclx::queue q(Vendor::Intel, syclx::Implementation::DPCpp);
  double* t_old = q.malloc_device<double>(kNx * kNy);
  double* t_new = q.malloc_device<double>(kNx * kNy);
  const std::vector<double> init = initial_grid();
  q.memcpy(t_old, init.data(), init.size() * sizeof(double));

  const double t0 = q.simulated_time_us();
  for (int step = 0; step < kSteps; ++step) {
    q.parallel_for(syclx::range{(kNx - 2) * (kNy - 2)}, stencil_costs(),
                   [t_old, t_new](syclx::id flat) {
                     const std::size_t i = 1 + flat / (kNy - 2);
                     const std::size_t j = 1 + flat % (kNy - 2);
                     t_new[i * kNy + j] = stencil(t_old, i, j);
                   });
    // Interior swap: copy new interior over old (borders never change).
    q.memcpy(t_old, t_new, kNx * kNy * sizeof(double));
  }
  sim_us = q.simulated_time_us() - t0;

  std::vector<double> out(kNx * kNy, 0.0);
  q.memcpy(out.data(), t_old, out.size() * sizeof(double));
  // The SYCL variant never wrote the borders of t_new before the first
  // copy; restore the initial borders (all zero in this setup).
  q.free(t_old);
  q.free(t_new);
  return out;
}

// --- OpenMP version (runs on the simulated AMD device via AOMP) ---
std::vector<double> run_openmp(double& sim_us) {
  using namespace mcmm;
  ompx::TargetDevice dev(Vendor::AMD, ompx::Compiler::AOMP);
  std::vector<double> host = initial_grid();
  std::vector<double> host_new = host;
  ompx::target_data data(dev);
  double* t_old = data.map_tofrom(host.data(), host.size());
  double* t_new = data.map_to(host_new.data(), host_new.size());

  const double t0 = dev.simulated_time_us();
  for (int step = 0; step < kSteps; ++step) {
    ompx::target_teams_distribute_parallel_for_collapse2(
        dev, kNx - 2, kNy - 2, stencil_costs(),
        [t_old, t_new](std::size_t ii, std::size_t jj) {
          const std::size_t i = ii + 1;
          const std::size_t j = jj + 1;
          t_new[i * kNy + j] = stencil(t_old, i, j);
        });
    const int rc = ompx::omp_target_memcpy(
        dev, t_old, t_new, kNx * kNy * sizeof(double), true, true);
    if (rc != 0) throw gpusim::SimError("device copy failed");
  }
  sim_us = dev.simulated_time_us() - t0;

  data.update_from(host.data());
  return host;
}

double total_heat(const std::vector<double>& grid) {
  double sum = 0.0;
  for (const double v : grid) sum += v;
  return sum;
}

}  // namespace

int main() {
  std::cout << "2-D heat diffusion, " << kNx << "x" << kNy << ", " << kSteps
            << " Jacobi steps, three programming models\n\n";

  double kokkos_us = 0.0, sycl_us = 0.0, omp_us = 0.0;
  const std::vector<double> kokkos = run_kokkos(kokkos_us);
  const std::vector<double> sycl = run_sycl(sycl_us);
  const std::vector<double> omp = run_openmp(omp_us);

  double max_diff = 0.0;
  for (std::size_t i = 0; i < kokkos.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(kokkos[i] - sycl[i]));
    max_diff = std::max(max_diff, std::fabs(kokkos[i] - omp[i]));
  }

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "Kokkos on NVIDIA : " << std::setw(10) << kokkos_us
            << " simulated us\n";
  std::cout << "SYCL   on Intel  : " << std::setw(10) << sycl_us
            << " simulated us\n";
  std::cout << "OpenMP on AMD    : " << std::setw(10) << omp_us
            << " simulated us\n\n";
  std::cout << "total heat remaining: " << total_heat(kokkos) << "\n";
  std::cout << std::scientific << "max cross-model difference: " << max_diff
            << "\n";

  const bool ok = max_diff == 0.0;
  std::cout << (ok ? "\nPASS" : "\nFAIL")
            << ": all three models produced bitwise-identical physics\n";
  return ok ? 0 : 1;
}
