// model_advisor: the paper's purpose as a command-line tool — "it is hard
// for scientific programmers to navigate this abundance of choices"
// (abstract). Give it your language and target platforms; it ranks the
// programming-model routes recorded in Fig. 1.
//
// Usage:
//   model_advisor <language> [platform...] [--vendor-only] [--min <tier>]
//   model_advisor fortran amd intel nvidia
//   model_advisor c++ amd --vendor-only
//   model_advisor c++ --min some

#include <iostream>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "data/dataset.hpp"
#include "render/report.hpp"

int main(int argc, char** argv) {
  using namespace mcmm;

  PlannerQuery query;
  query.minimum_category = SupportCategory::Limited;

  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cout << "usage: model_advisor <c++|fortran|python> [amd] [intel] "
                 "[nvidia] [--vendor-only] [--min "
                 "<full|indirect|some|nonvendor|limited>]\n\n"
                 "Examples:\n"
                 "  model_advisor fortran amd intel nvidia\n"
                 "  model_advisor c++ amd --vendor-only\n";
    // Demo run so the example is self-contained.
    std::cout << "\nDemo: Fortran code that must run on all three "
                 "platforms, vendor-supported:\n\n";
    query.language = Language::Fortran;
    query.must_run_on = {Vendor::AMD, Vendor::Intel, Vendor::NVIDIA};
    query.require_vendor_support = true;
    query.minimum_category = SupportCategory::Some;
    const RoutePlanner planner(data::paper_matrix());
    std::cout << render::plan_report(planner.plan(query));
    return 0;
  }

  const auto language = parse_language(args.front());
  if (!language) {
    std::cerr << "unknown language: " << args.front() << "\n";
    return 2;
  }
  query.language = *language;

  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--vendor-only") {
      query.require_vendor_support = true;
    } else if (args[i] == "--min" && i + 1 < args.size()) {
      const auto tier = parse_category(args[++i]);
      if (!tier) {
        std::cerr << "unknown support tier: " << args[i] << "\n";
        return 2;
      }
      query.minimum_category = *tier;
    } else if (const auto vendor = parse_vendor(args[i])) {
      query.must_run_on.push_back(*vendor);
    } else {
      std::cerr << "unknown argument: " << args[i] << "\n";
      return 2;
    }
  }

  const RoutePlanner planner(data::paper_matrix());
  const auto plans = planner.plan(query);
  std::cout << render::plan_report(plans);
  return plans.empty() ? 1 : 0;
}
