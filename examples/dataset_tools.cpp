// dataset_tools: the author's publication pipeline as an example — export
// the dataset to YAML (the paper's source format), re-import it with
// validation, and emit the HTML and LaTeX artifacts.
//
// Usage: dataset_tools [output-directory]   (default: current directory)

#include <filesystem>
#include <fstream>
#include <iostream>

#include "data/dataset.hpp"
#include "render/render.hpp"
#include "yamlx/matrix_yaml.hpp"

int main(int argc, char** argv) {
  using namespace mcmm;
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : ".";

  const CompatibilityMatrix& matrix = data::paper_matrix();

  const auto write_file = [&](const std::filesystem::path& name,
                              const std::string& content) {
    const std::filesystem::path path = out_dir / name;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      std::exit(1);
    }
    out << content;
    std::cout << "wrote " << path << " (" << content.size() << " bytes)\n";
  };

  // 1. YAML source data.
  const std::string yaml = yamlx::matrix_to_yaml_text(matrix);
  write_file("gpu_compat.yaml", yaml);

  // 2. Round trip: prove the YAML is complete by rebuilding + validating.
  const CompatibilityMatrix rebuilt = yamlx::matrix_from_yaml_text(yaml);
  std::cout << "round trip: " << rebuilt.entry_count() << " cells, "
            << rebuilt.description_count() << " descriptions — validated\n";

  // 3. Rendered artifacts, as in the author's YAML -> HTML/TeX pipeline.
  write_file("figure1.html", render::figure1_html(rebuilt));
  write_file("figure1.tex", render::figure1_latex(rebuilt));
  write_file("figure1.md", render::figure1_markdown(rebuilt));
  write_file("figure1.csv", render::matrix_csv(rebuilt));

  std::cout << "\nOpen figure1.html in a browser for the interactive "
               "table with linked descriptions.\n";
  return 0;
}
