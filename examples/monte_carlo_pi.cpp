// monte_carlo_pi: standard-language parallelism across every platform the
// Standard column of Fig. 1 reaches (items 11, 26, 40). A counter-based
// RNG makes the estimate identical on every route — the "same algorithm,
// pick your vendor" promise of pSTL offloading, including AMD's
// in-development roc-stdpar behind its opt-in gate.

#include <cmath>
#include <iomanip>
#include <iostream>

#include "models/stdparx/stdparx.hpp"

namespace {

/// Counter-based generator (splitmix64): sample i is a pure function of i,
/// so every route draws the same points.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

[[nodiscard]] double to_unit(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

double estimate_pi(const mcmm::stdparx::execution_policy& pol,
                   std::size_t samples) {
  using namespace mcmm;
  stdparx::device_vector<double> hits(pol, samples);
  stdparx::iota(pol, hits.begin(), hits.end(), 0.0);
  stdparx::for_each(pol, hits.begin(), hits.end(), [](double& slot) {
    const auto i = static_cast<std::uint64_t>(slot);
    const double x = to_unit(splitmix64(2 * i));
    const double y = to_unit(splitmix64(2 * i + 1));
    slot = (x * x + y * y <= 1.0) ? 1.0 : 0.0;
  });
  const double inside =
      stdparx::reduce(pol, hits.begin(), hits.end(), 0.0);
  return 4.0 * inside / static_cast<double>(samples);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcmm;
  std::size_t samples = 1 << 20;
  if (argc > 1) samples = static_cast<std::size_t>(std::stoull(argv[1]));

  stdparx::enable_experimental_roc_stdpar(true);

  struct RouteSpec {
    Vendor vendor;
    stdparx::Runtime runtime;
  };
  const RouteSpec routes[] = {
      {Vendor::NVIDIA, stdparx::Runtime::NVHPC},
      {Vendor::Intel, stdparx::Runtime::OneDPL},
      {Vendor::AMD, stdparx::Runtime::RocStdpar},
      {Vendor::NVIDIA, stdparx::Runtime::OpenSYCL},
  };

  std::cout << "Monte Carlo pi, " << samples
            << " samples, counter-based RNG\n\n";
  std::cout << std::fixed << std::setprecision(6);

  double first_estimate = 0.0;
  bool all_identical = true;
  for (const RouteSpec& spec : routes) {
    const auto pol = stdparx::par_gpu(spec.vendor, spec.runtime);
    const double t0 = pol.simulated_time_us();
    const double pi = estimate_pi(pol, samples);
    const double elapsed = pol.simulated_time_us() - t0;
    if (first_estimate == 0.0) first_estimate = pi;
    all_identical = all_identical && pi == first_estimate;
    std::cout << std::left << std::setw(8) << to_string(spec.vendor)
              << std::setw(12) << stdparx::to_string(spec.runtime)
              << " pi = " << pi << "   (" << std::setprecision(1)
              << elapsed << " simulated us)\n"
              << std::setprecision(6);
  }

  stdparx::enable_experimental_roc_stdpar(false);

  const double error = std::fabs(first_estimate - M_PI);
  std::cout << "\nerror vs. pi: " << error << "\n";
  const bool ok = all_identical && error < 0.01;
  std::cout << (ok ? "PASS" : "FAIL")
            << ": every Standard-parallelism route draws the same points "
               "and agrees to the last bit\n";
  return ok ? 0 : 1;
}
