// babelstream_portability: one portable workload, every route, every
// simulated platform — the performance-portability study the paper names
// as its natural extension. Prints a compact best-Triad-per-route matrix.

#include <iomanip>
#include <iostream>
#include <map>

#include "bench_support/stream.hpp"
#include "models/stdparx/stdparx.hpp"

int main(int argc, char** argv) {
  using namespace mcmm;
  std::size_t n = 1 << 20;
  if (argc > 1) n = static_cast<std::size_t>(std::stoull(argv[1]));

  stdparx::enable_experimental_roc_stdpar(true);

  // route label -> vendor -> triad GB/s
  std::map<std::string, std::map<Vendor, double>> triad;
  for (const Vendor v : kFigureRowOrder) {
    for (auto& benchmark : bench::stream_benchmarks_for(v)) {
      for (const bench::StreamResult& r :
           bench::run_stream(*benchmark, n, 3)) {
        if (r.kernel == bench::StreamKernel::Triad && r.verified) {
          triad[r.label][v] = r.bandwidth_gbps;
        }
      }
    }
  }
  stdparx::enable_experimental_roc_stdpar(false);

  std::cout << "Triad bandwidth (GB/s, simulated), arrays of " << n
            << " doubles\n\n";
  std::cout << std::left << std::setw(24) << "Route";
  for (const Vendor v : kFigureRowOrder) {
    std::cout << std::right << std::setw(10) << to_string(v);
  }
  std::cout << "\n" << std::string(54, '-') << "\n";
  std::cout << std::fixed << std::setprecision(0);
  for (const auto& [label, per_vendor] : triad) {
    std::cout << std::left << std::setw(24) << label;
    for (const Vendor v : kFigureRowOrder) {
      const auto it = per_vendor.find(v);
      if (it == per_vendor.end()) {
        std::cout << std::right << std::setw(10) << "-";
      } else {
        std::cout << std::right << std::setw(10) << it->second;
      }
    }
    std::cout << "\n";
  }
  std::cout << "\n('-' = the route does not exist on that platform; "
               "compare Fig. 1)\n";
  return 0;
}
