// porting_pipeline: the conversion-tool story of the paper end to end —
// start from CUDA source, run it through the HIPIFY analogue (the CUDA ->
// AMD route of item 18) and the SYCLomatic analogue (the CUDA -> Intel
// route of item 31), show the translated sources and diagnostics, then
// execute the semantically equivalent kernel on each simulated platform.

#include <iostream>
#include <vector>

#include "models/hipx/hipx.hpp"
#include "models/syclx/syclx.hpp"
#include "translate/translate.hpp"

namespace {

void print_result(const char* title,
                  const mcmm::translate::TranslationResult& r) {
  std::cout << "--- " << title << " ---\n" << r.code << "\n";
  for (const mcmm::translate::Diagnostic& d : r.diagnostics) {
    const char* sev =
        d.severity == mcmm::translate::Severity::Unconverted ? "UNCONVERTED"
                                                             : "info";
    std::cout << "  [" << sev << "] " << d.token << ": " << d.message
              << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace mcmm;

  const std::string cuda_source = R"(// saxpy, CUDA C++
#include "cuda_runtime.h"
void saxpy_host(float a, const float* hx, float* hy, std::size_t n) {
  float *dx, *dy;
  cudaMalloc(&dx, n * sizeof(float));
  cudaMalloc(&dy, n * sizeof(float));
  cudaMemcpy(dx, hx, n * sizeof(float), cudaMemcpyHostToDevice);
  cudaMemcpy(dy, hy, n * sizeof(float), cudaMemcpyHostToDevice);
  cudax::cudaLaunch(grid, block, saxpy_kernel, a, dx, dy, n);
  atomicAdd(&d_flops_counter, 2.0f * n);  // instrumentation
  cudaDeviceSynchronize();
  cudaMemcpy(hy, dy, n * sizeof(float), cudaMemcpyDeviceToHost);
  cudaFree(dx);
  cudaFree(dy);
}
)";

  std::cout << "=== Original CUDA source ===\n" << cuda_source << "\n";

  const translate::TranslationResult hip = translate::hipify(cuda_source);
  print_result("HIPIFY output (runs on AMD via hipcc / HIP_PLATFORM=amd)",
               hip);

  const translate::TranslationResult sycl =
      translate::cuda2sycl(cuda_source);
  print_result("SYCLomatic-style output (runs on Intel via DPC++)", sycl);

  // Execute the same saxpy semantics through the target embeddings, proving
  // the translated routes actually work on the simulated devices.
  constexpr std::size_t n = 4096;
  std::vector<float> x(n, 2.0f), y(n, 1.0f);

  {  // HIP on the simulated AMD device.
    hipx::set_platform(hipx::Platform::amd);
    float *dx = nullptr, *dy = nullptr;
    (void)hipx::hipMalloc(reinterpret_cast<void**>(&dx), n * sizeof(float));
    (void)hipx::hipMalloc(reinterpret_cast<void**>(&dy), n * sizeof(float));
    (void)hipx::hipMemcpy(dx, x.data(), n * sizeof(float),
                          hipx::hipMemcpyHostToDevice);
    (void)hipx::hipMemcpy(dy, y.data(), n * sizeof(float),
                          hipx::hipMemcpyHostToDevice);
    (void)hipx::hipLaunchKernelGGL(
        [](const hipx::KernelCtx& ctx, float a, const float* px, float* py,
           std::size_t count) {
          const std::size_t i = ctx.global_x();
          if (i < count) py[i] = a * px[i] + py[i];
        },
        hipx::dim3{16, 1, 1}, hipx::dim3{256, 1, 1}, 3.0f,
        static_cast<const float*>(dx), dy, n);
    std::vector<float> out(n);
    (void)hipx::hipMemcpy(out.data(), dy, n * sizeof(float),
                          hipx::hipMemcpyDeviceToHost);
    std::cout << "HIP on simulated AMD: y[0] = " << out[0]
              << " (expected 7)\n";
    (void)hipx::hipFree(dx);
    (void)hipx::hipFree(dy);
  }

  {  // SYCL on the simulated Intel device.
    syclx::queue q(Vendor::Intel, syclx::Implementation::DPCpp);
    float* dx = q.malloc_device<float>(n);
    float* dy = q.malloc_device<float>(n);
    q.memcpy(dx, x.data(), n * sizeof(float));
    q.memcpy(dy, y.data(), n * sizeof(float));
    q.parallel_for(syclx::range{n},
                   [dx, dy](syclx::id i) { dy[i] = 3.0f * dx[i] + dy[i]; });
    std::vector<float> out(n);
    q.memcpy(out.data(), dy, n * sizeof(float));
    std::cout << "SYCL on simulated Intel: y[0] = " << out[0]
              << " (expected 7)\n";
    q.free(dx);
    q.free(dy);
  }

  std::cout << "\nhipify was " << (hip.clean() ? "fully" : "partially")
            << " automatic; cuda2sycl was "
            << (sycl.clean() ? "fully" : "partially")
            << " automatic — matching the paper's rating of the two "
               "conversion routes.\n";
  return 0;
}
