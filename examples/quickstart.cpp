// Quickstart: the three things most users want from the library —
//   1. look up a cell of the compatibility table,
//   2. print the whole of Fig. 1,
//   3. run a kernel through one of the model embeddings on a simulated
//      device.

#include <iostream>
#include <vector>

#include "data/dataset.hpp"
#include "models/kokkosx/kokkosx.hpp"
#include "render/render.hpp"
#include "render/report.hpp"

int main() {
  using namespace mcmm;

  // 1. Look up one combination: "can I use SYCL on AMD GPUs from C++?"
  const CompatibilityMatrix& matrix = data::paper_matrix();
  const SupportEntry& cell =
      matrix.at(Vendor::AMD, Model::SYCL, Language::Cpp);
  std::cout << "SYCL / C++ on AMD GPUs: "
            << category_name(cell.primary().category) << " (provided by "
            << to_string(cell.primary().provider) << ")\n";
  for (const Route& route : cell.routes) {
    std::cout << "  route: " << route.name << " [" << to_string(route.kind)
              << ", " << to_string(route.maturity) << "]\n";
  }
  std::cout << "\nFull description (Sec. 4, item " << cell.description_id
            << "):\n"
            << render::description_text(matrix, cell.description_id) << "\n";

  // 2. Print the whole overview table.
  std::cout << render::figure1_text(matrix) << "\n";

  // 3. Run a Kokkos-style Triad on the simulated AMD device (the HIP
  //    backend — exactly what Fig. 1's Kokkos/AMD cell says works).
  constexpr std::size_t n = 1 << 16;
  kokkosx::Execution exec(kokkosx::ExecSpace::HIP, Vendor::AMD);
  kokkosx::View<double> a(exec, "a", n);
  kokkosx::View<double> b(exec, "b", n);
  kokkosx::View<double> c(exec, "c", n);
  std::vector<double> host(n, 1.0);
  kokkosx::deep_copy_to_device(b, host.data());
  kokkosx::deep_copy_to_device(c, host.data());

  gpusim::KernelCosts costs;
  costs.bytes_read = 2.0 * n * sizeof(double);
  costs.bytes_written = 1.0 * n * sizeof(double);
  kokkosx::parallel_for(exec, kokkosx::RangePolicy{0, n}, costs,
                        [a, b, c](std::size_t i) {
                          a(i) = b(i) + 0.4 * c(i);
                        });
  kokkosx::deep_copy_to_host(host.data(), a);
  std::cout << "Kokkos(HIP) triad on " << exec.device().descriptor().name
            << ": a[0] = " << host[0] << " (expected 1.4), simulated time "
            << exec.simulated_time_us() << " us\n";
  return host[0] == 1.4 ? 0 : 1;
}
